//! A minimal seeded property-testing runner with shrinking.
//!
//! The workspace builds with zero external dependencies, so `proptest` is
//! replaced by this ~200-line runner. It keeps the parts that matter for
//! deterministic-simulation testing:
//!
//! - **seeded generation** — cases are drawn from a [`SimRng`], so a failing
//!   run's `(seed, case index)` pair reproduces exactly;
//! - **shrinking** — on failure the input is greedily minimized through the
//!   [`Shrink`] trait before being reported;
//! - **discarding** — properties can reject inputs that violate their
//!   preconditions (the analogue of `prop_assume!`).
//!
//! ```
//! use parcomm_testkit::prop::{check, PropConfig};
//!
//! check(&PropConfig::default(), "add_commutes",
//!     |rng| (rng.uniform_range(0, 1 << 20), rng.uniform_range(0, 1 << 20)),
//!     |&(a, b)| a + b == b + a,
//! );
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use parcomm_sim::SimRng;

/// Outcome of evaluating a property on one input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestResult {
    /// The property held.
    Pass,
    /// The input did not satisfy the property's preconditions; draw another.
    Discard,
    /// The property failed, with a reason.
    Fail(String),
}

impl From<bool> for TestResult {
    fn from(ok: bool) -> Self {
        if ok {
            TestResult::Pass
        } else {
            TestResult::Fail("property returned false".into())
        }
    }
}

impl From<Result<(), String>> for TestResult {
    fn from(r: Result<(), String>) -> Self {
        match r {
            Ok(()) => TestResult::Pass,
            Err(m) => TestResult::Fail(m),
        }
    }
}

impl From<()> for TestResult {
    fn from(_: ()) -> Self {
        TestResult::Pass
    }
}

/// Configuration for a [`check`] run.
#[derive(Clone, Debug)]
pub struct PropConfig {
    /// Number of (non-discarded) cases to run.
    pub cases: u32,
    /// Seed for case generation. Override with `PARCOMM_PROP_SEED` to
    /// reproduce a CI failure locally.
    pub seed: u64,
    /// Cap on shrinking steps (each step tries every candidate of the
    /// current smallest failing input).
    pub max_shrink_steps: u32,
    /// Cap on consecutive discards before the run aborts (a generator that
    /// discards everything is a bug in the test).
    pub max_discards: u32,
}

impl Default for PropConfig {
    fn default() -> Self {
        let seed = std::env::var("PARCOMM_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x7E57_C0DE);
        PropConfig { cases: 64, seed, max_shrink_steps: 256, max_discards: 4096 }
    }
}

impl PropConfig {
    /// A config running `cases` cases (default seed).
    pub fn with_cases(cases: u32) -> Self {
        PropConfig { cases, ..PropConfig::default() }
    }
}

/// Types whose failing values can propose smaller candidates.
///
/// Shrinking is *greedy first-fail descent*: the runner re-tests candidates
/// in order and recurses on the first one that still fails. Candidates must
/// therefore be strictly "smaller" by some well-founded measure or shrinking
/// could loop; every impl here shrinks toward zero/empty.
pub trait Shrink: Sized {
    /// Strictly-smaller candidate values, most aggressive first.
    fn shrink(&self) -> Vec<Self>;
}

impl Shrink for u64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self > 0 {
            out.push(0);
            if *self > 1 {
                out.push(self / 2);
            }
            out.push(self - 1);
        }
        out.dedup();
        out
    }
}

impl Shrink for usize {
    fn shrink(&self) -> Vec<Self> {
        (*self as u64).shrink().into_iter().map(|v| v as usize).collect()
    }
}

impl Shrink for u32 {
    fn shrink(&self) -> Vec<Self> {
        (*self as u64).shrink().into_iter().map(|v| v as u32).collect()
    }
}

impl Shrink for i64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self != 0 {
            out.push(0);
            out.push(self / 2);
            out.push(self - self.signum());
        }
        out.dedup();
        out
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self != 0.0 && self.is_finite() {
            out.push(0.0);
            out.push(self / 2.0);
            let t = self.trunc();
            if t != *self {
                out.push(t);
            }
        }
        out
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Drop halves, then single elements, then shrink single elements.
        out.push(self[..n / 2].to_vec());
        out.push(self[n / 2..].to_vec());
        for i in 0..n.min(8) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        for i in 0..n.min(4) {
            for cand in self[i].shrink().into_iter().take(2) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! tuple_shrink {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}

tuple_shrink!(A: 0);
tuple_shrink!(A: 0, B: 1);
tuple_shrink!(A: 0, B: 1, C: 2);
tuple_shrink!(A: 0, B: 1, C: 2, D: 3);

/// Run `prop` against `cases` inputs drawn by `gen` from a seeded [`SimRng`].
///
/// On failure the input is shrunk to a local minimum and the runner panics
/// with the minimal input, the generating seed, and the case index — enough
/// to reproduce by rerunning with the same config. Panics inside `prop` are
/// caught and treated as failures (so plain `assert!` works).
pub fn check<T, G, F, R>(cfg: &PropConfig, name: &str, mut gen: G, prop: F)
where
    T: Shrink + Clone + std::fmt::Debug,
    G: FnMut(&mut SimRng) -> T,
    F: Fn(&T) -> R,
    R: Into<TestResult>,
{
    let mut rng = SimRng::seeded(cfg.seed);
    let eval = |input: &T| -> TestResult {
        match catch_unwind(AssertUnwindSafe(|| prop(input).into())) {
            Ok(r) => r,
            Err(payload) => TestResult::Fail(panic_message(payload.as_ref())),
        }
    };

    let mut ran = 0u32;
    let mut discards = 0u32;
    while ran < cfg.cases {
        let input = gen(&mut rng);
        match eval(&input) {
            TestResult::Pass => {
                ran += 1;
            }
            TestResult::Discard => {
                discards += 1;
                assert!(
                    discards <= cfg.max_discards,
                    "property '{name}': {discards} discards before {ran} cases ran — \
                     generator and preconditions disagree"
                );
            }
            TestResult::Fail(first_reason) => {
                let (min, reason, steps) =
                    shrink_failure(input, first_reason, cfg.max_shrink_steps, &eval);
                panic!(
                    "property '{name}' failed (seed {:#x}, case {ran}, {steps} shrink steps)\n\
                     minimal input: {min:?}\nreason: {reason}",
                    cfg.seed
                );
            }
        }
    }
}

/// Greedy first-fail shrink descent. Returns the minimal failing input, its
/// failure reason, and the number of accepted shrink steps.
///
/// Exposed so harnesses outside the [`check`] runner — the coverage-guided
/// chaos campaign above all — can bisect a failing structured input (e.g. a
/// `FaultPlan`) to a minimal reproducer with the same greedy descent.
pub fn shrink_failure<T: Shrink + Clone>(
    mut cur: T,
    mut reason: String,
    max_steps: u32,
    eval: &dyn Fn(&T) -> TestResult,
) -> (T, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < max_steps {
        for cand in cur.shrink() {
            if let TestResult::Fail(r) = eval(&cand) {
                cur = cand;
                reason = r;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    (cur, reason, steps)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check(
            &PropConfig::with_cases(50),
            "counting",
            |rng| rng.uniform_range(0, 100),
            |_| {
                // Evaluated at least once per case (shrinking would add more).
                count.set(count.get() + 1);
                true
            },
        );
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property "v < 10" fails for v >= 10; minimal counterexample is 10.
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                &PropConfig::with_cases(200),
                "lt_ten",
                |rng| rng.uniform_range(0, 1 << 40),
                |&v| v < 10,
            );
        }));
        let msg = panic_message(r.expect_err("must fail").as_ref());
        assert!(msg.contains("minimal input: 10"), "{msg}");
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        // "no vec contains an element > 1000" — minimal counterexample is a
        // single-element vec.
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                &PropConfig::with_cases(100),
                "small_elems",
                |rng| {
                    let n = rng.uniform_range(1, 20) as usize;
                    (0..n).map(|_| rng.uniform_range(0, 5000)).collect::<Vec<u64>>()
                },
                |v| v.iter().all(|&x| x <= 1000),
            );
        }));
        let msg = panic_message(r.expect_err("must fail").as_ref());
        // After shrinking, the reported vec should have exactly one element.
        let inner = msg.split("minimal input: ").nth(1).expect("has input");
        let commas = inner.split('\n').next().unwrap_or("").matches(',').count();
        assert_eq!(commas, 0, "expected single-element vec in: {msg}");
    }

    #[test]
    fn discards_do_not_count_as_cases() {
        let passes = std::cell::Cell::new(0u32);
        check(
            &PropConfig::with_cases(16),
            "discarding",
            |rng| rng.uniform_range(0, 10),
            |&v| {
                if v % 2 == 1 {
                    TestResult::Discard
                } else {
                    passes.set(passes.get() + 1);
                    TestResult::Pass
                }
            },
        );
        assert!(passes.get() >= 16);
    }

    #[test]
    fn panics_are_reported_as_failures() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                &PropConfig::with_cases(10),
                "panicky",
                |rng| rng.uniform_range(0, 100),
                |&v| {
                    assert!(v > 1_000, "generated {v}");
                    true
                },
            );
        }));
        let msg = panic_message(r.expect_err("must fail").as_ref());
        assert!(msg.contains("panicky"), "{msg}");
        assert!(msg.contains("panic: generated"), "{msg}");
    }

    #[test]
    fn same_seed_generates_same_cases() {
        let collect = |seed: u64| {
            let v = std::cell::RefCell::new(Vec::new());
            check(
                &PropConfig { seed, ..PropConfig::with_cases(32) },
                "collect",
                |rng| rng.uniform_range(0, 1 << 30),
                |&x| {
                    v.borrow_mut().push(x);
                    true
                },
            );
            v.into_inner()
        };
        assert_eq!(collect(77), collect(77));
        assert_ne!(collect(77), collect(78));
    }
}
