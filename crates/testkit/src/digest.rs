//! Stable 64-bit digests of simulation runs.
//!
//! A digest collapses an entire simulation observation — the ordered
//! `simcore` trace-span stream, the final virtual clock, the event count —
//! into one `u64` that can be compared across runs, recorded in regression
//! tests, and diffed in CI logs. The hash is FNV-1a 64: tiny, dependency
//! free, stable across platforms and compiler versions (it only ever sees
//! explicitly little-endian byte encodings), and plenty for equality
//! checking (this is not a security boundary).

use parcomm_sim::{SimReport, Trace};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher over explicitly-encoded fields.
///
/// Every `write_*` method also folds in a one-byte type tag so that, e.g.,
/// `write_u64(0)` and `write_bytes(&[])` cannot collide by concatenation.
#[derive(Clone, Debug)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Fold in raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.byte(0x01);
        for &b in bytes {
            self.byte(b);
        }
        self.byte(0xFF); // terminator so adjacent slices cannot merge
        self
    }

    /// Fold in a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.byte(0x02);
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Fold in a `usize` (widened to `u64` so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Fold in an `f64` by exact bit pattern (`NaN`s included).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.byte(0x03);
        for b in v.to_bits().to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Fold in a string (UTF-8 bytes).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.byte(0x04);
        for &b in s.as_bytes() {
            self.byte(b);
        }
        self.byte(0xFF);
        self
    }

    /// Fold in a slice of `f64` values (length-prefixed).
    pub fn write_f64_slice(&mut self, vs: &[f64]) -> &mut Self {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
        self
    }

    /// Final digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Digest the ordered span stream of a [`Trace`].
///
/// Two runs of the same `(program, seed)` pair must record byte-identical
/// span streams, so equal inputs ⇒ equal digests and — for the purposes of
/// replay testing — a digest mismatch means the schedules diverged.
pub fn trace_digest(trace: &Trace) -> u64 {
    let spans = trace.spans();
    let mut d = Digest::new();
    d.write_usize(spans.len());
    for s in &spans {
        d.write_str(s.category);
        d.write_u64(s.start.as_nanos());
        d.write_u64(s.end.as_nanos());
    }
    d.finish()
}

/// Digest a [`SimReport`] (end time, event count, process count).
pub fn report_digest(report: &SimReport) -> u64 {
    let mut d = Digest::new();
    d.write_u64(report.end_time.as_nanos());
    d.write_u64(report.events_processed);
    d.write_u64(report.processes);
    d.finish()
}

/// Digest a full run: report plus recorded trace spans. This is the digest
/// the determinism regression tests compare.
pub fn run_digest(report: &SimReport, trace: &Trace) -> u64 {
    let mut d = Digest::new();
    d.write_u64(report_digest(report));
    d.write_u64(trace_digest(trace));
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_sim::SimTime;

    #[test]
    fn known_answer_fnv1a() {
        // FNV-1a 64 of the byte 'a' framed as write_bytes (tag 0x01,
        // payload, terminator 0xFF) is deterministic; freeze it.
        let mut d = Digest::new();
        d.write_bytes(b"a");
        let h1 = d.finish();
        let mut d2 = Digest::new();
        d2.write_bytes(b"a");
        assert_eq!(h1, d2.finish());
        // And differs from the unframed FNV of "a".
        let mut plain = FNV_OFFSET;
        for &b in b"a" {
            plain ^= b as u64;
            plain = plain.wrapping_mul(FNV_PRIME);
        }
        assert_ne!(h1, plain);
    }

    #[test]
    fn field_framing_prevents_concat_collisions() {
        let mut a = Digest::new();
        a.write_str("ab").write_str("c");
        let mut b = Digest::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.write_u64(0);
        let mut d = Digest::new();
        d.write_bytes(&[0, 0, 0, 0, 0, 0, 0, 0]);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn trace_digest_is_order_sensitive() {
        let t = |us: u64| SimTime::from_nanos(us * 1000);
        let tr1 = Trace::default();
        tr1.enable();
        tr1.record("kernel", t(0), t(5));
        tr1.record("wire", t(5), t(9));
        let tr2 = Trace::default();
        tr2.enable();
        tr2.record("wire", t(5), t(9));
        tr2.record("kernel", t(0), t(5));
        assert_ne!(trace_digest(&tr1), trace_digest(&tr2));

        let tr3 = Trace::default();
        tr3.enable();
        tr3.record("kernel", t(0), t(5));
        tr3.record("wire", t(5), t(9));
        assert_eq!(trace_digest(&tr1), trace_digest(&tr3));
    }

    #[test]
    fn empty_trace_digest_is_stable() {
        assert_eq!(trace_digest(&Trace::default()), trace_digest(&Trace::default()));
    }
}
