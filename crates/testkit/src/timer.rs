//! Wall-clock micro-benchmark timer (criterion replacement).
//!
//! The bench harness binaries (`crates/bench/benches/*`) measure how fast
//! the *simulator itself* runs on the host — wall-clock time, not virtual
//! time. This module provides the minimal pieces: warmup, repeated samples,
//! robust summary statistics, and an aligned report line.

use std::time::{Duration, Instant};

/// Summary of one benchmark's samples.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark label.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (robust central tendency for noisy hosts).
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl BenchStats {
    /// One aligned report line, e.g.
    /// `bench engine/callbacks_10k            median 12.3ms  (min 11.9ms, max 14.0ms, 10 samples)`.
    pub fn report_line(&self) -> String {
        format!(
            "bench {:<44} median {:>10}  (min {}, max {}, {} samples)",
            self.name,
            fmt_dur(self.median),
            fmt_dur(self.min),
            fmt_dur(self.max),
            self.samples
        )
    }
}

/// Configuration for [`bench()`].
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Untimed warmup iterations before sampling.
    pub warmup: usize,
    /// Timed samples.
    pub samples: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 2, samples: 10 }
    }
}

impl BenchConfig {
    /// Reduced configuration for CI smoke runs (honours `--quick` /
    /// `PARCOMM_QUICK=1` conventions at the call site).
    pub fn quick() -> Self {
        BenchConfig { warmup: 1, samples: 3 }
    }
}

/// Time `f` under `cfg`, print the report line to stdout, return the stats.
///
/// `f` is an entire unit of work per sample; sink its output through
/// [`std::hint::black_box`] if the optimizer might delete it.
pub fn bench<F: FnMut()>(cfg: &BenchConfig, name: &str, mut f: F) -> BenchStats {
    for _ in 0..cfg.warmup {
        f();
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples.max(1) {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    let stats = summarize(name, &mut samples);
    println!("{}", stats.report_line());
    stats
}

fn summarize(name: &str, samples: &mut [Duration]) -> BenchStats {
    samples.sort_unstable();
    let n = samples.len();
    let total: Duration = samples.iter().sum();
    BenchStats {
        name: name.to_string(),
        samples: n,
        min: samples[0],
        median: samples[n / 2],
        mean: total / n as u32,
        max: samples[n - 1],
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_expected_iteration_count() {
        let mut calls = 0u32;
        let cfg = BenchConfig { warmup: 2, samples: 5 };
        let stats = bench(&cfg, "unit/counting", || calls += 1);
        assert_eq!(calls, 7); // 2 warmup + 5 timed
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
    }

    #[test]
    fn report_line_contains_name_and_unit() {
        let cfg = BenchConfig { warmup: 0, samples: 1 };
        let stats = bench(&cfg, "unit/spin", || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        let line = stats.report_line();
        assert!(line.contains("unit/spin"), "{line}");
        assert!(line.contains("median"), "{line}");
    }
}
