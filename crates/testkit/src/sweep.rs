//! Seed-sweep determinism runners.
//!
//! The reproducibility contract of the simulator is: a `(program, seed)`
//! pair fully determines the trace. These helpers turn that contract into
//! assertions:
//!
//! - [`assert_deterministic`] — run a program twice per seed and require
//!   bit-identical digests (same seed ⇒ same trace);
//! - [`assert_seed_sensitive`] — require that different seeds actually
//!   produce different digests (the program consumes randomness at all —
//!   a vacuous determinism test would otherwise pass);
//! - [`assert_all_equal`] — metamorphic invariants: program variants that
//!   must agree on a result (e.g. any partition-count permutation reduces
//!   to the same values).

use std::collections::BTreeMap;
use std::fmt::Debug;

/// Run `program` twice for every seed and assert that both runs return the
/// same digest. Returns the per-seed digests for further checks (e.g.
/// feeding [`assert_seed_sensitive`] without re-running).
///
/// `program` receives the seed and returns any comparable observation —
/// typically a [`crate::digest::run_digest`] of the simulation, but raw
/// output vectors work too.
pub fn assert_deterministic<T, F>(seeds: &[u64], mut program: F) -> Vec<T>
where
    T: PartialEq + Debug,
    F: FnMut(u64) -> T,
{
    assert!(!seeds.is_empty(), "assert_deterministic: no seeds given");
    let mut out = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let first = program(seed);
        let second = program(seed);
        assert_eq!(
            first, second,
            "seed {seed:#x}: two runs of the same program diverged — \
             the (program, seed) determinism contract is broken"
        );
        out.push(first);
    }
    out
}

/// Assert that not all seeds map to the same digest. Guards against a
/// vacuously-deterministic program (one that never consumes simulation
/// randomness would trivially pass [`assert_deterministic`]).
pub fn assert_seed_sensitive<T: PartialEq + Debug>(seeds: &[u64], digests: &[T]) {
    assert_eq!(seeds.len(), digests.len(), "seed/digest length mismatch");
    assert!(
        seeds.len() >= 2,
        "assert_seed_sensitive: need at least two seeds"
    );
    let all_same = digests.iter().all(|d| *d == digests[0]);
    assert!(
        !all_same,
        "all {} seeds produced the identical digest {:?} — the program does \
         not consume simulation randomness, so this determinism test is vacuous",
        seeds.len(),
        digests[0]
    );
}

/// One-call convenience: determinism plus seed sensitivity over `seeds`.
pub fn assert_deterministic_and_seed_sensitive<T, F>(seeds: &[u64], program: F) -> Vec<T>
where
    T: PartialEq + Debug,
    F: FnMut(u64) -> T,
{
    let digests = assert_deterministic(seeds, program);
    assert_seed_sensitive(seeds, &digests);
    digests
}

/// Metamorphic invariant: every labelled variant must produce an equal
/// value. Reports *which* variants disagree on failure.
///
/// ```
/// use parcomm_testkit::sweep::assert_all_equal;
/// assert_all_equal([
///     ("2 partitions", 10u64),
///     ("5 partitions", 10u64),
/// ]);
/// ```
pub fn assert_all_equal<T, I>(variants: I)
where
    T: PartialEq + Debug,
    I: IntoIterator<Item = (&'static str, T)>,
{
    let collected: Vec<(&'static str, T)> = variants.into_iter().collect();
    assert!(
        collected.len() >= 2,
        "assert_all_equal: need at least two variants"
    );
    let (base_label, base) = &collected[0];
    let mut disagreements: BTreeMap<&'static str, &T> = BTreeMap::new();
    for (label, value) in &collected[1..] {
        if value != base {
            disagreements.insert(label, value);
        }
    }
    assert!(
        disagreements.is_empty(),
        "metamorphic invariant violated: baseline '{base_label}' = {base:?}, \
         but {disagreements:?} disagree"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn deterministic_program_passes() {
        let digests =
            assert_deterministic_and_seed_sensitive(&[1, 2, 3], |seed| seed.wrapping_mul(0x9E37));
        assert_eq!(digests.len(), 3);
    }

    #[test]
    fn nondeterministic_program_is_caught() {
        let mut flip = 0u64;
        let r = catch_unwind(AssertUnwindSafe(|| {
            assert_deterministic(&[7], |seed| {
                flip += 1;
                seed + flip
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn vacuous_determinism_is_caught() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            assert_deterministic_and_seed_sensitive(&[1, 2, 3], |_seed| 42u64);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn metamorphic_disagreement_names_the_variant() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            assert_all_equal([("a", 1), ("b", 1), ("c", 2)]);
        }));
        let err = r.expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains('c'), "{msg}");
    }
}
