//! Seed-sweep determinism runners.
//!
//! The reproducibility contract of the simulator is: a `(program, seed)`
//! pair fully determines the trace. These helpers turn that contract into
//! assertions:
//!
//! - [`assert_deterministic`] — run a program twice per seed and require
//!   bit-identical digests (same seed ⇒ same trace);
//! - [`assert_seed_sensitive`] — require that different seeds actually
//!   produce different digests (the program consumes randomness at all —
//!   a vacuous determinism test would otherwise pass);
//! - [`assert_all_equal`] — metamorphic invariants: program variants that
//!   must agree on a result (e.g. any partition-count permutation reduces
//!   to the same values).
//!
//! The per-seed runners fan out over `parcomm_sweep::SweepSpec`: each seed
//! is one sweep cell, executed on `--threads N` / `PARCOMM_THREADS`
//! workers (default: available parallelism). Results are reassembled in
//! seed order, so the returned digests — and any assertion failure — are
//! independent of the worker count.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::sync::Arc;

use parcomm_sweep::SweepSpec;

/// Run `program` twice for every seed and assert that both runs return the
/// same digest. Returns the per-seed digests for further checks (e.g.
/// feeding [`assert_seed_sensitive`] without re-running).
///
/// `program` receives the seed and returns any comparable observation —
/// typically a [`crate::digest::run_digest`] of the simulation, but raw
/// output vectors work too. Seeds run in parallel (see the module docs),
/// so the program must be `Fn + Send + Sync` rather than `FnMut`.
pub fn assert_deterministic<T, F>(seeds: &[u64], program: F) -> Vec<T>
where
    T: PartialEq + Debug + Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    assert_deterministic_threaded(seeds, parcomm_sweep::threads(), program)
}

/// [`assert_deterministic`] with an explicit sweep worker count.
pub fn assert_deterministic_threaded<T, F>(seeds: &[u64], threads: usize, program: F) -> Vec<T>
where
    T: PartialEq + Debug + Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    assert!(!seeds.is_empty(), "assert_deterministic: no seeds given");
    let program = Arc::new(program);
    let mut spec = SweepSpec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let program = program.clone();
        spec.cell(format!("{i}:seed={seed:#x}"), move || {
            let first = program(seed);
            let second = program(seed);
            assert_eq!(
                first, second,
                "seed {seed:#x}: two runs of the same program diverged — \
                 the (program, seed) determinism contract is broken"
            );
            first
        });
    }
    spec.run(threads).into_values().expect("determinism sweep")
}

/// Assert that not all seeds map to the same digest. Guards against a
/// vacuously-deterministic program (one that never consumes simulation
/// randomness would trivially pass [`assert_deterministic`]).
pub fn assert_seed_sensitive<T: PartialEq + Debug>(seeds: &[u64], digests: &[T]) {
    assert_eq!(seeds.len(), digests.len(), "seed/digest length mismatch");
    assert!(
        seeds.len() >= 2,
        "assert_seed_sensitive: need at least two seeds"
    );
    let all_same = digests.iter().all(|d| *d == digests[0]);
    assert!(
        !all_same,
        "all {} seeds produced the identical digest {:?} — the program does \
         not consume simulation randomness, so this determinism test is vacuous",
        seeds.len(),
        digests[0]
    );
}

/// One-call convenience: determinism plus seed sensitivity over `seeds`.
pub fn assert_deterministic_and_seed_sensitive<T, F>(seeds: &[u64], program: F) -> Vec<T>
where
    T: PartialEq + Debug + Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    assert_deterministic_and_seed_sensitive_threaded(seeds, parcomm_sweep::threads(), program)
}

/// [`assert_deterministic_and_seed_sensitive`] with an explicit sweep
/// worker count.
pub fn assert_deterministic_and_seed_sensitive_threaded<T, F>(
    seeds: &[u64],
    threads: usize,
    program: F,
) -> Vec<T>
where
    T: PartialEq + Debug + Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    let digests = assert_deterministic_threaded(seeds, threads, program);
    assert_seed_sensitive(seeds, &digests);
    digests
}

/// Metamorphic invariant: every labelled variant must produce an equal
/// value. Reports *which* variants disagree on failure.
///
/// ```
/// use parcomm_testkit::sweep::assert_all_equal;
/// assert_all_equal([
///     ("2 partitions", 10u64),
///     ("5 partitions", 10u64),
/// ]);
/// ```
pub fn assert_all_equal<T, I>(variants: I)
where
    T: PartialEq + Debug,
    I: IntoIterator<Item = (&'static str, T)>,
{
    let collected: Vec<(&'static str, T)> = variants.into_iter().collect();
    assert!(
        collected.len() >= 2,
        "assert_all_equal: need at least two variants"
    );
    let (base_label, base) = &collected[0];
    let mut disagreements: BTreeMap<&'static str, &T> = BTreeMap::new();
    for (label, value) in &collected[1..] {
        if value != base {
            disagreements.insert(label, value);
        }
    }
    assert!(
        disagreements.is_empty(),
        "metamorphic invariant violated: baseline '{base_label}' = {base:?}, \
         but {disagreements:?} disagree"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn deterministic_program_passes() {
        let digests =
            assert_deterministic_and_seed_sensitive(&[1, 2, 3], |seed| seed.wrapping_mul(0x9E37));
        assert_eq!(digests.len(), 3);
    }

    #[test]
    fn nondeterministic_program_is_caught() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let flip = Arc::new(AtomicU64::new(0));
        let f2 = flip.clone();
        let r = catch_unwind(AssertUnwindSafe(|| {
            assert_deterministic(&[7], move |seed| {
                seed + f2.fetch_add(1, Ordering::SeqCst) + 1
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn threaded_runner_matches_serial_order() {
        let seeds: Vec<u64> = (0..16).map(|i| 0x90 + i).collect();
        let serial =
            assert_deterministic_threaded(&seeds, 1, |seed| seed.wrapping_mul(0x9E37));
        let parallel =
            assert_deterministic_threaded(&seeds, 8, |seed| seed.wrapping_mul(0x9E37));
        assert_eq!(serial, parallel, "digest order must not depend on the worker count");
    }

    #[test]
    fn vacuous_determinism_is_caught() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            assert_deterministic_and_seed_sensitive(&[1, 2, 3], |_seed| 42u64);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn metamorphic_disagreement_names_the_variant() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            assert_all_equal([("a", 1), ("b", 1), ("c", 2)]);
        }));
        let err = r.expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains('c'), "{msg}");
    }
}
