//! # parcomm-testkit — deterministic-simulation test harness
//!
//! First-party correctness tooling for the `parcomm` workspace, built on the
//! hermetic zero-external-dependency policy (see `DESIGN.md`). Four pieces:
//!
//! - [`prop`] — a seeded property-testing runner with shrinking over
//!   integer/float/vec/tuple inputs (the in-tree `proptest` replacement);
//! - [`digest`] — stable 64-bit FNV-1a digests of `simcore` trace-span
//!   streams and run reports, for replay assertions;
//! - [`sweep`] — seed-sweep runners asserting the determinism contract
//!   (same seed ⇒ identical digest; different seeds ⇒ digests diverge) and
//!   metamorphic invariants;
//! - [`timer`] — a wall-clock micro-benchmark timer (the in-tree
//!   `criterion` replacement for the bench harness binaries).
//!
//! ## Writing a determinism test
//!
//! ```
//! use parcomm_sim::{SimDuration, Simulation};
//! use parcomm_testkit::{digest, sweep};
//!
//! let digests = sweep::assert_deterministic_and_seed_sensitive(
//!     &[1, 2, 3],
//!     |seed| {
//!         let mut sim = Simulation::with_seed(seed);
//!         let trace = sim.trace();
//!         trace.enable();
//!         sim.spawn("worker", |ctx| {
//!             let dt = ctx.jitter_us(5.0, 1.0);
//!             let start = ctx.now();
//!             ctx.advance(dt);
//!             ctx.handle().trace().record("work", start, ctx.now());
//!         });
//!         let report = sim.run().unwrap();
//!         digest::run_digest(&report, &trace)
//!     },
//! );
//! assert_eq!(digests.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod digest;
pub mod prop;
pub mod sweep;
pub mod timer;

pub use digest::{report_digest, run_digest, trace_digest, Digest};
pub use prop::{check, shrink_failure, PropConfig, Shrink, TestResult};
pub use sweep::{
    assert_all_equal, assert_deterministic, assert_deterministic_and_seed_sensitive,
    assert_deterministic_and_seed_sensitive_threaded, assert_deterministic_threaded,
    assert_seed_sensitive,
};
pub use timer::{bench, BenchConfig, BenchStats};
