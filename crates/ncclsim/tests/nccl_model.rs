//! Integration tests: NCCL functional correctness in a multi-rank world
//! and its structural advantage over the partitioned collective.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_coll::pallreduce_init;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::MpiWorld;
use parcomm_nccl::{NcclComm, NcclConfig};
use parcomm_sim::{SimConfig, Simulation};

fn make_comm(world: &MpiWorld) -> NcclComm {
    let ring = (0..world.size()).map(|r| world.gpu_of(r).location()).collect();
    NcclComm::new(world.fabric().clone(), ring, NcclConfig::default())
}

#[test]
fn nccl_allreduce_sums_across_ranks() {
    for nodes in [1u16, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, nodes);
        let comm = make_comm(&world);
        world.run_ranks(&mut sim, move |ctx, rank| {
            let n = 4096usize;
            let buf = rank.gpu().alloc_global(n * 8);
            buf.write_f64_slice(0, &vec![(rank.rank() + 1) as f64; n]);
            let stream = rank.gpu().create_stream();
            let done = comm.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
            ctx.wait(&done);
            let p = rank.size();
            let expect = (p * (p + 1)) as f64 / 2.0;
            let out = buf.read_f64_slice(0, n);
            assert!(out.iter().all(|v| (*v - expect).abs() < 1e-9), "nodes={nodes}");
        });
        sim.run().unwrap();
    }
}

#[test]
fn nccl_orders_after_stream_work() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let comm = make_comm(&world);
    let times = Arc::new(Mutex::new(Vec::new()));
    let t2 = times.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = 1024usize;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        // Rank 0 has a big kernel pending: the collective must wait for it.
        let grid = if rank.rank() == 0 { 32 * 1024 } else { 1 };
        let launch = stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
        let done = comm.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
        ctx.wait(&done);
        t2.lock().push((rank.rank(), launch.end, ctx.now()));
    });
    sim.run().unwrap();
    let times = times.lock();
    let slowest_kernel = times.iter().map(|(_, end, _)| *end).max().unwrap();
    for (r, _, done) in times.iter() {
        assert!(
            *done >= slowest_kernel,
            "rank {r}: collective completed before the slowest contribution was ready"
        );
    }
}

#[test]
fn nccl_beats_partitioned_allreduce() {
    // The paper's Fig. 6 ordering: NCCL < partitioned, because the
    // partitioned collective pays per-step reduction kernels + stream
    // synchronizations while NCCL's ring is fused on-device.
    let nccl = timed_nccl();
    let part = timed_partitioned();
    assert!(
        nccl < part,
        "NCCL ({nccl} µs) must beat the partitioned allreduce ({part} µs)"
    );
}

fn timed_nccl() -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let comm = make_comm(&world);
    let out = Arc::new(Mutex::new(0.0));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = 1 << 20; // 8 MB
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        rank.barrier(ctx);
        let t0 = ctx.now();
        let grid = (n as u32).div_ceil(1024);
        stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
        let done = comm.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
        ctx.wait(&done);
        if rank.rank() == 0 {
            *o2.lock() = ctx.now().since(t0).as_micros_f64();
        }
    });
    sim.run().unwrap();
    let v = *out.lock();
    v
}

fn timed_partitioned() -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(0.0));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = 1 << 20; // 8 MB
        let partitions = 4usize;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 3).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        rank.barrier(ctx);
        let t0 = ctx.now();
        let grid = (n as u32).div_ceil(1024);
        let coll2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| {
            coll2.pready_device_all(d);
        });
        coll.wait(ctx).expect("wait");
        if rank.rank() == 0 {
            *o2.lock() = ctx.now().since(t0).as_micros_f64();
        }
    });
    sim.run().unwrap();
    let v = *out.lock();
    v
}
