//! # parcomm-nccl — the NCCL baseline
//!
//! A model of `ncclAllReduce` as the paper's state-of-the-art comparator
//! (Figs. 6/7/10/11): a **fused device-side ring** — one kernel per rank
//! that moves chunks over NVLink/IB and reduces them *inside the kernel*,
//! with no per-step host round-trips, kernel launches, or
//! `cudaStreamSynchronize` calls. That structural property is exactly why
//! NCCL retains an edge over the partitioned collective in the paper
//! (§VI-B), and it survives simulation.
//!
//! The model is functional + timed like everything else: the sum really
//! happens; the completion time follows the bandwidth-optimal ring formula
//! `2(P−1)/P · bytes / bw + 2(P−1) · hop latency` on the bottleneck link of
//! the rank ring, discounted by an efficiency factor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{Buffer, Location, Stream};
use parcomm_net::Fabric;
use parcomm_sim::{Ctx, Event, SimDuration, SimTime};

/// Tunables of the NCCL model.
#[derive(Clone, Debug)]
pub struct NcclConfig {
    /// Fixed cost of the fused collective kernel (bootstrap + fence).
    pub fixed_us: f64,
    /// Host-side launch cost of `ncclAllReduce` (one kernel enqueue).
    pub launch_us: f64,
    /// Fraction of link bandwidth the fused ring sustains.
    pub efficiency: f64,
}

impl Default for NcclConfig {
    fn default() -> Self {
        NcclConfig { fixed_us: 6.0, launch_us: 1.3, efficiency: 0.95 }
    }
}

struct OpState {
    /// (rank, buffer, byte offset, elems, ready-on-device time).
    participants: Vec<(usize, Buffer, usize, usize, SimTime)>,
    done: Event,
}

struct CommInner {
    fabric: Fabric,
    config: NcclConfig,
    /// GPU location of each rank in ring order.
    ring: Vec<Location>,
    ops: Mutex<HashMap<u64, OpState>>,
    /// Per-rank local sequence numbers (all ranks must call collectives in
    /// the same order — the standard NCCL contract).
    seqs: Mutex<Vec<u64>>,
}

/// An NCCL communicator over all ranks of the world.
#[derive(Clone)]
pub struct NcclComm {
    inner: Arc<CommInner>,
}

impl NcclComm {
    /// Build a communicator for GPUs at `ring` locations (rank order).
    pub fn new(fabric: Fabric, ring: Vec<Location>, config: NcclConfig) -> NcclComm {
        assert!(!ring.is_empty());
        let n = ring.len();
        NcclComm {
            inner: Arc::new(CommInner {
                fabric,
                config,
                ring,
                ops: Mutex::new(HashMap::new()),
                seqs: Mutex::new(vec![0; n]),
            }),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.inner.ring.len()
    }

    /// Bottleneck bandwidth (GB/s) and worst hop latency (µs) of the ring.
    fn ring_limits(&self) -> (f64, f64) {
        let ring = &self.inner.ring;
        let p = ring.len();
        let mut bw = f64::INFINITY;
        let mut lat: f64 = 0.0;
        for i in 0..p {
            let next = (i + 1) % p;
            // Large-message rings stripe node-crossing hops across every
            // NIC rail, exactly as NCCL's multi-channel transport does.
            bw = bw.min(self.inner.fabric.striped_bandwidth_gbps(ring[i], ring[next]));
            lat = lat.max(self.inner.fabric.path_latency(ring[i], ring[next]).as_micros_f64());
        }
        (bw, lat)
    }

    /// Duration of the fused ring allreduce for `bytes` per rank.
    pub fn allreduce_duration(&self, bytes: u64) -> SimDuration {
        let p = self.nranks() as f64;
        if p == 1.0 {
            return SimDuration::from_micros_f64(self.inner.config.fixed_us);
        }
        let (bw, lat) = self.ring_limits();
        let eff = self.inner.config.efficiency;
        let transfer_us = 2.0 * (p - 1.0) / p * bytes as f64 / (bw * eff * 1e3);
        let latency_us = 2.0 * (p - 1.0) * lat;
        SimDuration::from_micros_f64(self.inner.config.fixed_us + transfer_us + latency_us)
    }

    /// `ncclAllReduce(sum, f64)` in place on `n` elements at `byte_off` of
    /// `buf`, ordered after the work already enqueued on `stream`.
    ///
    /// Returns the completion event; the caller waits on it where it would
    /// call `cudaStreamSynchronize` after an NCCL launch. The returned
    /// event fires for all ranks at the same instant (the fused ring
    /// completes collectively).
    pub fn all_reduce_f64(
        &self,
        ctx: &mut Ctx,
        rank: usize,
        buf: &Buffer,
        byte_off: usize,
        n: usize,
        stream: &Stream,
    ) -> Event {
        assert!(rank < self.nranks());
        // Host enqueue cost (one fused kernel launch).
        ctx.advance(SimDuration::from_micros_f64(self.inner.config.launch_us));
        let seq = {
            let mut seqs = self.inner.seqs.lock();
            let s = seqs[rank];
            seqs[rank] += 1;
            s
        };
        // This rank's contribution is ready when its stream drains.
        let ready = stream.busy_until().max(ctx.now());
        let p = self.nranks();
        let (complete, done) = {
            let mut ops = self.inner.ops.lock();
            let op = ops.entry(seq).or_insert_with(|| OpState {
                participants: Vec::with_capacity(p),
                done: Event::new(),
            });
            op.participants.push((rank, buf.clone(), byte_off, n, ready));
            let done = op.done.clone();
            if op.participants.len() == p {
                (Some(ops.remove(&seq).expect("just inserted")), done)
            } else {
                (None, done)
            }
        };
        if let Some(op) = complete {
            self.finish(ctx, op, n);
        }
        done
    }

    /// Last participant arrived: compute the sum functionally and schedule
    /// completion at `max(ready) + ring duration`.
    fn finish(&self, ctx: &mut Ctx, op: OpState, n: usize) {
        let start = op
            .participants
            .iter()
            .map(|(_, _, _, _, t)| *t)
            .max()
            .expect("non-empty participants");
        for (_, _, _, n_i, _) in &op.participants {
            assert_eq!(*n_i, n, "ncclAllReduce: element counts differ across ranks");
        }
        // Functional: elementwise sum of all contributions, written back to
        // every rank (never visible before `done` fires).
        let mut acc = vec![0.0f64; n];
        for (_, buf, off, _, _) in &op.participants {
            for (a, v) in acc.iter_mut().zip(buf.read_f64_slice(*off, n)) {
                *a += v;
            }
        }
        for (_, buf, off, _, _) in &op.participants {
            buf.write_f64_slice(*off, &acc);
        }
        let dur = self.allreduce_duration((n * 8) as u64);
        let done = op.done;
        let h = ctx.handle();
        h.schedule_at(start + dur, move |h| done.set(h));
    }
}

impl std::fmt::Debug for NcclComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NcclComm").field("nranks", &self.nranks()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_net::ClusterSpec;
    use parcomm_sim::{SimConfig, Simulation};

    #[test]
    fn duration_scales_with_bytes_and_ranks() {
        let sim = Simulation::new(SimConfig::default());
        let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(1));
        let topo = fabric.topology();
        let ring: Vec<Location> = (0..topo.num_ranks()).map(|r| topo.location_of(r)).collect();
        let comm = NcclComm::new(fabric, ring, NcclConfig::default());
        let small = comm.allreduce_duration(1 << 10);
        let large = comm.allreduce_duration(1 << 26);
        assert!(large > small * 10);
        // 64 MB on 4 GPUs over 150 GB/s at 0.95 efficiency:
        // 2·3/4·64MB/142.5GB/s ≈ 706 µs.
        let us = large.as_micros_f64();
        assert!((650.0..800.0).contains(&us), "64MB allreduce = {us} µs");
    }

    #[test]
    fn inter_node_ring_is_ib_bound() {
        let sim = Simulation::new(SimConfig::default());
        let fabric = Fabric::new(sim.handle(), ClusterSpec::gh200(2));
        let topo = fabric.topology();
        let ring: Vec<Location> = (0..topo.num_ranks()).map(|r| topo.location_of(r)).collect();
        let comm = NcclComm::new(fabric, ring, NcclConfig::default());
        let (bw, _) = comm.ring_limits();
        // The two node-crossing hops stripe over 4 NIC rails: 200 GB/s,
        // still the ring bottleneck next to 150 GB/s NVLink... NVLink now
        // binds the ring.
        assert_eq!(bw, 150.0, "NVLink hops bound the striped inter-node ring");
    }
}
