//! Integration tests for the UCP-like layer: worker bootstrap, tagged
//! active messages, RMA puts with chained callbacks, and rkey_ptr.

use parcomm_gpu::{Buffer, Location, MemSpace, Unit};
use parcomm_net::{ClusterSpec, Fabric};
use parcomm_sim::{SimConfig, Simulation};
use parcomm_ucx::{UcxError, UcxUniverse};

fn cpu(node: u16) -> Location {
    Location { node, unit: Unit::Cpu }
}

fn universe(sim: &Simulation, nodes: u16) -> UcxUniverse {
    UcxUniverse::new(Fabric::new(sim.handle(), ClusterSpec::gh200(nodes)))
}

#[test]
fn workers_have_unique_addresses() {
    let sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    assert_ne!(w0.address(), w1.address());
}

#[test]
fn endpoint_to_unknown_worker_fails() {
    let sim = Simulation::new(SimConfig::default());
    let uni1 = universe(&sim, 1);
    let uni2 = universe(&sim, 1);
    let w_other = uni2.create_worker(cpu(0));
    let w = uni1.create_worker(cpu(0));
    // Address from a different universe is unknown here.
    assert!(matches!(
        w.create_endpoint(w_other.address()),
        Err(UcxError::UnknownWorker(_))
    ));
}

#[test]
fn am_send_recv_roundtrip() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 2);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(1));
    let w1_addr = w1.address();

    sim.spawn("sender", move |ctx| {
        ctx.advance(parcomm_sim::SimDuration::from_micros(5));
        let ep = w0.create_endpoint(w1_addr).unwrap();
        ep.am_send(77, String::from("setup"), 256);
    });
    sim.spawn("receiver", move |ctx| {
        let msg = w1.am_recv(ctx, 77);
        let s = msg.payload.downcast::<String>().unwrap();
        assert_eq!(*s, "setup");
        assert_eq!(msg.wire_bytes, 256);
        // Cross-node control message: ≥ IB latency after the send at t=5µs.
        assert!(ctx.now().as_micros_f64() > 8.0);
    });
    sim.run().unwrap();
}

#[test]
fn am_messages_with_same_tag_are_fifo() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    let w1_addr = w1.address();

    sim.spawn("sender", move |_ctx| {
        let ep = w0.create_endpoint(w1_addr).unwrap();
        for i in 0..3u32 {
            ep.am_send(5, i, 64);
        }
    });
    sim.spawn("receiver", move |ctx| {
        for expect in 0..3u32 {
            let msg = w1.am_recv(ctx, 5);
            assert_eq!(*msg.payload.downcast::<u32>().unwrap(), expect);
        }
    });
    sim.run().unwrap();
}

#[test]
fn distinct_tags_do_not_cross() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    let w1_addr = w1.address();

    sim.spawn("sender", move |_ctx| {
        let ep = w0.create_endpoint(w1_addr).unwrap();
        ep.am_send(1, 111u32, 64);
        ep.am_send(2, 222u32, 64);
    });
    sim.spawn("receiver", move |ctx| {
        // Receive tag 2 first even though tag 1 arrived earlier.
        let m2 = w1.am_recv(ctx, 2);
        assert_eq!(*m2.payload.downcast::<u32>().unwrap(), 222);
        let m1 = w1.am_recv(ctx, 1);
        assert_eq!(*m1.payload.downcast::<u32>().unwrap(), 111);
    });
    sim.run().unwrap();
}

#[test]
fn put_nbx_moves_data_and_fires_callback() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    let w1_addr = w1.address();

    let src = Buffer::alloc(MemSpace::Device { node: 0, gpu: 0 }, 1024);
    let dst = Buffer::alloc(MemSpace::Device { node: 0, gpu: 1 }, 1024);
    src.write_f64_slice(0, &[3.0; 128]);

    let rkey = w1.mem_map(&dst).pack_rkey();
    let dst2 = dst.clone();
    sim.spawn("sender", move |ctx| {
        let ep = w0.create_endpoint(w1_addr).unwrap();
        let flag = parcomm_sim::Event::new();
        let flag2 = flag.clone();
        let put = ep.put_nbx(&src, 0, 1024, &rkey, 0, move |h| {
            // Functional copy already applied when the callback runs.
            flag2.set(h);
        });
        ctx.wait(&put.done);
        assert!(flag.is_set());
        assert_eq!(dst2.read_f64_slice(0, 128), vec![3.0; 128]);
        // NVLink path: ~1.9 µs latency + tiny serialization.
        let t = ctx.now().as_micros_f64();
        assert!((1.8..3.0).contains(&t), "arrival {t}");
    });
    sim.run().unwrap();
}

#[test]
fn chained_put_from_completion_callback() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    let w1_addr = w1.address();

    let payload_src = Buffer::alloc(MemSpace::Device { node: 0, gpu: 0 }, 256);
    let payload_dst = Buffer::alloc(MemSpace::Device { node: 0, gpu: 1 }, 256);
    let flag_src = Buffer::alloc(MemSpace::Host { node: 0 }, 8);
    let flag_dst = Buffer::alloc(MemSpace::Host { node: 0 }, 8);
    flag_src.write_flag(0, 1);

    let rkey_payload = w1.mem_map(&payload_dst).pack_rkey();
    let rkey_flag = w1.mem_map(&flag_dst).pack_rkey();
    let flag_dst2 = flag_dst.clone();

    sim.spawn("sender", move |ctx| {
        let ep = w0.create_endpoint(w1_addr).unwrap();
        let ep2 = ep.clone();
        let flag_src2 = flag_src.clone();
        let rkey_flag2 = rkey_flag.clone();
        // The paper's pattern: data put, whose completion issues the
        // receive-side partition-flag put.
        let put = ep.put_nbx(&payload_src, 0, 256, &rkey_payload, 0, move |_h| {
            ep2.put_nbx_silent(&flag_src2, 0, 8, &rkey_flag2, 0);
        });
        ctx.wait(&put.done);
        // Wait a little for the chained put to land.
        ctx.advance(parcomm_sim::SimDuration::from_micros(10));
        assert_eq!(flag_dst2.read_flag(0), 1, "chained flag put must land");
    });
    sim.run().unwrap();
}

#[test]
fn rkey_ptr_rules() {
    let sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 2);
    let w = uni.create_worker(cpu(0));

    let dev_same = Buffer::alloc(MemSpace::Device { node: 0, gpu: 1 }, 64);
    let dev_other = Buffer::alloc(MemSpace::Device { node: 1, gpu: 0 }, 64);
    let host = Buffer::alloc(MemSpace::Host { node: 0 }, 64);

    let k_same = w.mem_map(&dev_same).pack_rkey();
    let k_other = w.mem_map(&dev_other).pack_rkey();
    let k_host = w.mem_map(&host).pack_rkey();

    let caller = Location { node: 0, unit: Unit::Gpu(0) };
    let mapped = k_same.rkey_ptr(caller).expect("same-node device rkey_ptr");
    assert!(mapped.is_valid());
    mapped.buffer().write_f64(0, 9.5);
    assert_eq!(dev_same.read_f64(0), 9.5);

    assert!(matches!(k_other.rkey_ptr(caller), Err(UcxError::RkeyPtrUnavailable(_))));
    assert!(matches!(k_host.rkey_ptr(caller), Err(UcxError::RkeyPtrUnavailable(_))));

    // Revocation: every mapping derived from any clone of the key dies, and
    // further rkey_ptr calls surface the typed error.
    let k_clone = k_same.clone();
    k_clone.revoke_ipc();
    assert!(!mapped.is_valid());
    assert!(matches!(k_same.rkey_ptr(caller), Err(UcxError::MappingRevoked)));
}

#[test]
fn cross_node_put_takes_ib_time() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 2);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(1));
    let w1_addr = w1.address();

    let src = Buffer::alloc(MemSpace::Device { node: 0, gpu: 0 }, 50_000_000);
    let dst = Buffer::alloc(MemSpace::Device { node: 1, gpu: 0 }, 50_000_000);
    let rkey = w1.mem_map(&dst).pack_rkey();

    sim.spawn("sender", move |ctx| {
        let ep = w0.create_endpoint(w1_addr).unwrap();
        let put = ep.put_nbx_silent(&src, 0, 50_000_000, &rkey, 0);
        ctx.wait(&put.done);
        // 50 MB striped over 4 NIC rails (12.5 MB each at 50 GB/s,
        // cut-through) = 250 µs + one segment + propagation latency.
        let t = ctx.now().as_micros_f64();
        assert!((250.0..300.0).contains(&t), "IB arrival {t}");
    });
    sim.run().unwrap();
}

#[test]
fn worker_progress_charges_poll_cost() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w = uni.create_worker(cpu(0));
    sim.spawn("p", move |ctx| {
        let t0 = ctx.now();
        w.progress(ctx, parcomm_sim::SimDuration::from_micros(2));
        assert_eq!(ctx.now().since(t0).as_micros_f64(), 2.0);
    });
    sim.run().unwrap();
}

#[test]
fn multiple_endpoints_to_same_worker_share_the_mailbox() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    let w2 = uni.create_worker(cpu(0));
    let target = w2.address();
    sim.spawn("s0", move |_| {
        w0.create_endpoint(target).unwrap().am_send(1, 10u32, 32);
    });
    sim.spawn("s1", move |_| {
        w1.create_endpoint(target).unwrap().am_send(1, 20u32, 32);
    });
    sim.spawn("rx", move |ctx| {
        let a = *w2.am_recv(ctx, 1).payload.downcast::<u32>().unwrap();
        let b = *w2.am_recv(ctx, 1).payload.downcast::<u32>().unwrap();
        assert_eq!(a + b, 30, "both senders' messages arrive on one tag");
    });
    sim.run().unwrap();
}

#[test]
fn put_handle_arrival_matches_event() {
    let mut sim = Simulation::new(SimConfig::default());
    let uni = universe(&sim, 1);
    let w0 = uni.create_worker(cpu(0));
    let w1 = uni.create_worker(cpu(0));
    let addr = w1.address();
    let src = Buffer::alloc(MemSpace::Device { node: 0, gpu: 0 }, 64);
    let dst = Buffer::alloc(MemSpace::Device { node: 0, gpu: 1 }, 64);
    let rkey = w1.mem_map(&dst).pack_rkey();
    sim.spawn("p", move |ctx| {
        let ep = w0.create_endpoint(addr).unwrap();
        let put = ep.put_nbx_silent(&src, 0, 64, &rkey, 0);
        ctx.wait(&put.done);
        assert_eq!(ctx.now(), put.arrival, "done fires exactly at arrival");
    });
    sim.run().unwrap();
}
