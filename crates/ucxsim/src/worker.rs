//! UCP workers, endpoints, and tagged active messages.
//!
//! Mirrors the subset of the UCP API the paper's Partitioned component uses
//! (§II-C, §IV-A): a **worker** encapsulates a communication context and
//! progression; an **endpoint** addresses a remote worker; tagged active
//! messages carry the `setup_t` bootstrap objects; RMA puts move payload
//! (see [`crate::rma`]).
//!
//! Workers live in a [`UcxUniverse`] — the in-simulation stand-in for the
//! out-of-band address exchange (PMIx/OOB) real deployments use.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::Location;
use parcomm_net::Fabric;
use parcomm_obs::{Counter, Histogram, MetricsRegistry};
use parcomm_sim::{Ctx, Event, SimDuration, SimHandle};

/// Address of a worker, obtainable via [`Worker::address`] and exchangeable
/// out of band (the simulation's universe registry plays that role).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct WorkerAddress(u64);

/// Errors surfaced by the UCX layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UcxError {
    /// The worker address is not registered in the universe.
    UnknownWorker(WorkerAddress),
    /// `rkey_ptr` is not available for this memory/topology combination.
    RkeyPtrUnavailable(&'static str),
    /// A `put_nbx` exhausted its retry/backoff budget without finding a
    /// usable route (fault-injected NIC outage outlasting the retry window).
    PutTimeout {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// Virtual time spent retrying, in whole microseconds.
        waited_us: u64,
        /// Stringified fabric error from the final attempt.
        cause: String,
    },
    /// The CUDA-IPC mapping behind an `rkey_ptr` has been revoked by the
    /// region owner; direct stores are no longer possible.
    MappingRevoked,
}

impl std::fmt::Display for UcxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UcxError::UnknownWorker(a) => write!(f, "unknown worker address {a:?}"),
            UcxError::RkeyPtrUnavailable(r) => write!(f, "ucp_rkey_ptr unavailable: {r}"),
            UcxError::PutTimeout { attempts, waited_us, cause } => write!(
                f,
                "ucp_put_nbx gave up after {attempts} attempts ({waited_us}us of backoff): {cause}"
            ),
            UcxError::MappingRevoked => {
                write!(f, "cuda-ipc mapping revoked; direct stores unavailable")
            }
        }
    }
}

impl std::error::Error for UcxError {}

/// A received active message: opaque payload plus the modeled wire size.
pub struct AmMessage {
    /// The payload (downcast to the concrete setup type by the receiver).
    pub payload: Box<dyn Any + Send>,
    /// Bytes the message occupied on the wire (for accounting).
    pub wire_bytes: u64,
}

#[derive(Default)]
struct Mailbox {
    queues: HashMap<u64, VecDeque<AmMessage>>,
    arrivals: HashMap<u64, Event>,
}

pub(crate) struct WorkerInner {
    address: WorkerAddress,
    location: Location,
    mailbox: Mutex<Mailbox>,
}

/// A UCP worker: one per process in the paper's design (§IV-A1).
#[derive(Clone)]
pub struct Worker {
    pub(crate) inner: Arc<WorkerInner>,
    pub(crate) universe: UcxUniverse,
}

/// The shared registry binding worker addresses to workers, plus the fabric
/// that carries their traffic.
#[derive(Clone)]
pub struct UcxUniverse {
    inner: Arc<UniverseInner>,
}

/// Metrics instruments of the UCX layer; attached via
/// [`UcxUniverse::attach_metrics`], dormant otherwise.
#[derive(Clone)]
pub(crate) struct UcxInstruments {
    pub(crate) puts: Counter,
    pub(crate) put_retries: Counter,
    pub(crate) put_failures: Counter,
    pub(crate) am_sends: Counter,
    pub(crate) am_retries: Counter,
    /// Remote keys packed (`ucp_rkey_pack`): one per region a channel
    /// exposes for RMA. The symmetric-heap backend's claim to fame is that
    /// this counter stays at zero on its channels.
    pub(crate) rkey_exchanges: Counter,
    /// log2-bucket issue → last-byte-landed latency of each `put_nbx`
    /// (µs), including any fault-retry backoff.
    pub(crate) put_latency: Histogram,
}

struct UniverseInner {
    fabric: Fabric,
    workers: Mutex<HashMap<WorkerAddress, Arc<WorkerInner>>>,
    instruments: Mutex<Option<UcxInstruments>>,
}

/// Worker addresses are globally unique so an address can never resolve in a
/// universe the worker does not belong to.
static NEXT_WORKER_ADDR: AtomicU64 = AtomicU64::new(1);

impl UcxUniverse {
    /// Create a universe over a fabric.
    pub fn new(fabric: Fabric) -> Self {
        UcxUniverse {
            inner: Arc::new(UniverseInner {
                fabric,
                workers: Mutex::new(HashMap::new()),
                instruments: Mutex::new(None),
            }),
        }
    }

    /// Attach metrics instruments (`ucx.puts`, `ucx.put_retries`,
    /// `ucx.put_failures`, `ucx.am_sends`, `ucx.am_retries`,
    /// `ucx.rkey_exchanges`, and the `ucx.put_latency_us` issue →
    /// completion histogram) to the given registry.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        *self.inner.instruments.lock() = Some(UcxInstruments {
            puts: registry.counter("ucx.puts"),
            put_retries: registry.counter("ucx.put_retries"),
            put_failures: registry.counter("ucx.put_failures"),
            am_sends: registry.counter("ucx.am_sends"),
            am_retries: registry.counter("ucx.am_retries"),
            rkey_exchanges: registry.counter("ucx.rkey_exchanges"),
            put_latency: registry.histogram("ucx.put_latency_us"),
        });
    }

    pub(crate) fn obs(&self) -> Option<UcxInstruments> {
        self.inner.instruments.lock().clone()
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The simulation handle.
    pub fn sim(&self) -> &SimHandle {
        self.inner.fabric.sim()
    }

    /// Create and register a worker homed at `location` (the CPU of the
    /// owning process in the paper's design; communication resources are
    /// host-driven even when payload lives in device memory).
    pub fn create_worker(&self, location: Location) -> Worker {
        let address = WorkerAddress(NEXT_WORKER_ADDR.fetch_add(1, Ordering::Relaxed));
        let inner = Arc::new(WorkerInner {
            address,
            location,
            mailbox: Mutex::new(Mailbox::default()),
        });
        self.inner.workers.lock().insert(address, inner.clone());
        Worker { inner, universe: self.clone() }
    }

    pub(crate) fn lookup(&self, addr: WorkerAddress) -> Result<Arc<WorkerInner>, UcxError> {
        self.inner
            .workers
            .lock()
            .get(&addr)
            .cloned()
            .ok_or(UcxError::UnknownWorker(addr))
    }
}

impl Worker {
    /// This worker's address (exchanged out of band).
    pub fn address(&self) -> WorkerAddress {
        self.inner.address
    }

    /// Where this worker is homed.
    pub fn location(&self) -> Location {
        self.inner.location
    }

    /// The universe this worker belongs to.
    pub fn universe(&self) -> &UcxUniverse {
        &self.universe
    }

    /// Create an endpoint addressing `remote`.
    pub fn create_endpoint(&self, remote: WorkerAddress) -> Result<Endpoint, UcxError> {
        let peer = self.universe.lookup(remote)?;
        Ok(Endpoint { src: self.inner.clone(), dst: peer, universe: self.universe.clone() })
    }

    /// Non-blocking tagged receive: returns a message if one is queued.
    pub fn try_am_recv(&self, tag: u64) -> Option<AmMessage> {
        let mut mb = self.inner.mailbox.lock();
        let msg = mb.queues.get_mut(&tag)?.pop_front();
        if msg.is_some() {
            // Re-arm the arrival event if the queue drained.
            if mb.queues.get(&tag).is_none_or(|q| q.is_empty()) {
                if let Some(ev) = mb.arrivals.get(&tag) {
                    if ev.is_set() {
                        ev.reset();
                    }
                }
            }
        }
        msg
    }

    /// Blocking tagged receive (virtual time).
    pub fn am_recv(&self, ctx: &mut Ctx, tag: u64) -> AmMessage {
        loop {
            if let Some(m) = self.try_am_recv(tag) {
                return m;
            }
            let ev = self.arrival_event(tag);
            ctx.wait(&ev);
        }
    }

    /// Bounded tagged receive: like [`Worker::am_recv`] but gives up after
    /// `timeout` of virtual time with no message. The watchdog surface for
    /// handshake waits — a peer that died mid-protocol must not park this
    /// process forever.
    pub fn am_recv_timeout(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        timeout: SimDuration,
    ) -> Option<AmMessage> {
        let deadline = ctx.now() + timeout;
        loop {
            if let Some(m) = self.try_am_recv(tag) {
                return Some(m);
            }
            if ctx.now() >= deadline {
                return None;
            }
            let ev = self.arrival_event(tag);
            ctx.wait_timeout(&ev, deadline.since(ctx.now()));
        }
    }

    /// The event that fires when a message with `tag` is queued. Used by
    /// progression engines to poll without busy-waiting.
    pub fn arrival_event(&self, tag: u64) -> Event {
        let mut mb = self.inner.mailbox.lock();
        mb.arrivals.entry(tag).or_default().clone()
    }

    /// Explicit progression hook (`ucp_worker_progress`). Message delivery
    /// in the model is event-driven, so this only charges the poll cost —
    /// it exists so progression-engine loops read like the real thing.
    pub fn progress(&self, ctx: &mut Ctx, poll_cost: SimDuration) {
        ctx.advance(poll_cost);
    }

    pub(crate) fn deliver(&self, h: &SimHandle, tag: u64, msg: AmMessage) {
        let ev = {
            let mut mb = self.inner.mailbox.lock();
            mb.queues.entry(tag).or_default().push_back(msg);
            mb.arrivals.entry(tag).or_default().clone()
        };
        ev.set(h);
    }
}

/// A UCP endpoint: the source-side object addressing one remote worker.
#[derive(Clone)]
pub struct Endpoint {
    pub(crate) src: Arc<WorkerInner>,
    pub(crate) dst: Arc<WorkerInner>,
    pub(crate) universe: UcxUniverse,
}

impl Endpoint {
    /// Location of the initiating worker.
    pub fn src_location(&self) -> Location {
        self.src.location
    }

    /// Location of the target worker.
    pub fn dst_location(&self) -> Location {
        self.dst.location
    }

    /// Send a tagged active message carrying `payload`; `wire_bytes` is the
    /// modeled serialized size (control messages are small, e.g. the
    /// `setup_t` exchange). Returns an event that fires at delivery.
    ///
    /// Control messages ride the reliable transport: under a fault-injected
    /// NIC outage the send retries on a fixed backoff until a route exists
    /// again (bounded by [`AM_MAX_ATTEMPTS`]; an outage outlasting that
    /// drops the message, which the receiver-side watchdog surfaces as a
    /// typed timeout). With no faults armed the retry path is never entered.
    pub fn am_send<T: Any + Send>(&self, tag: u64, payload: T, wire_bytes: u64) -> Event {
        let done = Event::named(format!("am_send tag {tag}"));
        let payload: Box<dyn Any + Send> = Box::new(payload);
        am_send_attempt(
            self.universe.clone(),
            self.src.location,
            self.dst.clone(),
            tag,
            payload,
            wire_bytes,
            done.clone(),
            0,
        );
        done
    }
}

/// Maximum attempts for one active-message send under NIC outages.
pub const AM_MAX_ATTEMPTS: u32 = 64;

/// Backoff between active-message retry attempts (µs).
pub const AM_RETRY_BACKOFF_US: f64 = 50.0;

/// One attempt at putting an active message on the wire; reschedules itself
/// on a routing failure. Free function (not a closure) so the retry chain
/// can recurse from scheduled callbacks.
#[allow(clippy::too_many_arguments)]
fn am_send_attempt(
    universe: UcxUniverse,
    src: Location,
    dst: Arc<WorkerInner>,
    tag: u64,
    payload: Box<dyn Any + Send>,
    wire_bytes: u64,
    done: Event,
    attempt: u32,
) {
    let h = universe.sim().clone();
    let now = h.now();
    if let Some(i) = universe.obs() {
        if attempt == 0 {
            i.am_sends.inc();
        } else {
            i.am_retries.inc();
        }
    }
    match universe.fabric().try_transfer_at(now, src, dst.location, wire_bytes) {
        Ok(transfer) => {
            // Deliver into the mailbox exactly at arrival.
            h.schedule_at(transfer.arrival, move |h| {
                let worker = Worker { inner: dst, universe };
                worker.deliver(h, tag, AmMessage { payload, wire_bytes });
                done.set(h);
            });
        }
        Err(_) if attempt + 1 < AM_MAX_ATTEMPTS => {
            h.schedule_in(
                parcomm_sim::SimDuration::from_micros_f64(AM_RETRY_BACKOFF_US),
                move |_h| {
                    am_send_attempt(universe, src, dst, tag, payload, wire_bytes, done, attempt + 1)
                },
            );
        }
        Err(_) => {
            // Outage outlasted every retry: the message is lost. The
            // receiver's watchdog turns the missing arrival into a typed
            // timeout; `done` stays unset.
        }
    }
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("address", &self.inner.address)
            .field("location", &self.inner.location)
            .finish()
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("src", &self.src.location)
            .field("dst", &self.dst.location)
            .finish()
    }
}
