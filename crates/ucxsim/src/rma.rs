//! UCP RMA: memory registration, remote keys, and `put_nbx`.
//!
//! The put is the workhorse of the paper's Partitioned component
//! (§IV-A4): `MPI_Pready` issues a `ucp_put_nbx` for the partition's data
//! and chains a second, small put that raises the receive-side partition
//! flag (UCX has no put-with-receive-completion, cf.
//! `IBV_WR_RDMA_WRITE_WITH_IMM`). Callbacks attached to a put run exactly
//! at its arrival instant, which is where the chained put is issued.
//!
//! `rkey_ptr` models the paper's modified `uct_cuda_ipc_rkey_ptr`: for
//! device memory on the same node it exposes a directly-storable mapping of
//! the remote buffer (the Kernel Copy substrate).

use parcomm_gpu::{Buffer, MemSpace};
use parcomm_sim::{Event, SimHandle, SimTime};

use crate::worker::{Endpoint, UcxError, Worker};

/// A registered memory region (`ucp_mem_map`).
#[derive(Clone, Debug)]
pub struct MemHandle {
    buffer: Buffer,
}

impl MemHandle {
    /// The registered buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// Pack a remote key for this region (`ucp_rkey_pack`). The returned
    /// key is what the receiver ships to the sender in its `setup_t` reply.
    pub fn pack_rkey(&self) -> RKey {
        RKey { buffer: self.buffer.clone() }
    }
}

/// A packed/unpacked remote key: the capability to put into a remote
/// registered region. In the simulation it carries the target buffer
/// handle; on hardware it would carry `(raddr, rkey)`.
#[derive(Clone, Debug)]
pub struct RKey {
    buffer: Buffer,
}

impl RKey {
    /// The memory space of the region this key targets.
    pub fn space(&self) -> MemSpace {
        self.buffer.space()
    }

    /// Length of the target region in bytes.
    pub fn region_len(&self) -> usize {
        self.buffer.len()
    }

    /// Direct load/store mapping of the remote region (`ucp_rkey_ptr`).
    ///
    /// Only available when the region is GPU global memory on the same node
    /// as the caller — the CUDA-IPC transport the paper modified. All other
    /// combinations return [`UcxError::RkeyPtrUnavailable`], matching
    /// mainline UCX exposing this only for host-reachable mappings.
    pub fn rkey_ptr(&self, caller_node: u16) -> Result<Buffer, UcxError> {
        match self.buffer.space() {
            MemSpace::Device { node, .. } if node == caller_node => Ok(self.buffer.clone()),
            MemSpace::Device { .. } => {
                Err(UcxError::RkeyPtrUnavailable("peer GPU is on a different node"))
            }
            _ => Err(UcxError::RkeyPtrUnavailable("region is not CUDA memory")),
        }
    }

    /// The target buffer (simulation-internal; used by the functional copy).
    pub fn target_buffer(&self) -> &Buffer {
        &self.buffer
    }
}

/// Completion handle of a `put_nbx`.
#[derive(Clone, Debug)]
pub struct PutHandle {
    /// Fires when the last byte (and the completion callback) has landed.
    pub done: Event,
    /// Arrival instant at the target.
    pub arrival: SimTime,
}

impl Worker {
    /// Register `buffer` with this worker's context (`ucp_mem_map`).
    /// Registration *cost* is charged by the caller (it is part of the
    /// `MPIX_Prequest_create` / first-`Pbuf_prepare` overheads in Table I).
    pub fn mem_map(&self, buffer: &Buffer) -> MemHandle {
        MemHandle { buffer: buffer.clone() }
    }
}

impl Endpoint {
    /// Non-blocking RMA put (`ucp_put_nbx`): move `len` bytes from
    /// `src[src_off..]` into the remote region `rkey[dst_off..]`.
    ///
    /// The transfer is routed from the *source buffer's* location to the
    /// *target buffer's* location (GPUDirect semantics: device-resident
    /// payload moves GPU→GPU without staging through the host even though
    /// the operation is posted by the host).
    ///
    /// `on_complete` runs at the arrival instant, after the functional copy
    /// — the hook where the paper chains the receive-side flag put.
    pub fn put_nbx(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
        on_complete: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> PutHandle {
        let fabric = self.universe.fabric();
        let from = src.space().location();
        let to = rkey.space().location();
        let transfer = fabric.transfer(from, to, len as u64);
        let src = src.clone();
        let dst = rkey.target_buffer().clone();
        let done = Event::new();
        let done2 = done.clone();
        self.universe.sim().schedule_at(transfer.arrival, move |h| {
            dst.copy_from_buffer(dst_off, &src, src_off, len);
            on_complete(h);
            done2.set(h);
        });
        PutHandle { done, arrival: transfer.arrival }
    }

    /// Put without a completion callback.
    pub fn put_nbx_silent(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
    ) -> PutHandle {
        self.put_nbx(src, src_off, len, rkey, dst_off, |_| {})
    }
}
