//! UCP RMA: memory registration, remote keys, and `put_nbx`.
//!
//! The put is the workhorse of the paper's Partitioned component
//! (§IV-A4): `MPI_Pready` issues a `ucp_put_nbx` for the partition's data
//! and chains a second, small put that raises the receive-side partition
//! flag (UCX has no put-with-receive-completion, cf.
//! `IBV_WR_RDMA_WRITE_WITH_IMM`). Callbacks attached to a put run exactly
//! at its arrival instant, which is where the chained put is issued.
//!
//! `rkey_ptr` models the paper's modified `uct_cuda_ipc_rkey_ptr`: for
//! device memory on the same node it exposes a directly-storable
//! [`IpcMapping`] of the remote buffer (the Kernel Copy substrate). The
//! mapping is *revocable* — chaos schedules revoke it mid-epoch and the
//! partitioned runtime falls back to the Progression Engine.
//!
//! ## Fault recovery
//!
//! With a fault schedule armed on the fabric, a put whose route has no
//! usable NIC retries with exponential backoff ([`PUT_RETRY_BACKOFF_US`],
//! doubling, up to [`PUT_MAX_ATTEMPTS`] attempts). Exhausting the retries
//! records [`UcxError::PutTimeout`] in the put's [`PutHandle::result`] and
//! fires `done` anyway, so waiters observe a typed failure instead of
//! blocking forever. With no faults armed, the retry machinery is never
//! entered and behavior is byte-identical to the fault-free model.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parcomm_gpu::{Buffer, Location, MemSpace};
use parcomm_net::{Fabric, NetError, RouteClass};
use parcomm_sim::{Event, Mutex, SimDuration, SimHandle, SimTime, SpanId};

use crate::worker::{Endpoint, UcxError, UcxUniverse, Worker};

/// Maximum attempts (first try + retries) for one `put_nbx` before it fails
/// with [`UcxError::PutTimeout`].
pub const PUT_MAX_ATTEMPTS: u32 = 6;

/// Backoff before the first retry (µs); doubles per attempt (exponential).
pub const PUT_RETRY_BACKOFF_US: f64 = 20.0;

/// A registered memory region (`ucp_mem_map`).
#[derive(Clone)]
pub struct MemHandle {
    buffer: Buffer,
    universe: UcxUniverse,
}

impl MemHandle {
    /// The registered buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// Pack a remote key for this region (`ucp_rkey_pack`). The returned
    /// key is what the receiver ships to the sender in its `setup_t` reply.
    /// Counted as `ucx.rkey_exchanges` — the per-channel handshake cost
    /// the symmetric-heap backend exists to avoid.
    pub fn pack_rkey(&self) -> RKey {
        if let Some(i) = self.universe.obs() {
            i.rkey_exchanges.inc();
        }
        RKey { buffer: self.buffer.clone(), ipc_valid: Arc::new(AtomicBool::new(true)) }
    }
}

impl std::fmt::Debug for MemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemHandle").field("buffer", &self.buffer).finish()
    }
}

/// A packed/unpacked remote key: the capability to put into a remote
/// registered region. In the simulation it carries the target buffer
/// handle; on hardware it would carry `(raddr, rkey)`.
#[derive(Clone, Debug)]
pub struct RKey {
    buffer: Buffer,
    /// Shared validity bit of the CUDA-IPC mapping derived from this key.
    /// Cloned keys (and the mappings handed out by [`RKey::rkey_ptr`]) all
    /// observe a revocation, wherever they traveled.
    ipc_valid: Arc<AtomicBool>,
}

impl RKey {
    /// The memory space of the region this key targets.
    pub fn space(&self) -> MemSpace {
        self.buffer.space()
    }

    /// Length of the target region in bytes.
    pub fn region_len(&self) -> usize {
        self.buffer.len()
    }

    /// Direct load/store mapping of the remote region (`ucp_rkey_ptr`).
    ///
    /// Only available when the region is GPU global memory and the route
    /// from `caller` to it is IPC-eligible ([`RouteClass::ipc_eligible`]:
    /// any intra-node class) — the CUDA-IPC transport the paper modified.
    /// Cross-node routes and non-CUDA regions return
    /// [`UcxError::RkeyPtrUnavailable`], matching mainline UCX exposing
    /// this only for host-reachable mappings; cross-node traffic must take
    /// the Progression Engine path.
    pub fn rkey_ptr(&self, caller: Location) -> Result<IpcMapping, UcxError> {
        if !self.ipc_valid.load(Ordering::Acquire) {
            return Err(UcxError::MappingRevoked);
        }
        let space = self.buffer.space();
        if !matches!(space, MemSpace::Device { .. }) {
            return Err(UcxError::RkeyPtrUnavailable("region is not CUDA memory"));
        }
        if !RouteClass::classify(caller, space.location()).ipc_eligible() {
            return Err(UcxError::RkeyPtrUnavailable("peer GPU is on a different node"));
        }
        Ok(IpcMapping { buffer: self.buffer.clone(), valid: self.ipc_valid.clone() })
    }

    /// Revoke the CUDA-IPC mapping (fault injection: the driver tore down
    /// the IPC handle, e.g. `cuIpcCloseMemHandle` on the owner side). Every
    /// [`IpcMapping`] already derived from this key — on any clone of it —
    /// observes the revocation on its next validity check. RMA puts through
    /// the key are unaffected; only the direct-store mapping dies.
    pub fn revoke_ipc(&self) {
        self.ipc_valid.store(false, Ordering::Release);
    }

    /// The target buffer (simulation-internal; used by the functional copy).
    pub fn target_buffer(&self) -> &Buffer {
        &self.buffer
    }
}

/// A live CUDA-IPC mapping of a remote region (`ucp_rkey_ptr` result):
/// directly storable from device code, but revocable by the region owner.
/// Users must check [`IpcMapping::is_valid`] before each store batch and
/// fall back to an RMA path once revoked.
#[derive(Clone, Debug)]
pub struct IpcMapping {
    buffer: Buffer,
    valid: Arc<AtomicBool>,
}

impl IpcMapping {
    /// The mapped remote buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// True while the mapping has not been revoked.
    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::Acquire)
    }
}

/// Completion handle of a `put_nbx`.
#[derive(Clone, Debug)]
pub struct PutHandle {
    /// Fires when the put has settled: the last byte (and the completion
    /// callback) landed, **or** the put failed after exhausting retries.
    /// Check [`PutHandle::result`] to distinguish.
    pub done: Event,
    /// Arrival instant at the target, as computed at issue time. For a put
    /// that entered fault-retry this is provisional; the authoritative
    /// arrival is in [`PutHandle::result`].
    pub arrival: SimTime,
    result: Arc<Mutex<Option<Result<SimTime, UcxError>>>>,
}

impl PutHandle {
    /// The put's outcome: `None` until `done` fires, then `Ok(arrival)` or
    /// the typed error that ended the retry sequence.
    pub fn result(&self) -> Option<Result<SimTime, UcxError>> {
        self.result.lock().clone()
    }

    /// True once the put has settled as a failure.
    pub fn is_failed(&self) -> bool {
        matches!(*self.result.lock(), Some(Err(_)))
    }
}

impl Worker {
    /// Register `buffer` with this worker's context (`ucp_mem_map`).
    /// Registration *cost* is charged by the caller (it is part of the
    /// `MPIX_Prequest_create` / first-`Pbuf_prepare` overheads in Table I).
    pub fn mem_map(&self, buffer: &Buffer) -> MemHandle {
        MemHandle { buffer: buffer.clone(), universe: self.universe.clone() }
    }
}

/// Completion hook of a put: runs at arrival with the put's
/// `put_complete` trace span ([`SpanId::NONE`] when causal tracing is
/// off).
type PutCompletion = Box<dyn FnOnce(&SimHandle, SpanId) + Send + 'static>;

/// MPI-level attribution of a put, carried through its causal spans so
/// `obs::critical` resolves cross-rank handoffs exactly: the `put` span
/// takes the *source* rank, the `wire` and `put_complete` spans take the
/// *destination* rank (the bytes land there). All fields are
/// digest-neutral — span digests hash only `(category, start, end)`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PutAttr {
    /// Rank that issued the put.
    pub src_rank: Option<u32>,
    /// Rank whose memory the put lands in.
    pub dst_rank: Option<u32>,
    /// Transport partition the put serves, when meaningful.
    pub partition: Option<u32>,
}

impl PutAttr {
    /// No attribution (the pre-existing `put_nbx_caused` behavior).
    pub const NONE: PutAttr = PutAttr { src_rank: None, dst_rank: None, partition: None };
}

/// Everything one put attempt needs; kept in a struct so the retry chain
/// can re-issue it from scheduled callbacks.
struct PendingPut {
    fabric: Fabric,
    universe: UcxUniverse,
    from: Location,
    to: Location,
    src: Buffer,
    src_off: usize,
    len: usize,
    dst: Buffer,
    dst_off: usize,
    on_complete: PutCompletion,
    done: Event,
    result: Arc<Mutex<Option<Result<SimTime, UcxError>>>>,
    first_try_at: SimTime,
    /// Causal parent of the put (e.g. the PE drain that issued it).
    cause: SpanId,
    /// MPI-level attribution for the put's causal spans.
    attr: PutAttr,
    /// Requested stripe count. `1` (the overwhelmingly common case) takes
    /// the classic single-transfer path untouched; `> 1` routes the put
    /// through a [`MultiPathPlan`](parcomm_net::MultiPathPlan) with
    /// per-stripe functional copies and completion spans.
    stripes: usize,
}

/// Issue (or re-issue) one attempt of a put; schedules the next retry with
/// exponential backoff on a routing failure, or settles the handle with
/// [`UcxError::PutTimeout`] once attempts are exhausted.
fn attempt_put(p: PendingPut, attempt: u32) -> SimTime {
    let h = p.fabric.sim().clone();
    let now = h.now();
    if attempt == 0 {
        if let Some(i) = p.universe.obs() {
            i.puts.inc();
        }
    }
    // The put's issue instant, causally chained to whatever posted it; the
    // wire span it produces is in turn chained to the put.
    let put_span =
        h.trace().record_causal("put", now, now, p.attr.src_rank, p.attr.partition, p.cause);
    if p.stripes > 1 {
        return attempt_put_striped(p, attempt, put_span, h, now);
    }
    match p.fabric.try_transfer_attr(
        now,
        p.from,
        p.to,
        p.len as u64,
        put_span,
        p.attr.dst_rank,
        p.attr.partition,
    ) {
        Ok(transfer) => {
            let arrival = transfer.arrival;
            let wire_span = transfer.span;
            let PendingPut {
                universe,
                src,
                src_off,
                len,
                dst,
                dst_off,
                on_complete,
                done,
                result,
                first_try_at,
                attr,
                ..
            } = p;
            h.schedule_at(arrival, move |h| {
                dst.copy_from_buffer(dst_off, &src, src_off, len);
                if let Some(i) = universe.obs() {
                    let issue_to_land = arrival.since(first_try_at).as_micros_f64();
                    i.put_latency.record(issue_to_land.round() as u64);
                }
                let complete_span = h.trace().record_causal(
                    "put_complete",
                    arrival,
                    arrival,
                    attr.dst_rank,
                    attr.partition,
                    wire_span,
                );
                on_complete(h, complete_span);
                *result.lock() = Some(Ok(arrival));
                done.set(h);
            });
            arrival
        }
        Err(net_err) => retry_or_fail(p, attempt, net_err, &h, now),
    }
}

/// Shared failure arm of the put retry chain: schedule the next attempt
/// with exponential backoff, or settle the handle with
/// [`UcxError::PutTimeout`] once attempts are exhausted.
fn retry_or_fail(
    p: PendingPut,
    attempt: u32,
    net_err: NetError,
    h: &SimHandle,
    now: SimTime,
) -> SimTime {
    if let Some(i) = p.universe.obs() {
        if attempt + 1 >= PUT_MAX_ATTEMPTS {
            i.put_failures.inc();
        } else {
            i.put_retries.inc();
        }
    }
    if attempt + 1 >= PUT_MAX_ATTEMPTS {
        let waited = now.since(p.first_try_at);
        *p.result.lock() = Some(Err(UcxError::PutTimeout {
            attempts: attempt + 1,
            waited_us: waited.as_micros_f64() as u64,
            cause: net_err.to_string(),
        }));
        p.done.set(h);
    } else {
        let backoff =
            SimDuration::from_micros_f64(PUT_RETRY_BACKOFF_US * f64::powi(2.0, attempt as i32));
        h.schedule_in(backoff, move |_h| {
            attempt_put(p, attempt + 1);
        });
    }
    now
}

/// The multi-path arm of [`attempt_put`]: execute the put through a
/// [`MultiPathPlan`](parcomm_net::MultiPathPlan). Each stripe applies its
/// partial functional copy and records its own `put_complete` span (caused
/// by that stripe's `wire` span) the instant it lands; the put's
/// completion hook, latency metric, and `done` event fire only at the
/// **assembly barrier** — the slowest stripe's arrival — so chained
/// operations (the receive-side flag put above all) never observe a
/// partially reassembled payload. Retries and [`UcxError::PutTimeout`]
/// behave exactly as on the single-path arm; each retry re-plans against
/// the rails surviving at that instant.
fn attempt_put_striped(
    p: PendingPut,
    attempt: u32,
    put_span: SpanId,
    h: SimHandle,
    now: SimTime,
) -> SimTime {
    let plan = p
        .fabric
        .plan(p.from, p.to, p.len as u64, p.stripes)
        .expect("stripe count validated when the request was configured");
    match p.fabric.try_transfer_planned(now, &plan, put_span, p.attr.dst_rank, p.attr.partition) {
        Ok(st) => {
            let arrival = st.arrival;
            let PendingPut {
                universe,
                src,
                src_off,
                dst,
                dst_off,
                on_complete,
                done,
                result,
                first_try_at,
                attr,
                ..
            } = p;
            // The last-landing stripe's put_complete span, handed to the
            // completion hook so the chained flag put extends the causal
            // chain from the stripe that actually finished the payload.
            let last_span = Arc::new(Mutex::new(SpanId::NONE));
            for s in &st.stripes {
                let (dst, src) = (dst.clone(), src.clone());
                let (s_off, d_off, s_len) =
                    (src_off + s.offset as usize, dst_off + s.offset as usize, s.len as usize);
                let (stripe_arrival, stripe_span) = (s.arrival, s.span);
                let last = last_span.clone();
                h.schedule_at(stripe_arrival, move |h| {
                    dst.copy_from_buffer(d_off, &src, s_off, s_len);
                    let span = h.trace().record_causal(
                        "put_complete",
                        stripe_arrival,
                        stripe_arrival,
                        attr.dst_rank,
                        attr.partition,
                        stripe_span,
                    );
                    *last.lock() = span;
                });
            }
            // Scheduled after the stripe landings, so at the barrier
            // instant FIFO ordering guarantees every copy has applied.
            h.schedule_at(arrival, move |h| {
                if let Some(i) = universe.obs() {
                    let issue_to_land = arrival.since(first_try_at).as_micros_f64();
                    i.put_latency.record(issue_to_land.round() as u64);
                }
                on_complete(h, *last_span.lock());
                *result.lock() = Some(Ok(arrival));
                done.set(h);
            });
            arrival
        }
        Err(net_err) => retry_or_fail(p, attempt, net_err, &h, now),
    }
}

impl Endpoint {
    /// Non-blocking RMA put (`ucp_put_nbx`): move `len` bytes from
    /// `src[src_off..]` into the remote region `rkey[dst_off..]`.
    ///
    /// The transfer is routed from the *source buffer's* location to the
    /// *target buffer's* location (GPUDirect semantics: device-resident
    /// payload moves GPU→GPU without staging through the host even though
    /// the operation is posted by the host).
    ///
    /// `on_complete` runs at the arrival instant, after the functional copy
    /// — the hook where the paper chains the receive-side flag put. If the
    /// put fails (fault-injected NIC outage outlasting the retry window),
    /// `on_complete` never runs; `done` fires with an `Err` in
    /// [`PutHandle::result`] instead.
    pub fn put_nbx(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
        on_complete: impl FnOnce(&SimHandle) + Send + 'static,
    ) -> PutHandle {
        self.put_nbx_caused(src, src_off, len, rkey, dst_off, SpanId::NONE, move |h, _span| {
            on_complete(h)
        })
    }

    /// Like [`put_nbx`](Endpoint::put_nbx), with causal tracing: `cause` is
    /// the span that posted this put (e.g. the progression-engine drain),
    /// and `on_complete` receives the put's `put_complete` span so chained
    /// operations — the receive-side flag put above all — can extend the
    /// causal chain. Identical to `put_nbx` when causal tracing is off.
    #[allow(clippy::too_many_arguments)]
    pub fn put_nbx_caused(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
        cause: SpanId,
        on_complete: impl FnOnce(&SimHandle, SpanId) + Send + 'static,
    ) -> PutHandle {
        self.put_nbx_attr(src, src_off, len, rkey, dst_off, PutAttr::NONE, cause, on_complete)
    }

    /// Like [`put_nbx_caused`](Endpoint::put_nbx_caused), additionally
    /// carrying the MPI ranks (and partition) of the transfer through the
    /// `put` → `wire` → `put_complete` causal chain — see [`PutAttr`].
    #[allow(clippy::too_many_arguments)]
    pub fn put_nbx_attr(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
        attr: PutAttr,
        cause: SpanId,
        on_complete: impl FnOnce(&SimHandle, SpanId) + Send + 'static,
    ) -> PutHandle {
        self.put_nbx_striped(src, src_off, len, rkey, dst_off, 1, attr, cause, on_complete)
    }

    /// Like [`put_nbx_attr`](Endpoint::put_nbx_attr), splitting the payload
    /// into up to `stripes` stripes routed concurrently over the eligible
    /// paths of the fabric (a [`MultiPathPlan`](parcomm_net::MultiPathPlan)
    /// per attempt). `stripes <= 1` is **exactly** `put_nbx_attr` — same
    /// code path, same events, same spans — so single-path behavior is
    /// unchanged by construction. Each stripe lands (functional copy +
    /// `put_complete` span) at its own arrival; `on_complete`, the handle's
    /// result, and `done` fire at the assembly barrier when the slowest
    /// stripe arrives. The caller is responsible for `stripes` being within
    /// [`parcomm_net::MAX_STRIPES`].
    #[allow(clippy::too_many_arguments)]
    pub fn put_nbx_striped(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
        stripes: usize,
        attr: PutAttr,
        cause: SpanId,
        on_complete: impl FnOnce(&SimHandle, SpanId) + Send + 'static,
    ) -> PutHandle {
        let fabric = self.universe.fabric().clone();
        let done = Event::named("put_nbx");
        let result = Arc::new(Mutex::new(None));
        let pending = PendingPut {
            universe: self.universe.clone(),
            from: src.space().location(),
            to: rkey.space().location(),
            src: src.clone(),
            src_off,
            len,
            dst: rkey.target_buffer().clone(),
            dst_off,
            on_complete: Box::new(on_complete),
            done: done.clone(),
            result: result.clone(),
            first_try_at: fabric.sim().now(),
            fabric,
            cause,
            attr,
            stripes: stripes.max(1),
        };
        let arrival = attempt_put(pending, 0);
        PutHandle { done, arrival, result }
    }

    /// Put without a completion callback.
    pub fn put_nbx_silent(
        &self,
        src: &Buffer,
        src_off: usize,
        len: usize,
        rkey: &RKey,
        dst_off: usize,
    ) -> PutHandle {
        self.put_nbx(src, src_off, len, rkey, dst_off, |_| {})
    }
}
