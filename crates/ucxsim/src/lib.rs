//! # parcomm-ucx — the UCP-like communication layer
//!
//! Reproduces the API boundary the paper's Partitioned component is written
//! against (§II-C, §IV-A): workers and endpoints, tagged active messages for
//! the `setup_t` bootstrap exchange, registered memory with packable remote
//! keys, non-blocking RMA puts with chained completion callbacks, and the
//! modified CUDA-IPC `rkey_ptr` that underpins the Kernel Copy path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod rma;
mod worker;

pub use parcomm_net::MAX_STRIPES;
pub use rma::{
    IpcMapping, MemHandle, PutAttr, PutHandle, RKey, PUT_MAX_ATTEMPTS, PUT_RETRY_BACKOFF_US,
};
pub use worker::{
    AmMessage, Endpoint, UcxError, UcxUniverse, Worker, WorkerAddress, AM_MAX_ATTEMPTS,
    AM_RETRY_BACKOFF_US,
};
