//! The indexed channel table: a generational slab.
//!
//! The completion path of a multiplexer runs once per partition arrival —
//! at 4096 channels × many partitions, an O(channels) registry scan per
//! event is the difference between a service and a bonfire. The table
//! stores channels in a slab addressed by dense index; a generation
//! counter per slot makes stale ids (channel retired, slot reused) miss
//! instead of aliasing. Every operation touches exactly one slot, and the
//! table counts its slot probes so a regression test can assert the O(1)
//! contract instead of trusting it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Stable handle to a channel in a [`ChannelTable`]: dense slot index plus
/// the slot generation at insert time. Ids from retired channels go stale
/// rather than silently aliasing the slot's next occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MuxChannelId {
    index: u32,
    gen: u32,
}

impl MuxChannelId {
    /// Dense slot index — usable as a direct array subscript by callers
    /// that maintain side tables parallel to the slab.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl std::fmt::Display for MuxChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}g{}", self.index, self.gen)
    }
}

struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// Generational slab of live channels. Insert returns a [`MuxChannelId`];
/// lookups and removals are O(1) slot probes, observable via
/// [`ChannelTable::probe_ops`].
pub struct ChannelTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    probes: AtomicU64,
}

impl<T> Default for ChannelTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ChannelTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        ChannelTable { slots: Vec::new(), free: Vec::new(), len: 0, probes: AtomicU64::new(0) }
    }

    fn probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of live channels.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no channel is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative count of slot probes across every insert/get/remove —
    /// the observable that turns "lookups are O(1)" from a claim into an
    /// assertable invariant: N operations must cost exactly N probes no
    /// matter how many channels are live.
    pub fn probe_ops(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Insert a channel, reusing the lowest freed slot if any (ids stay
    /// dense, which keeps downstream side tables small).
    pub fn insert(&mut self, value: T) -> MuxChannelId {
        self.probe();
        self.len += 1;
        if let Some(i) = self.free.pop() {
            let slot = &mut self.slots[i as usize];
            slot.value = Some(value);
            return MuxChannelId { index: i, gen: slot.gen };
        }
        let i = self.slots.len() as u32;
        self.slots.push(Slot { gen: 0, value: Some(value) });
        MuxChannelId { index: i, gen: 0 }
    }

    /// The channel behind `id`, or `None` when the id is stale or unknown.
    pub fn get(&self, id: MuxChannelId) -> Option<&T> {
        self.probe();
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the channel behind `id`.
    pub fn get_mut(&mut self, id: MuxChannelId) -> Option<&mut T> {
        self.probe();
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Retire the channel behind `id`, bumping the slot generation so the
    /// id (and any copies of it) go stale.
    pub fn remove(&mut self, id: MuxChannelId) -> Option<T> {
        self.probe();
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.index);
        // Keep the free list sorted descending so pop() hands out the
        // lowest index first — deterministic reuse order regardless of
        // removal order within a tick.
        self.free.sort_unstable_by(|a, b| b.cmp(a));
        self.len -= 1;
        value
    }

    /// Iterate live channels in ascending slot order (deterministic; this
    /// is a full walk, intentionally not counted as a single probe).
    pub fn iter(&self) -> impl Iterator<Item = (MuxChannelId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| (MuxChannelId { index: i as u32, gen: s.gen }, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = ChannelTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.get(b), Some(&"b"));
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(a), None);
    }

    #[test]
    fn stale_ids_miss_after_slot_reuse() {
        let mut t = ChannelTable::new();
        let a = t.insert(1);
        t.remove(a);
        let b = t.insert(2);
        assert_eq!(b.index(), a.index(), "lowest freed slot is reused");
        assert_eq!(t.get(a), None, "old generation must miss");
        assert_eq!(t.get(b), Some(&2));
        assert_eq!(t.remove(a), None);
    }

    #[test]
    fn reuse_order_is_lowest_index_first() {
        let mut t = ChannelTable::new();
        let ids: Vec<_> = (0..4).map(|i| t.insert(i)).collect();
        t.remove(ids[2]);
        t.remove(ids[0]);
        assert_eq!(t.insert(10).index(), 0);
        assert_eq!(t.insert(11).index(), 2);
    }

    #[test]
    fn iter_walks_ascending_slot_order() {
        let mut t = ChannelTable::new();
        let ids: Vec<_> = (0..5).map(|i| t.insert(i * 10)).collect();
        t.remove(ids[1]);
        let seen: Vec<_> = t.iter().map(|(id, v)| (id.index(), *v)).collect();
        assert_eq!(seen, vec![(0, 0), (2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn operations_cost_one_probe_each_regardless_of_population() {
        let mut t = ChannelTable::new();
        let ids: Vec<_> = (0..4096).map(|i| t.insert(i)).collect();
        let after_insert = t.probe_ops();
        assert_eq!(after_insert, 4096);
        for id in &ids {
            t.get(*id);
        }
        assert_eq!(t.probe_ops() - after_insert, 4096, "a scan would cost ~4096x more");
    }
}
