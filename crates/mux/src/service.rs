//! The multiplexing service: admission, batched setup, fair drain.
//!
//! Lifecycle of a channel through the service:
//!
//! 1. [`MuxService::submit`] — the spec queues under its tenant. Typed
//!    refusals happen *here*: backpressure at the in-flight cap, shmem
//!    heap quota exhaustion. Reservation at submit (not at tick) keeps
//!    the answer independent of tick scheduling.
//! 2. [`MuxService::tick`] — *every* still-uninitialized pending channel
//!    is `init`-ed + `MPI_Start`-ed first (inits only send setup
//!    messages — cheap and non-blocking, so the whole backlog's
//!    handshakes go into flight at the first tick). Then pending
//!    submissions are canonically sorted per tenant (receives before
//!    sends), interleaved across tenants by smooth weighted round-robin,
//!    and the selected batch runs one
//!    [`parcomm_core::pbuf_prepare_batch`] — the expensive part
//!    (first-call registration) is what the batch coalesces: the first
//!    channel pays the full first-call charge, the rest pay only the
//!    per-channel batch increment. Each admitted channel comes out with
//!    **epoch 1 already active** (started + prepared).
//! 3. Epochs — [`MuxService::run_host_send_epoch`] /
//!    [`MuxService::run_recv_epoch`] for host-driven channels, or
//!    [`MuxService::begin_epoch`] + [`MuxService::record_epoch`] for
//!    device-driven ones. [`MuxService::plan_rounds`] hands out the
//!    weighted-fair drain order — a pure function of (weights, live
//!    table), so every rank computes the identical grant sequence.
//! 4. Teardown — [`MuxService::release`] is the graceful path: it
//!    refuses (typed) while an epoch is active, charges the
//!    `MPI_Request_free` host cost, and returns the in-flight slot plus
//!    any heap reservation to the tenant's quota, so the freed tag and
//!    bytes are immediately re-admissible under live traffic on the
//!    other channels. [`MuxService::retire`] is the bookkeeping-only
//!    drop for channels whose endpoint is already gone (peer crash,
//!    recovery abandonment) — same quota return, no epoch check, no
//!    free cost.
//!
//! **Cross-rank contract and deadlock-freedom**: all ranks of a
//! symmetric workload must submit mirrored channel sets (every send has
//! a matching receive on its peer, with equal per-tenant endpoint counts
//! on every rank) and drive `tick` until their pending queues drain.
//! Under that contract, admission may span any number of `tick_batch`
//! rounds without deadlock:
//!
//! - a granted **receive**'s first prepare waits only for its peer
//!   sender's setup message, and every rank's first tick put its whole
//!   backlog's inits in flight before anything blocked;
//! - a granted **send**'s first prepare waits for its receiver's prepare
//!   reply — and because every tenant grants all receives before any
//!   send, and per-tick per-tenant grant counts are identical on every
//!   rank (same weights, mirrored queue depths), a send is always
//!   granted in a tick round no earlier than its partner receive. By
//!   induction over tick rounds, every rank's round-`k` batch completes
//!   once all ranks have reached round `k` — no circular wait exists.
//!
//! A 4096-channel grid therefore coalesces into sixteen 256-channel
//! prepare batches, each paying one first-call registration charge.

use parcomm_core::{
    pbuf_prepare_batch, precv_init, psend_init, MpiError, PrecvRequest, PsendRequest,
};
use parcomm_gpu::Buffer;
use parcomm_mpi::{CopyMechanism, MpiWorld, Rank};
use parcomm_net::MultiPathPlan;
use parcomm_obs::{Counter, Histogram};
use parcomm_shmem::SHMEM_ALIGN;
use parcomm_sim::Ctx;

use crate::admission::{AdmissionError, ChannelSpec, Direction};
use crate::fairness::WeightedFair;
use crate::table::{ChannelTable, MuxChannelId};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct MuxConfig {
    /// One weight per tenant (zero clamps to 1). Weights govern admission
    /// interleave, drain grants, rail stripes, and heap quota.
    pub tenant_weights: Vec<u64>,
    /// Maximum channels admitted per [`MuxService::tick`].
    pub tick_batch: usize,
    /// Cap on live channels plus queued submissions; beyond it,
    /// [`MuxService::submit`] answers [`AdmissionError::Backpressure`].
    pub max_in_flight: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig { tenant_weights: vec![1], tick_batch: 256, max_in_flight: 8192 }
    }
}

impl MuxConfig {
    /// Config with the given tenant weights and default caps.
    pub fn with_weights(weights: &[u64]) -> Self {
        MuxConfig { tenant_weights: weights.to_vec(), ..MuxConfig::default() }
    }
}

/// The live endpoint object behind an admitted channel.
#[derive(Clone)]
pub enum MuxChannel {
    /// Sender side.
    Send(PsendRequest),
    /// Receiver side.
    Recv(PrecvRequest),
}

impl MuxChannel {
    /// The send request, if this is a sender-side channel.
    pub fn send(&self) -> Option<&PsendRequest> {
        match self {
            MuxChannel::Send(s) => Some(s),
            MuxChannel::Recv(_) => None,
        }
    }

    /// The receive request, if this is a receiver-side channel.
    pub fn recv(&self) -> Option<&PrecvRequest> {
        match self {
            MuxChannel::Recv(r) => Some(r),
            MuxChannel::Send(_) => None,
        }
    }
}

/// An admitted channel as it lives in the table.
pub struct AdmittedChannel {
    /// The spec it was admitted under.
    pub spec: ChannelSpec,
    /// The live request object.
    pub chan: MuxChannel,
    /// Rail stripes granted to this channel (1 on single-path routes).
    pub stripes: usize,
    /// Epochs drained so far (epoch 1 is active right after the tick).
    pub epochs_run: u64,
    /// Symmetric-heap bytes reserved against the tenant's quota.
    shmem_bytes: u64,
}

struct Pending {
    spec: ChannelSpec,
    buffer: Buffer,
    shmem_bytes: u64,
    /// Set once the backlog-wide init pass has opened this channel
    /// (request created, `MPI_Start`-ed, stripes assigned). The grant
    /// tick then only pays the prepare.
    inited: Option<(MuxChannel, usize)>,
}

struct TenantMetrics {
    goodput: Counter,
    epochs: Counter,
    latency: Histogram,
}

#[derive(Clone, Default)]
struct TenantStats {
    goodput_bytes: u64,
    epochs: u64,
    latencies_us: Vec<f64>,
}

/// Per-tenant totals, with raw epoch latencies so callers can compute
/// exact tail quantiles (the registry histogram is bucketed to 2×).
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant index.
    pub tenant: usize,
    /// The tenant's (clamped) weight.
    pub weight: u64,
    /// Payload bytes delivered across all recorded epochs.
    pub goodput_bytes: u64,
    /// Recorded epoch count.
    pub epochs: u64,
    /// Raw per-epoch latencies, in recording order.
    pub latencies_us: Vec<f64>,
}

impl TenantReport {
    /// Exact quantile of the recorded epoch latencies (nearest-rank), or
    /// 0 when nothing was recorded.
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_us.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("latency NaN"));
        let rank = ((q.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).max(1);
        v[rank - 1]
    }
}

/// The multiplexing service. One instance per rank; all instances of a
/// symmetric workload must be constructed with the same [`MuxConfig`].
pub struct MuxService {
    world: MpiWorld,
    tick_batch: usize,
    max_in_flight: usize,
    arbiter: WeightedFair,
    pending: Vec<Vec<Pending>>,
    pending_total: usize,
    table: ChannelTable<AdmittedChannel>,
    shmem_quota: Vec<u64>,
    shmem_reserved: Vec<u64>,
    stats: Vec<TenantStats>,
    metrics: Vec<Option<TenantMetrics>>,
}

impl MuxService {
    /// Build a service over `world`. The symmetric-heap quota per tenant
    /// is the weighted largest-remainder share of the rank's segment.
    pub fn new(world: &MpiWorld, config: MuxConfig) -> Self {
        let arbiter = WeightedFair::new(&config.tenant_weights);
        let n = arbiter.tenants();
        let shmem_quota = arbiter.share(world.shmem_heap().bytes_per_rank());
        MuxService {
            world: world.clone(),
            tick_batch: config.tick_batch.max(1),
            max_in_flight: config.max_in_flight.max(1),
            arbiter,
            pending: (0..n).map(|_| Vec::new()).collect(),
            pending_total: 0,
            table: ChannelTable::new(),
            shmem_quota,
            shmem_reserved: vec![0; n],
            stats: vec![TenantStats::default(); n],
            metrics: (0..n).map(|_| None).collect(),
        }
    }

    /// Number of configured tenants.
    pub fn tenants(&self) -> usize {
        self.arbiter.tenants()
    }

    /// Channels currently live in the table.
    pub fn in_flight(&self) -> usize {
        self.table.len()
    }

    /// Submissions queued but not yet admitted.
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// A tenant's symmetric-heap quota, in bytes.
    pub fn shmem_quota(&self, tenant: usize) -> u64 {
        self.shmem_quota[tenant]
    }

    /// Heap bytes a tenant currently holds reserved (released and retired
    /// channels have already returned theirs).
    pub fn shmem_reserved(&self, tenant: usize) -> u64 {
        self.shmem_reserved[tenant]
    }

    /// The indexed channel table's cumulative probe count (see
    /// [`ChannelTable::probe_ops`]).
    pub fn table_probe_ops(&self) -> u64 {
        self.table.probe_ops()
    }

    /// Projected symmetric-heap footprint of a receive channel: payload +
    /// one 8-byte arrival flag per partition + alignment slop for the two
    /// bindings.
    fn shmem_footprint(spec: &ChannelSpec) -> u64 {
        spec.bytes() + spec.partitions as u64 * 8 + 2 * SHMEM_ALIGN
    }

    /// Queue a channel for admission. Refusals are typed and immediate;
    /// acceptance reserves the in-flight slot (and, for shmem-eligible
    /// receives, the heap bytes) so a later tick cannot oversubscribe.
    pub fn submit(&mut self, spec: ChannelSpec, buffer: Buffer) -> Result<(), AdmissionError> {
        let tenants = self.arbiter.tenants();
        if spec.tenant >= tenants {
            return Err(AdmissionError::UnknownTenant { tenant: spec.tenant, tenants });
        }
        if self.table.len() + self.pending_total >= self.max_in_flight {
            return Err(AdmissionError::Backpressure {
                in_flight: self.table.len(),
                pending: self.pending_total,
                cap: self.max_in_flight,
            });
        }
        // Heap quota: a receive channel under the shmem mechanism binds
        // payload + flags into this rank's segment at prepare time.
        // Reservation is conservative — a cross-node route that later
        // demotes to rkey still holds its reservation until retirement.
        let shmem_bytes = if self.world.config().mechanism == CopyMechanism::Shmem
            && spec.direction == Direction::Recv
        {
            let requested = Self::shmem_footprint(&spec);
            let quota = self.shmem_quota[spec.tenant];
            let used = self.shmem_reserved[spec.tenant];
            if used + requested > quota {
                return Err(AdmissionError::ShmemQuotaExceeded {
                    tenant: spec.tenant,
                    requested,
                    quota,
                    used,
                });
            }
            self.shmem_reserved[spec.tenant] += requested;
            requested
        } else {
            0
        };
        self.pending[spec.tenant].push(Pending { spec, buffer, shmem_bytes, inited: None });
        self.pending_total += 1;
        Ok(())
    }

    /// Admit up to `tick_batch` pending channels in one batched sweep and
    /// return their ids in admission order. See the module docs for the
    /// ordering and pairing contract.
    pub fn tick(&mut self, ctx: &mut Ctx, rank: &Rank) -> Result<Vec<MuxChannelId>, MpiError> {
        // Canonical within-tenant order first (receives before sends;
        // descending so pop() drains the smallest key): both the init
        // pass below and the grant selection walk this order, keeping
        // the whole tick — inits included — invariant under any
        // submission shuffle.
        for q in &mut self.pending {
            q.sort_by_key(|e| std::cmp::Reverse(e.spec.canonical_key()));
        }

        // Phase 0 — init + start the *entire* backlog, granted this tick
        // or not. Inits only send setup messages, so nothing here blocks;
        // after the first tick every handshake any peer's receive could
        // wait on is already in flight. The expensive coalesced work
        // (first-call prepare registration) stays per-grant below.
        let topo = self.world.topology();
        let my_loc = self.world.gpu_of(rank.rank()).location();
        for q in &mut self.pending {
            for p in q.iter_mut().rev().filter(|p| p.inited.is_none()) {
                let (chan, stripes) = match p.spec.direction {
                    Direction::Recv => {
                        let r = precv_init(
                            ctx, rank, p.spec.peer, p.spec.tag, &p.buffer, p.spec.partitions,
                        )?;
                        r.start(ctx)?;
                        (MuxChannel::Recv(r), 1)
                    }
                    Direction::Send => {
                        let s = psend_init(
                            ctx, rank, p.spec.peer, p.spec.tag, &p.buffer, p.spec.partitions,
                        )?;
                        s.start(ctx)?;
                        let peer_loc = self.world.gpu_of(p.spec.peer).location();
                        let budget = MultiPathPlan::path_budget(&topo, my_loc, peer_loc);
                        let stripes = if budget > 1 {
                            let share = self.arbiter.share(budget as u64)[p.spec.tenant];
                            let stripes = (share.max(1) as usize).min(budget);
                            s.set_stripes(stripes)?;
                            stripes
                        } else {
                            1
                        };
                        (MuxChannel::Send(s), stripes)
                    }
                };
                p.inited = Some((chan, stripes));
            }
        }

        // Phase 1 — weighted-fair grant selection over the sorted queues.
        // The recv-first canonical order keeps multi-tick admission
        // deadlock-free (module docs).
        let mut grants: Vec<Pending> = Vec::new();
        while grants.len() < self.tick_batch {
            let eligible: Vec<bool> = self.pending.iter().map(|q| !q.is_empty()).collect();
            let Some(t) = self.arbiter.pick(&eligible) else { break };
            grants.push(self.pending[t].pop().expect("eligible tenant has pending"));
            self.pending_total -= 1;
        }
        if grants.is_empty() {
            return Ok(Vec::new());
        }
        let opened: Vec<(ChannelSpec, MuxChannel, usize, u64)> = grants
            .into_iter()
            .map(|p| {
                let (chan, stripes) = p.inited.expect("phase 0 inited the whole backlog");
                (p.spec, chan, stripes, p.shmem_bytes)
            })
            .collect();

        // Phase 2 — one batched prepare for the whole tick, receives
        // before sends: the first channel pays the full first-call
        // charge, every other channel only the batch increment.
        let recvs: Vec<PrecvRequest> =
            opened.iter().filter_map(|(_, c, _, _)| c.recv().cloned()).collect();
        let sends: Vec<PsendRequest> =
            opened.iter().filter_map(|(_, c, _, _)| c.send().cloned()).collect();
        pbuf_prepare_batch(ctx, &recvs, &sends)?;

        // Phase 3 — table insertion in admission order: id assignment is
        // deterministic, epoch 1 is live on every admitted channel.
        let ids = opened
            .into_iter()
            .map(|(spec, chan, stripes, shmem_bytes)| {
                self.table.insert(AdmittedChannel {
                    spec,
                    chan,
                    stripes,
                    epochs_run: 0,
                    shmem_bytes,
                })
            })
            .collect();
        Ok(ids)
    }

    /// The admitted channel behind `id` (stale ids miss).
    pub fn channel(&self, id: MuxChannelId) -> Option<&AdmittedChannel> {
        self.table.get(id)
    }

    /// Live channels in ascending slot order.
    pub fn channels(&self) -> impl Iterator<Item = (MuxChannelId, &AdmittedChannel)> {
        self.table.iter()
    }

    /// Plan a weighted-fair drain sequence of `budget` epoch grants over
    /// the live table: tenants interleave by smooth weighted round-robin,
    /// channels rotate round-robin within each tenant. Pure function of
    /// (weights, table contents) — every rank with a mirrored table
    /// computes the identical sequence, so symmetric workloads can drain
    /// in lockstep without negotiating.
    pub fn plan_rounds(&self, budget: usize) -> Vec<MuxChannelId> {
        let tenants = self.arbiter.tenants();
        let mut per_tenant: Vec<Vec<MuxChannelId>> = vec![Vec::new(); tenants];
        for (id, ch) in self.table.iter() {
            per_tenant[ch.spec.tenant].push(id);
        }
        let eligible: Vec<bool> = per_tenant.iter().map(|v| !v.is_empty()).collect();
        if !eligible.iter().any(|&e| e) {
            return Vec::new();
        }
        let mut wf = WeightedFair::new(self.arbiter.weights());
        let mut cursor = vec![0usize; tenants];
        let mut out = Vec::with_capacity(budget);
        for _ in 0..budget {
            let t = wf.pick(&eligible).expect("at least one tenant eligible");
            let ids = &per_tenant[t];
            out.push(ids[cursor[t] % ids.len()]);
            cursor[t] += 1;
        }
        out
    }

    /// Open the next epoch on `id` and hand back the request for the
    /// caller to drive (device-driven epochs: launch a kernel that calls
    /// `pready_*`, then `wait`, then [`MuxService::record_epoch`]). The
    /// first call after admission is a no-op beyond bookkeeping — the
    /// tick left epoch 1 started and prepared; later calls run
    /// `MPI_Start` plus the steady (cheap) `MPIX_Pbuf_prepare`.
    pub fn begin_epoch(&mut self, ctx: &mut Ctx, id: MuxChannelId) -> Result<MuxChannel, MpiError> {
        let ch = self.table.get_mut(id).ok_or_else(|| MpiError::InvalidArgument {
            context: format!("begin_epoch: stale or unknown channel id {id}"),
        })?;
        let first = ch.epochs_run == 0;
        ch.epochs_run += 1;
        let chan = ch.chan.clone();
        if !first {
            match &chan {
                MuxChannel::Send(s) => {
                    s.start(ctx)?;
                    s.pbuf_prepare(ctx)?;
                }
                MuxChannel::Recv(r) => {
                    r.start(ctx)?;
                    r.pbuf_prepare(ctx)?;
                }
            }
        }
        Ok(chan)
    }

    /// Run one full host-driven epoch on a sender-side channel: begin,
    /// `MPI_Pready` every partition, `MPI_Wait`. Returns the epoch
    /// latency in µs and records it against the owning tenant.
    pub fn run_host_send_epoch(&mut self, ctx: &mut Ctx, id: MuxChannelId) -> Result<f64, MpiError> {
        let (tenant, bytes, parts) = {
            let ch = self.table.get(id).ok_or_else(|| MpiError::InvalidArgument {
                context: format!("run_host_send_epoch: stale or unknown channel id {id}"),
            })?;
            (ch.spec.tenant, ch.spec.bytes(), ch.spec.partitions)
        };
        let t0 = ctx.now().as_micros_f64();
        let chan = self.begin_epoch(ctx, id)?;
        let s = chan.send().ok_or_else(|| MpiError::InvalidArgument {
            context: format!("run_host_send_epoch: channel {id} is a receiver"),
        })?;
        s.pready_range(ctx, 0..parts)?;
        s.wait(ctx)?;
        let dt = ctx.now().as_micros_f64() - t0;
        self.record_epoch(tenant, bytes, dt);
        Ok(dt)
    }

    /// Run one full epoch on a receiver-side channel: begin, `MPI_Wait`.
    /// Returns the epoch latency in µs. Goodput is recorded on the send
    /// side only, so the receive path records nothing.
    pub fn run_recv_epoch(&mut self, ctx: &mut Ctx, id: MuxChannelId) -> Result<f64, MpiError> {
        let t0 = ctx.now().as_micros_f64();
        let chan = self.begin_epoch(ctx, id)?;
        let r = chan.recv().ok_or_else(|| MpiError::InvalidArgument {
            context: format!("run_recv_epoch: channel {id} is a sender"),
        })?;
        r.wait(ctx)?;
        Ok(ctx.now().as_micros_f64() - t0)
    }

    /// Credit one completed epoch to `tenant`: `bytes` of goodput at
    /// `latency_us`. Feeds both the raw per-tenant report and — when the
    /// world has metrics enabled — the `mux.tenant<k>.*` instruments
    /// (pure atomics, digest-neutral).
    pub fn record_epoch(&mut self, tenant: usize, bytes: u64, latency_us: f64) {
        let st = &mut self.stats[tenant];
        st.goodput_bytes += bytes;
        st.epochs += 1;
        st.latencies_us.push(latency_us);
        if self.metrics[tenant].is_none() {
            if let Some(reg) = self.world.metrics_registry() {
                self.metrics[tenant] = Some(TenantMetrics {
                    goodput: reg.counter(&format!("mux.tenant{tenant}.goodput_bytes")),
                    epochs: reg.counter(&format!("mux.tenant{tenant}.epochs")),
                    latency: reg.histogram(&format!("mux.tenant{tenant}.epoch_latency_us")),
                });
            }
        }
        if let Some(m) = &self.metrics[tenant] {
            m.goodput.add(bytes);
            m.epochs.inc();
            m.latency.record(latency_us.round().max(0.0) as u64);
        }
    }

    /// Gracefully tear down a live channel: `MPI_Request_free` the
    /// endpoint (typed refusal while an epoch is active — the channel
    /// stays live and can be waited then released), drop the table entry
    /// (its id goes stale), and return the in-flight slot plus any
    /// symmetric-heap reservation to the tenant's quota. The freed tag
    /// and heap bytes are immediately re-admissible: a subsequent
    /// [`MuxService::submit`] + [`MuxService::tick`] opens a fresh
    /// channel on the same (peer, tag, direction) while the rest of the
    /// table keeps draining. Returns the spec the channel was admitted
    /// under. Both sides of a pair must release symmetrically before
    /// either re-admits, per the mirrored-submission contract.
    pub fn release(&mut self, ctx: &mut Ctx, id: MuxChannelId) -> Result<ChannelSpec, MpiError> {
        let ch = self.table.get(id).ok_or_else(|| MpiError::InvalidArgument {
            context: format!("release: stale or unknown channel id {id}"),
        })?;
        // free() consumes a handle clone and owns the no-active-epoch
        // check; on its typed error the table entry is untouched.
        match &ch.chan {
            MuxChannel::Send(s) => s.clone().free(ctx)?,
            MuxChannel::Recv(r) => r.clone().free(ctx)?,
        }
        Ok(self.retire(id).expect("entry was live above"))
    }

    /// Retire a channel without freeing the endpoint: its id goes stale,
    /// its in-flight slot frees, and any heap reservation returns to the
    /// tenant's quota. Returns the spec it was admitted under. This is
    /// the abandonment path (dead peer, recovery gave up); live channels
    /// should go through [`MuxService::release`].
    pub fn retire(&mut self, id: MuxChannelId) -> Option<ChannelSpec> {
        let ch = self.table.remove(id)?;
        self.shmem_reserved[ch.spec.tenant] =
            self.shmem_reserved[ch.spec.tenant].saturating_sub(ch.shmem_bytes);
        Some(ch.spec)
    }

    /// Per-tenant totals with raw latencies (exact quantiles).
    pub fn tenant_stats(&self) -> Vec<TenantReport> {
        self.stats
            .iter()
            .enumerate()
            .map(|(t, s)| TenantReport {
                tenant: t,
                weight: self.arbiter.weight(t),
                goodput_bytes: s.goodput_bytes,
                epochs: s.epochs,
                latencies_us: s.latencies_us.clone(),
            })
            .collect()
    }
}
