//! Smooth weighted round-robin across tenants.
//!
//! One arbiter shape serves every resource the mux apportions: admission
//! slots within a tick, per-epoch drain grants, cross-node rail stripes,
//! and symmetric-heap quota. The scheduler is *smooth* (grants interleave
//! rather than burst: weights `[2,1]` yield A B A A B A…, never A A A A B
//! B) and *deterministic* — the grant sequence is a pure function of the
//! weights and the eligibility pattern, with ties broken by lowest tenant
//! index. Every rank computing the same inputs computes the same
//! sequence, which the service layer relies on for cross-rank agreement.

/// Smooth weighted round-robin arbiter (the nginx `smooth_weight`
/// algorithm) plus a largest-remainder integer apportioner for one-shot
/// capacity splits.
#[derive(Clone, Debug)]
pub struct WeightedFair {
    weights: Vec<u64>,
    credit: Vec<i64>,
}

impl WeightedFair {
    /// An arbiter over `weights.len()` tenants. Zero weights are clamped
    /// to 1: a tenant may be slow, never starved.
    pub fn new(weights: &[u64]) -> Self {
        let weights: Vec<u64> = weights.iter().map(|&w| w.max(1)).collect();
        let credit = vec![0; weights.len()];
        WeightedFair { weights, credit }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.weights.len()
    }

    /// The (clamped) weight of tenant `t`.
    pub fn weight(&self, t: usize) -> u64 {
        self.weights[t]
    }

    /// All clamped weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Grant the next slot among tenants where `eligible` holds: each
    /// eligible tenant's credit grows by its weight, the richest (tie →
    /// lowest index) wins and pays back the eligible weight total.
    /// Returns `None` when no tenant is eligible. Ineligible tenants'
    /// credits are frozen, so a tenant that was idle does not build up an
    /// unbounded claim on the future.
    pub fn pick(&mut self, eligible: &[bool]) -> Option<usize> {
        assert_eq!(eligible.len(), self.weights.len(), "eligibility mask size mismatch");
        let mut total = 0i64;
        let mut winner: Option<usize> = None;
        for (t, &ok) in eligible.iter().enumerate() {
            if !ok {
                continue;
            }
            self.credit[t] += self.weights[t] as i64;
            total += self.weights[t] as i64;
            match winner {
                Some(w) if self.credit[w] >= self.credit[t] => {}
                _ => winner = Some(t),
            }
        }
        let w = winner?;
        self.credit[w] -= total;
        Some(w)
    }

    /// Split an integer capacity (heap bytes, rail stripes, drain slots)
    /// proportionally to weight by largest remainder: shares sum exactly
    /// to `total`, remainders go to the largest fractional parts (tie →
    /// lowest index). A zero share is possible when `total` is smaller
    /// than the tenant count — callers that need a floor clamp afterwards.
    pub fn share(&self, total: u64) -> Vec<u64> {
        let wsum: u64 = self.weights.iter().sum();
        if wsum == 0 || self.weights.is_empty() {
            return vec![0; self.weights.len()];
        }
        let mut shares: Vec<u64> = Vec::with_capacity(self.weights.len());
        let mut rema: Vec<(u64, usize)> = Vec::with_capacity(self.weights.len());
        let mut given = 0u64;
        for (t, &w) in self.weights.iter().enumerate() {
            let exact_num = total as u128 * w as u128;
            let base = (exact_num / wsum as u128) as u64;
            let rem = (exact_num % wsum as u128) as u64;
            shares.push(base);
            given += base;
            rema.push((rem, t));
        }
        // Largest remainder first; tie broken by lowest tenant index.
        rema.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut left = total - given;
        for &(_, t) in &rema {
            if left == 0 {
                break;
            }
            shares[t] += 1;
            left -= 1;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequence(wf: &mut WeightedFair, n: usize) -> Vec<usize> {
        let all = vec![true; wf.tenants()];
        (0..n).map(|_| wf.pick(&all).unwrap()).collect()
    }

    #[test]
    fn smooth_interleave_two_to_one() {
        let mut wf = WeightedFair::new(&[2, 1]);
        assert_eq!(sequence(&mut wf, 6), vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn grant_counts_match_weights_over_a_full_cycle() {
        let weights = [8, 1, 1, 1, 1, 1, 1, 1];
        let mut wf = WeightedFair::new(&weights);
        let total: u64 = weights.iter().sum();
        let grants = sequence(&mut wf, total as usize * 3);
        for (t, &w) in weights.iter().enumerate() {
            let got = grants.iter().filter(|&&g| g == t).count() as u64;
            assert_eq!(got, w * 3, "tenant {t}");
        }
    }

    #[test]
    fn ineligible_tenants_are_skipped_without_building_credit() {
        let mut wf = WeightedFair::new(&[1, 1]);
        let only1 = [false, true];
        for _ in 0..10 {
            assert_eq!(wf.pick(&only1), Some(1));
        }
        // Tenant 0 becoming eligible again does not get 10 back-grants.
        let both = [true, true];
        let grants: Vec<_> = (0..4).map(|_| wf.pick(&both).unwrap()).collect();
        assert_eq!(grants.iter().filter(|&&g| g == 0).count(), 2);
    }

    #[test]
    fn no_eligible_tenant_returns_none() {
        let mut wf = WeightedFair::new(&[3, 2]);
        assert_eq!(wf.pick(&[false, false]), None);
    }

    #[test]
    fn zero_weight_is_clamped_not_starved() {
        let mut wf = WeightedFair::new(&[4, 0]);
        let grants = sequence(&mut wf, 10);
        assert!(grants.contains(&1), "clamped tenant still gets slots");
    }

    #[test]
    fn share_sums_exactly_and_follows_weights() {
        let wf = WeightedFair::new(&[8, 1, 1, 1, 1, 1, 1, 1]);
        let s = wf.share(4 << 20);
        assert_eq!(s.iter().sum::<u64>(), 4 << 20);
        assert_eq!(s[0], (4 << 20) * 8 / 15);
        let wf2 = WeightedFair::new(&[1, 1, 1]);
        let s2 = wf2.share(10);
        assert_eq!(s2.iter().sum::<u64>(), 10);
        assert_eq!(s2, vec![4, 3, 3], "remainder goes to lowest index on tie");
    }

    #[test]
    fn share_smaller_than_tenant_count_can_zero_out() {
        let wf = WeightedFair::new(&[8, 1, 1, 1]);
        let s = wf.share(2);
        assert_eq!(s.iter().sum::<u64>(), 2);
        assert_eq!(s[0], 2);
    }
}
