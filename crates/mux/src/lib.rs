//! # parcomm-mux — multi-tenant channel multiplexing over one `MpiWorld`
//!
//! A large MoE or multi-job deployment opens *thousands* of partitioned
//! channels over a single world. Opening them naively is ruinous twice
//! over: every channel pays the full first-call `MPIX_Pbuf_prepare`
//! handshake (~190 µs on the receive side, Table I), and every completion
//! event pays an O(channels) lookup in any scan-based channel registry.
//! This crate is the service layer that makes channel count cheap:
//!
//! - [`ChannelTable`] — a generational slab mapping dense [`MuxChannelId`]s
//!   to live channels in O(1), with an observable probe counter so tests
//!   can *prove* no operation degenerates into a scan.
//! - **Admission control** ([`MuxService::submit`] / [`MuxService::tick`])
//!   — submissions queue per tenant and are admitted in deterministic
//!   batches; every channel admitted in the same tick shares one
//!   first-call `pbuf_prepare` charge via
//!   [`parcomm_core::pbuf_prepare_batch`], the rest paying only the
//!   per-channel batch increment. Over-subscription surfaces as typed
//!   [`AdmissionError`]s (backpressure at the in-flight cap, symmetric-heap
//!   quota exhaustion) instead of deadlocks or latent heap errors.
//! - [`WeightedFair`] — a smooth weighted round-robin apportioning
//!   admission slots, per-epoch drain grants ([`MuxService::plan_rounds`]),
//!   cross-node rail stripes, and shmem heap quota across tenants. The
//!   schedule is a pure function of (weights, structure): every rank
//!   computes the identical grant order, which is what keeps symmetric
//!   ticks deadlock-free and trace digests byte-identical under any
//!   submission shuffle or sweep worker count.
//!
//! Per-tenant goodput/epoch/latency metrics land in the world's
//! [`parcomm_obs::MetricsRegistry`] under `mux.tenant<k>.*` when metrics
//! are enabled — pure atomics, digest-neutral.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admission;
mod fairness;
mod service;
mod table;

pub use admission::{AdmissionError, ChannelSpec, Direction};
pub use fairness::WeightedFair;
pub use service::{AdmittedChannel, MuxChannel, MuxConfig, MuxService, TenantReport};
pub use table::{ChannelTable, MuxChannelId};
