//! Admission-control vocabulary: what a tenant asks for and the typed
//! ways the service says "not now" or "never".

/// Which side of a partitioned channel a submission opens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// `MPI_Psend_init` side.
    Send,
    /// `MPI_Precv_init` side.
    Recv,
}

impl Direction {
    /// Canonical grant rank — every receive orders before every send
    /// within a tenant, the keystone of the multi-tick deadlock-freedom
    /// argument (see the service module docs).
    pub(crate) fn order(self) -> u8 {
        match self {
            Direction::Recv => 0,
            Direction::Send => 1,
        }
    }
}


/// One requested channel: who wants it, where it goes, and its partition
/// geometry. The submitting tenant provides the buffer separately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Owning tenant index (into the service's weight vector).
    pub tenant: usize,
    /// Peer rank.
    pub peer: usize,
    /// Channel tag (must be unique per (peer, direction) among live
    /// channels, as in plain partitioned init).
    pub tag: u64,
    /// User partition count.
    pub partitions: usize,
    /// Bytes per user partition.
    pub partition_bytes: usize,
    /// Send or receive side.
    pub direction: Direction,
}

impl ChannelSpec {
    /// Payload bytes moved per epoch.
    pub fn bytes(&self) -> u64 {
        self.partitions as u64 * self.partition_bytes as u64
    }

    /// Canonical within-tenant admission key: **all receives before all
    /// sends**, then (tag, geometry, peer). Sorting a tick's pending
    /// submissions by this key makes the admitted order — and therefore
    /// the trace digest — invariant under submission shuffle, and the
    /// recv-first rule is what lets batched admission span many ticks
    /// without deadlocking (see the service module docs for the
    /// argument).
    pub(crate) fn canonical_key(&self) -> (u8, u64, usize, usize, usize) {
        (self.direction.order(), self.tag, self.partitions, self.partition_bytes, self.peer)
    }
}

/// Why a submission was refused. Everything here is a protocol answer,
/// not a failure: backpressured tenants retry after draining, quota'd
/// tenants resize or change mechanism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The spec names a tenant index outside the configured weight vector.
    UnknownTenant {
        /// Offending tenant index.
        tenant: usize,
        /// Configured tenant count.
        tenants: usize,
    },
    /// Admitting one more channel would exceed the in-flight cap
    /// (live channels plus queued submissions).
    Backpressure {
        /// Channels currently live in the table.
        in_flight: usize,
        /// Submissions queued but not yet admitted.
        pending: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A shmem-mechanism receive channel would overrun the tenant's
    /// weighted share of the symmetric heap.
    ShmemQuotaExceeded {
        /// Tenant that asked.
        tenant: usize,
        /// Projected heap bytes for this channel (payload + arrival flags
        /// + alignment slop).
        requested: u64,
        /// The tenant's total heap quota.
        quota: u64,
        /// Heap bytes the tenant has already reserved.
        used: u64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (service has {tenants})")
            }
            AdmissionError::Backpressure { in_flight, pending, cap } => write!(
                f,
                "admission backpressure: {in_flight} in flight + {pending} pending at cap {cap}"
            ),
            AdmissionError::ShmemQuotaExceeded { tenant, requested, quota, used } => write!(
                f,
                "tenant {tenant} shmem quota exceeded: wants {requested} B with {used}/{quota} B used"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}
