//! Calibrated software overheads of the partitioned API itself (Table I).
//!
//! These are the host-side costs of the MPI library bookkeeping, separate
//! from the hardware costs in [`parcomm_gpu::CostModel`]. Means and standard
//! deviations come straight from the paper's Table I; the `table1_overheads`
//! harness re-measures them from the simulation.

/// Mean/σ pair in microseconds.
#[derive(Copy, Clone, Debug)]
pub struct Overhead {
    /// Mean cost in microseconds.
    pub mean_us: f64,
    /// Standard deviation in microseconds.
    pub sd_us: f64,
}

/// The API overhead table.
#[derive(Copy, Clone, Debug)]
pub struct ApiOverheads {
    /// `MPI_Psend_init` / `MPI_Precv_init` (Table I: 17.2 ± 10.2 µs).
    pub p2p_init: Overhead,
    /// `MPIX_Prequest_create` (Table I: 110.7 ± 37.8 µs — flag registration
    /// plus the host→device copy of the request structures).
    pub prequest_create: Overhead,
    /// Receiver-side work in the first `MPIX_Pbuf_prepare`: deferred MCA
    /// module init, buffer + flag registration, rkey packing. The sender
    /// observes this plus the reply wire time ⇒ ≈ the paper's 193.4 µs.
    pub pbuf_prepare_first_recv: Overhead,
    /// Sender-side bookkeeping in the first `MPIX_Pbuf_prepare`.
    pub pbuf_prepare_first_send: Overhead,
    /// Steady-state `MPIX_Pbuf_prepare` bookkeeping per side (the 3.4 µs
    /// average is dominated by the RTR signal's wire latency).
    pub pbuf_prepare_steady: Overhead,
    /// Per-channel increment for channels *after the first* in one batched
    /// `MPIX_Pbuf_prepare` tick ([`crate::pbuf_prepare_batch`]): the
    /// once-per-process setup (deferred MCA init, endpoint warm-up) is
    /// charged by the batch's first channel; every further channel pays
    /// only its own registration bookkeeping. This is the admission-
    /// batching amortization the mux layer relies on at 4096 channels.
    pub pbuf_prepare_batch_extra: Overhead,
    /// Extra cost of `MPIX_P<collective>_init` on top of its constituent
    /// point-to-point inits (Table I: 62.3 ± 6.2 µs total).
    pub pcoll_init_extra: Overhead,
}

impl Default for ApiOverheads {
    fn default() -> Self {
        ApiOverheads {
            p2p_init: Overhead { mean_us: 17.2, sd_us: 10.2 },
            prequest_create: Overhead { mean_us: 110.7, sd_us: 37.8 },
            pbuf_prepare_first_recv: Overhead { mean_us: 185.0, sd_us: 8.0 },
            pbuf_prepare_first_send: Overhead { mean_us: 5.0, sd_us: 1.0 },
            pbuf_prepare_steady: Overhead { mean_us: 0.5, sd_us: 0.15 },
            pbuf_prepare_batch_extra: Overhead { mean_us: 2.5, sd_us: 0.6 },
            pcoll_init_extra: Overhead { mean_us: 28.0, sd_us: 4.0 },
        }
    }
}

impl ApiOverheads {
    /// Sample one charge for `o` from the simulation's RNG.
    pub fn sample(ctx: &parcomm_sim::Ctx, o: Overhead) -> parcomm_sim::SimDuration {
        ctx.jitter_us(o.mean_us, o.sd_us)
    }
}
