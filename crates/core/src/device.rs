//! GPU-initiated `MPIX_Pready`: the device-side request object and the
//! thread/warp/block bindings with both copy mechanisms (paper §IV-A3/4).
//!
//! [`prequest_create`] builds an [`DevicePrequest`] — the paper's
//! `MPIX_Prequest`: a device-resident slice of the full `MPI_Request`
//! holding only what a kernel needs (copy mechanism, aggregation threshold,
//! GPU-global counters, the pinned-host notification flags, and — for the
//! Kernel Copy path — the `ucp_rkey_ptr` mapping of the remote buffer).
//!
//! Inside a kernel body, `pready_*` calls:
//!
//! 1. account the device time of the chosen aggregation level (per-thread
//!    host-memory stores, `__syncwarp`, `__syncthreads`, or global-memory
//!    counters) using the `a + n·b` flag-write model calibrated on Fig. 3;
//! 2. for **Kernel Copy**, store the payload straight into the peer GPU's
//!    mapped memory, charging NVLink occupancy inside the kernel window;
//! 3. schedule the pinned-host notification writes at their in-kernel
//!    offsets; when the progression engine observes them it issues the
//!    `ucp_put_nbx` (Progression Engine path) or just the completion-flag
//!    put (Kernel Copy path).

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{AggLevel, Buffer, DeviceCtx};
use parcomm_mpi::{chunk_range, CopyMechanism, HookOutcome, MpiError, Rank};
use parcomm_sim::{Ctx, SimDuration, SpanId};
use parcomm_ucx::IpcMapping;

use crate::overheads::ApiOverheads;
use crate::send::{PsendRequest, PsendShared};

/// Configuration for [`prequest_create`].
#[derive(Copy, Clone, Debug)]
pub struct PrequestConfig {
    /// Copy mechanism for this channel.
    pub copy: CopyMechanism,
    /// Notification aggregation granularity (thread/warp/block).
    pub agg: AggLevel,
    /// Number of transport partitions user partitions aggregate into.
    pub transport_partitions: usize,
    /// Use GPU-global atomic counters to aggregate *across* blocks before
    /// writing to host memory (block-level only).
    pub multi_block_counters: bool,
}

impl Default for PrequestConfig {
    fn default() -> Self {
        PrequestConfig {
            copy: CopyMechanism::ProgressionEngine,
            agg: AggLevel::Block,
            transport_partitions: 1,
            multi_block_counters: true,
        }
    }
}

struct PendingNotifications {
    /// Pending transport partitions, each tagged with whether the
    /// progression engine must issue the *data* put for it (Progression
    /// Engine path, or Kernel Copy falling back after IPC revocation) or
    /// just the completion-flag put (healthy Kernel Copy path), plus the
    /// `pready_flag` span of the pinned-flag write that raised it (for the
    /// causal trace; [`SpanId::NONE`] when causal tracing is off).
    queue: VecDeque<(usize, bool, SpanId)>,
    processed: usize,
    hook_active: bool,
    epoch: u64,
}

struct DpInner {
    send: Arc<PsendShared>,
    config: PrequestConfig,
    /// Pinned host memory the device notification writes land in
    /// (one word per transport partition).
    pinned_flags: Buffer,
    /// Kernel Copy: the peer receive buffer mapped via `ucp_rkey_ptr`.
    /// Revocable — every `pready` checks validity and falls back to the
    /// Progression Engine path once the mapping dies mid-epoch.
    mapped_peer: Option<IpcMapping>,
    /// GPU-global aggregation counters (`MPIX_Prequest_create` allocates
    /// them; multi-block aggregation increments them atomically).
    counters: Mutex<Vec<u64>>,
    pending: Mutex<PendingNotifications>,
}

/// The device-resident partitioned request (`MPIX_Prequest`).
#[derive(Clone)]
pub struct DevicePrequest {
    inner: Arc<DpInner>,
}

/// `MPIX_Prequest_create`: build the device request for `sreq`.
///
/// Blocking: registers the pinned flag region and copies the request
/// structures host→device (Table I: 110.7 ± 37.8 µs). Requires the first
/// `MPIX_Pbuf_prepare` to have completed, since the Kernel Copy path needs
/// the receiver's rkey for the `ucp_rkey_ptr` mapping.
pub fn prequest_create(
    ctx: &mut Ctx,
    rank: &Rank,
    sreq: &PsendRequest,
    config: PrequestConfig,
) -> Result<DevicePrequest, MpiError> {
    let send = sreq.shared().clone();
    let (prepared, data_rkey, shmem_active, shmem_denied) = {
        let st = send.state.lock();
        (st.prepared, st.data_rkey.clone(), st.shmem.is_some(), st.shmem_denied.clone())
    };
    if !prepared {
        return Err(MpiError::InvalidArgument {
            context: "MPIX_Prequest_create before MPIX_Pbuf_prepare completed".into(),
        });
    }
    sreq.set_transport_partitions(config.transport_partitions)?;

    let mapped_peer = if shmem_active {
        // A negotiated shmem channel is one-sided by construction: every
        // device pready issues symmetric-heap puts regardless of
        // `config.copy` — there is no rkey to map and no PE hop to take.
        None
    } else {
        match config.copy {
            CopyMechanism::KernelCopy => {
                let rkey = data_rkey.expect("prepared implies rkey");
                Some(rkey.rkey_ptr(rank.gpu().id().location())?)
            }
            CopyMechanism::Shmem => {
                // The channel negotiated the classic rkey protocol, so the
                // shmem mechanism cannot be honored; surface the receiver's
                // typed demotion reason when there is one. Callers fall back
                // by retrying with the Progression Engine.
                return Err(match shmem_denied {
                    Some(e) => MpiError::Shmem(e),
                    None => MpiError::InvalidArgument {
                        context: "MPIX_Prequest_create: copy mechanism Shmem but the channel \
                                  negotiated the classic rkey protocol (request Shmem on both \
                                  endpoints or via WorldConfig::mechanism)"
                            .into(),
                    },
                });
            }
            CopyMechanism::ProgressionEngine => None,
        }
    };

    ctx.advance(ApiOverheads::sample(ctx, send.overheads.prequest_create));

    let pinned_flags = rank.gpu().alloc_pinned_host(config.transport_partitions * 8);
    let dp = DevicePrequest {
        inner: Arc::new(DpInner {
            send,
            config,
            pinned_flags,
            mapped_peer,
            counters: Mutex::new(vec![0; config.transport_partitions]),
            pending: Mutex::new(PendingNotifications {
                queue: VecDeque::new(),
                processed: 0,
                hook_active: false,
                epoch: 0,
            }),
        }),
    };
    // Recovery: let a blocking wait drain this queue from host context when
    // the progression engine's lease expires. The queue pop is the
    // exactly-once point, so a false-positive takeover (stalled-not-dead PE)
    // is harmless.
    let drain = dp.clone();
    *dp.inner.send.device_drain.lock() =
        Some(Box::new(move |ctx: &mut Ctx| {
            let _ = drain.drain_notifications(ctx);
        }));
    Ok(dp)
}

impl DevicePrequest {
    /// `MPIX_Prequest_free`: release device resources. (The simulation's
    /// buffers are reference-counted; this charges the free cost and drops
    /// the pinned mapping.)
    pub fn free(self, ctx: &mut Ctx) {
        ctx.advance(SimDuration::from_micros_f64(5.0));
        // Break the drain-hook reference cycle through the send channel.
        *self.inner.send.device_drain.lock() = None;
        drop(self);
    }

    /// This request's configuration.
    pub fn config(&self) -> &PrequestConfig {
        &self.inner.config
    }

    /// The pinned host notification flags (diagnostics/tests).
    pub fn pinned_flags(&self) -> &Buffer {
        &self.inner.pinned_flags
    }

    /// Mark every user partition of the channel ready from inside a kernel:
    /// the common `MPIX_Pready(idx, preq)`-per-thread pattern of Listing 2.
    /// All notifications are emitted at the *call point* in kernel time —
    /// use [`pready_all_progressive`](Self::pready_all_progressive) to
    /// model threads marking partitions as their blocks complete.
    pub fn pready_all(&self, d: &mut DeviceCtx<'_>) {
        self.pready_users(d, 0..self.inner.send.user_partitions);
    }

    /// Listing-2 semantics with wave timing: every thread calls
    /// `MPIX_Pready(idx)` as it finishes its element, so transport
    /// partition `k` becomes ready when its covering blocks complete —
    /// at roughly the `(k+1)/T` point of the compute phase — and its
    /// transfer overlaps the rest of the kernel. This is the paper's
    /// early-bird mechanism for the microbenchmark kernels, and the reason
    /// two transport partitions pay off for large kernels (§VI-A2).
    ///
    /// Must be the kernel's only partitioned call (it assumes the compute
    /// phase spans the kernel body up to this point).
    pub fn pready_all_progressive(&self, d: &mut DeviceCtx<'_>) {
        let inner = &self.inner;
        let send = &inner.send;
        let cost = d.cost().clone();
        assert_eq!(
            d.current_end_offset(),
            d.compute_duration(),
            "pready_all_progressive must be the kernel's only timed device call"
        );
        let users = send.user_partitions;
        let completed = send
            .mark_ready(0..users)
            .expect("device MPIX_Pready misuse traps the kernel");
        let t = send.state.lock().transport_partitions;
        let compute = d.compute_duration();
        let train_us = d.flag_write_train_us(completed.len() as u32);
        let per_write_us = train_us / completed.len().max(1) as f64;
        let mut last_off = SimDuration::ZERO;

        if send.state.lock().shmem.is_some() {
            // Device-initiated one-sided path: as each transport's covering
            // blocks finish, the leader thread issues the symmetric put
            // itself — no pinned-flag train, no PE drain. The issue cost is
            // serialized per put, and one closing fence covers the batch.
            for (i, &k) in completed.iter().enumerate() {
                let (u0, ulen) = chunk_range(users, t, k);
                let frac = (u0 + ulen) as f64 / users as f64;
                let ready = SimDuration::from_micros_f64(
                    compute.as_micros_f64() * frac
                        + cost.syncthreads_us
                        + (i + 1) as f64 * cost.shmem_put_issue_us,
                );
                last_off = last_off
                    .max(ready + SimDuration::from_micros_f64(cost.kernel_store_fence_us));
                let send2 = send.clone();
                d.at_offset_shmem_traced(ready, move |h, kernel_span| {
                    send2.issue_shmem_put(h, k, kernel_span, h.now());
                });
            }
            let end = d.current_end_offset();
            if last_off > end {
                d.extend(last_off - end);
            }
            let epoch = send.state.lock().epoch;
            let mut p = inner.pending.lock();
            if p.epoch != epoch {
                p.epoch = epoch;
                p.processed = 0;
            }
            return;
        }

        match self.kernel_copy_mapping() {
            None => {
                for (i, &k) in completed.iter().enumerate() {
                    let (u0, ulen) = chunk_range(users, t, k);
                    let frac = (u0 + ulen) as f64 / users as f64;
                    let ready = SimDuration::from_micros_f64(
                        compute.as_micros_f64() * frac
                            + cost.syncthreads_us
                            + (i + 1) as f64 * per_write_us,
                    );
                    last_off = last_off.max(ready);
                    let this = self.clone();
                    d.at_offset_traced(ready, move |h, kernel_span| {
                        this.on_device_notification(h, k, true, kernel_span)
                    });
                }
            }
            Some(mapped) => {
                let fabric = send.world.fabric();
                let src_loc = send.buffer.space().location();
                let dst_loc = mapped.buffer().space().location();
                let lat = fabric.path_latency(src_loc, dst_loc);
                for (i, &k) in completed.iter().enumerate() {
                    let (u0, ulen) = chunk_range(users, t, k);
                    let off = u0 * send.partition_bytes;
                    let len = ulen * send.partition_bytes;
                    mapped.buffer().copy_from_buffer(off, &send.buffer, off, len);
                    let frac = (u0 + ulen) as f64 / users as f64;
                    let copy_start = d.start_time()
                        + SimDuration::from_micros_f64(
                            compute.as_micros_f64() * frac + cost.syncthreads_us,
                        );
                    let transfer = fabric.transfer_at(copy_start, src_loc, dst_loc, len as u64);
                    // Offset (from kernel start) at which the stores have
                    // been pushed onto the link (arrival minus propagation).
                    let occupancy_end =
                        transfer.arrival.saturating_since(d.start_time()).saturating_sub(lat);
                    let ready = occupancy_end
                        + SimDuration::from_micros_f64(
                            cost.kernel_store_fence_us + (i + 1) as f64 * per_write_us,
                        );
                    last_off = last_off.max(ready);
                    let this = self.clone();
                    d.at_offset_traced(ready, move |h, kernel_span| {
                        this.on_device_notification(h, k, false, kernel_span)
                    });
                }
            }
        }
        // The kernel window must cover the last emission.
        let end = d.current_end_offset();
        if last_off > end {
            d.extend(last_off - end);
        }
        // Epoch bookkeeping reset, mirroring pready_users.
        let epoch = send.state.lock().epoch;
        let mut p = inner.pending.lock();
        if p.epoch != epoch {
            p.epoch = epoch;
            p.processed = 0;
        }
    }

    /// The live Kernel Copy mapping, or `None` when configured for the
    /// Progression Engine *or* when the IPC mapping has been revoked
    /// mid-epoch (chaos injection) — the fallback that keeps the channel
    /// functional at Progression-Engine timing.
    fn kernel_copy_mapping(&self) -> Option<IpcMapping> {
        match self.inner.config.copy {
            CopyMechanism::KernelCopy => {
                let m = self.inner.mapped_peer.as_ref()?;
                if m.is_valid() {
                    Some(m.clone())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Mark a contiguous user partition range ready from inside a kernel.
    pub fn pready_users(&self, d: &mut DeviceCtx<'_>, users: Range<usize>) {
        assert!(!users.is_empty(), "pready_users: empty range");
        let inner = &self.inner;
        let send = &inner.send;
        let cost = d.cost().clone();
        let completed = send
            .mark_ready(users.clone())
            .expect("device MPIX_Pready misuse traps the kernel");
        let n = users.len() as u32;
        let block_dim = d.spec().block_dim;
        let blocks_covered = n.div_ceil(block_dim).max(1);

        // Reset the per-epoch pending bookkeeping on first use in an epoch.
        let epoch = send.state.lock().epoch;
        {
            let mut p = inner.pending.lock();
            if p.epoch != epoch {
                p.epoch = epoch;
                p.processed = 0;
                p.queue.clear();
                let mut c = inner.counters.lock();
                c.iter_mut().for_each(|v| *v = 0);
            }
        }

        if send.state.lock().shmem.is_some() {
            // Device-initiated one-sided path: block consensus, then the
            // leader thread issues one symmetric put per completed
            // transport (serialized), closed by a system fence. Payload and
            // receive-side flags travel in the put itself — no pinned-flag
            // notification and no progression-engine involvement.
            let sync_us = cost.aggregation_sync_us(AggLevel::Block, block_dim.min(n))
                + blocks_covered as f64 * cost.device_atomic_us;
            let base = d.extend(SimDuration::from_micros_f64(sync_us));
            let mut last = base;
            for (i, &k) in completed.iter().enumerate() {
                let at =
                    base + SimDuration::from_micros_f64((i + 1) as f64 * cost.shmem_put_issue_us);
                last = last.max(at);
                let send2 = send.clone();
                d.at_offset_shmem_traced(at, move |h, kernel_span| {
                    send2.issue_shmem_put(h, k, kernel_span, h.now());
                });
            }
            let end_target = last + SimDuration::from_micros_f64(cost.kernel_store_fence_us);
            let end = d.current_end_offset();
            if end_target > end {
                d.extend(end_target - end);
            }
            return;
        }

        match self.kernel_copy_mapping() {
            None => {
                let sync_us = cost.aggregation_sync_us(inner.config.agg, block_dim.min(n));
                let (writes, atomics_us) = self.notification_writes(n, block_dim, &completed);
                let base = d.current_end_offset();
                let train_us = d.flag_write_train_us(writes);
                d.extend(SimDuration::from_micros_f64(sync_us + atomics_us + train_us));
                self.schedule_notifications(
                    d,
                    base,
                    sync_us + atomics_us,
                    train_us,
                    &completed,
                    true,
                );
            }
            Some(mapped) => {
                // Functional stores into the peer GPU now; visibility is
                // gated on the completion-flag put (never earlier than the
                // modeled NVLink time below).
                let t = send.state.lock().transport_partitions;
                let mut copy_bytes = 0usize;
                for &k in &completed {
                    let (u0, ulen) = chunk_range(send.user_partitions, t, k);
                    let off = u0 * send.partition_bytes;
                    let len = ulen * send.partition_bytes;
                    mapped.buffer().copy_from_buffer(off, &send.buffer, off, len);
                    copy_bytes += len;
                }
                // Device time: block sync + counters, then the NVLink
                // stores. In-kernel copies are fire-and-forget load/store
                // traffic: the kernel pays serialization (plus a closing
                // `__threadfence_system`), not the link round-trip latency
                // — this is exactly the software path the paper's Kernel
                // Copy removes relative to posting a ucp_put_nbx. Link
                // occupancy is still reserved so concurrent copies contend.
                let sync_us = cost.aggregation_sync_us(AggLevel::Block, block_dim.min(n))
                    + blocks_covered as f64 * cost.device_atomic_us;
                let base = d.extend(SimDuration::from_micros_f64(sync_us));
                let copy_start = d.start_time() + base;
                let fabric = send.world.fabric();
                let src_loc = send.buffer.space().location();
                let dst_loc = mapped.buffer().space().location();
                let transfer = fabric.transfer_at(copy_start, src_loc, dst_loc, copy_bytes as u64);
                let occupancy = transfer
                    .arrival
                    .saturating_since(copy_start)
                    .saturating_sub(fabric.path_latency(src_loc, dst_loc));
                let fence = SimDuration::from_micros_f64(cost.kernel_store_fence_us);
                let after_copy = d.extend(occupancy + fence);
                let writes = completed.len() as u32;
                let train_us = d.flag_write_train_us(writes);
                d.extend(SimDuration::from_micros_f64(train_us));
                self.schedule_notifications(d, after_copy, 0.0, train_us, &completed, false);
            }
        }
    }

    /// Number of pinned-host notification writes this call performs, plus
    /// the GPU-global atomic cost for multi-block aggregation.
    fn notification_writes(&self, n: u32, block_dim: u32, completed: &[usize]) -> (u32, f64) {
        let cost = &self.inner.send.cost;
        match self.inner.config.agg {
            AggLevel::Thread => (n, 0.0),
            AggLevel::Warp => (n.div_ceil(32), 0.0),
            AggLevel::Block => {
                let blocks = n.div_ceil(block_dim).max(1);
                if self.inner.config.multi_block_counters {
                    // Each block increments a global counter; only the
                    // block that crosses the threshold writes to the host.
                    (completed.len() as u32, blocks as f64 * cost.device_atomic_us)
                } else {
                    (blocks, 0.0)
                }
            }
        }
    }

    /// Schedule the pinned-flag writes for the completed transport
    /// partitions, spread across the serialized write train, and hand them
    /// to the progression engine as they land.
    fn schedule_notifications(
        &self,
        d: &mut DeviceCtx<'_>,
        base: SimDuration,
        lead_us: f64,
        train_us: f64,
        completed: &[usize],
        data_put: bool,
    ) {
        if completed.is_empty() {
            return;
        }
        let m = completed.len();
        for (i, &k) in completed.iter().enumerate() {
            // Transport k's notification lands with the ((i+1)/m)-th share
            // of this call's write train.
            let off_us = lead_us + ((i + 1) as f64 / m as f64) * train_us;
            let at = base + SimDuration::from_micros_f64(off_us);
            let this = self.clone();
            d.at_offset_traced(at, move |h, kernel_span| {
                this.on_device_notification(h, k, data_put, kernel_span)
            });
        }
    }

    /// A pinned-host notification flag just landed: record it and make sure
    /// the progression engine is draining the queue. `data_put` says whether
    /// the engine must move the payload itself (Progression Engine path or
    /// revoked-mapping fallback) or only raise the remote flag.
    fn on_device_notification(
        &self,
        h: &parcomm_sim::SimHandle,
        k: usize,
        data_put: bool,
        kernel_span: SpanId,
    ) {
        let inner = &self.inner;
        inner.pinned_flags.write_flag(k, inner.pending.lock().epoch);
        // The instant the device's pinned-host flag write lands, causally
        // chained to the kernel that emitted it.
        let now = h.now();
        let flag_span = h.trace().record_causal(
            "pready_flag",
            now,
            now,
            Some(inner.send.my_rank as u32),
            Some(k as u32),
            kernel_span,
        );
        let register = {
            let mut p = inner.pending.lock();
            p.queue.push_back((k, data_put, flag_span));
            if p.hook_active {
                false
            } else {
                p.hook_active = true;
                true
            }
        };
        if register {
            let this = self.clone();
            inner.send.progression.register(h, move |ctx| this.drain_notifications(ctx));
        }
    }

    /// Progression-engine hook: for each pending notification, post the
    /// data put (Progression Engine path) or the completion-flag put
    /// (Kernel Copy path).
    fn drain_notifications(&self, ctx: &mut Ctx) -> HookOutcome {
        let inner = &self.inner;
        let data_post = SimDuration::from_micros_f64(inner.send.cost.data_put_post_us);
        let control_post = SimDuration::from_micros_f64(inner.send.cost.control_put_post_us);
        loop {
            let entry = { inner.pending.lock().queue.pop_front() };
            let Some((k, data_put, flag_span)) = entry else { break };
            let t0 = ctx.now();
            let rank = Some(inner.send.my_rank as u32);
            if data_put {
                ctx.advance(data_post);
                let h = ctx.handle();
                let pe_span = h
                    .trace()
                    .record_causal("pe_post", t0, ctx.now(), rank, Some(k as u32), flag_span);
                inner.send.issue_data_put(&h, k, pe_span, t0);
            } else {
                ctx.advance(control_post);
                let h = ctx.handle();
                let pe_span = h
                    .trace()
                    .record_causal("pe_post", t0, ctx.now(), rank, Some(k as u32), flag_span);
                inner.send.issue_completion_flag_put(&h, k, pe_span, t0);
            }
            inner.pending.lock().processed += 1;
        }
        let mut p = inner.pending.lock();
        if p.processed >= inner.config.transport_partitions {
            p.hook_active = false;
            HookOutcome::Remove
        } else {
            HookOutcome::Keep
        }
    }
}

impl std::fmt::Debug for DevicePrequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePrequest")
            .field("copy", &self.inner.config.copy)
            .field("agg", &self.inner.config.agg)
            .field("transports", &self.inner.config.transport_partitions)
            .finish()
    }
}
