//! The send side of MPI Partitioned point-to-point.
//!
//! Life cycle (paper Fig. 1 / §IV-A):
//!
//! 1. [`psend_init`] — create the channel, ship `setup_t` to the receiver
//!    (non-blocking).
//! 2. [`PsendRequest::start`] — open a communication epoch: reset partition
//!    state (`MPI_Start`).
//! 3. [`PsendRequest::pbuf_prepare`] — blocking guarantee that the remote
//!    buffer is ready. First call completes the rkey exchange; later calls
//!    wait for the receiver's ready-to-receive signal.
//! 4. [`PsendRequest::pready`] — host binding of `MPI_Pready`: mark a user
//!    partition ready; when a whole *transport* partition is ready, put its
//!    data and chain the receive-side flag put.
//! 5. [`PsendRequest::wait`] — block until every transport partition of the
//!    epoch is delivered (`MPI_Wait`), closing the epoch.
//!
//! Device bindings (`MPIX_Pready` from inside a kernel) live in
//! `crate::device` and drive the same state machine through the crate-
//! internal `mark_ready` / `issue_*` entry points.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{Buffer, CostModel, MemSpace};
use parcomm_mpi::{chunk_range, CopyMechanism, MpiError, MpiWorld, ProgressionEngine, Rank};
use parcomm_shmem::ShmemError;
use parcomm_sim::{CountEvent, Ctx, SimDuration, SimHandle, SimTime, SpanId};
use parcomm_ucx::{AmMessage, Endpoint, PutAttr, PutHandle, RKey, Worker, MAX_STRIPES};

use crate::channel::{
    am_tag, Channel, ReadyToReceive, ReceiverSetup, SenderSetup, ShmemReceiverSetup,
};
use crate::overheads::ApiOverheads;

/// Maximum attempts for a device-initiated shmem put (first try + retries),
/// mirroring the UCX transport's retry budget so chaos outcomes are
/// comparable across mechanisms.
const SHMEM_PUT_MAX_ATTEMPTS: u32 = 6;
/// Initial retry backoff for a failed shmem put, doubled per attempt.
const SHMEM_PUT_RETRY_BACKOFF_US: f64 = 20.0;

/// Which transport partition covers user partition `u` when `users` user
/// partitions are aggregated into `transports` transport partitions
/// (contiguous, balanced split — the inverse of [`chunk_range`]).
pub fn transport_of_user(users: usize, transports: usize, u: usize) -> usize {
    debug_assert!(u < users);
    let base = users / transports;
    let rem = users % transports;
    let fat = (base + 1) * rem; // users covered by the first `rem` fat chunks
    if u < fat {
        u / (base + 1)
    } else {
        rem + (u - fat) / base
    }
}

/// A negotiated symmetric-heap channel: the receiver's data and flag
/// buffers, resolved *locally* by the sender from the symmetric offsets in
/// the setup reply — no rkey was exchanged and none is needed again.
#[derive(Clone)]
pub(crate) struct ShmemChannel {
    /// The receiver's data buffer (heap-translated).
    pub data: Buffer,
    /// The receiver's partition status flags (heap-translated).
    pub flags: Buffer,
}

pub(crate) struct SendState {
    pub epoch: u64,
    pub started: bool,
    pub prepared: bool,
    pub transport_partitions: usize,
    pub data_rkey: Option<RKey>,
    pub flag_rkey: Option<RKey>,
    /// Per-request copy-mechanism override (else the world default).
    pub requested: Option<CopyMechanism>,
    /// Set when the receiver accepted the shmem mechanism for this channel.
    pub shmem: Option<ShmemChannel>,
    /// Set when this side wanted shmem but the receiver demoted the channel
    /// to the Progression Engine: the typed reason, kept for diagnostics
    /// and surfaced by `prequest_create(copy: Shmem)`.
    pub shmem_denied: Option<ShmemError>,
    /// Receiver's arrival counter (the sim stand-in for the receiver
    /// polling its flag memory); bumped by the chained flag put.
    pub notifier: Option<CountEvent>,
    /// Per-transport count of user partitions marked ready this epoch.
    pub ready: Vec<u64>,
    /// Per-user-partition ready bit (double-`MPI_Pready` detection).
    pub user_ready: Vec<bool>,
    /// Per-transport "put issued" latch.
    pub sent: Vec<bool>,
    /// Host staging for the chained flag puts: one u64 per user partition,
    /// holding the current epoch number.
    pub flag_stage: Buffer,
    /// Stripe count for the data puts: each transport partition's payload
    /// splits into up to this many stripes routed concurrently over the
    /// eligible fabric paths. `1` (the default) is the classic single-path
    /// protocol, untouched.
    pub stripes: usize,
}

pub(crate) struct PsendShared {
    pub world: MpiWorld,
    pub worker: Worker,
    pub progression: ProgressionEngine,
    pub cost: CostModel,
    pub overheads: ApiOverheads,
    pub my_rank: usize,
    pub dest: usize,
    pub tag: u64,
    pub buffer: Buffer,
    pub user_partitions: usize,
    pub partition_bytes: usize,
    pub endpoint: Endpoint,
    pub state: Mutex<SendState>,
    /// Bumped once per transport partition delivered this epoch.
    pub transport_complete: CountEvent,
    /// Handles of the puts issued this epoch (data and chained flag puts),
    /// scanned by the `MPI_Wait` watchdog to surface transport failures.
    /// Cleared at `MPI_Start` and by epoch replay (a replay supersedes the
    /// old attempt's handles — their failures are no longer diagnostic).
    pub puts: Arc<Mutex<Vec<PutHandle>>>,
    /// Replay generation: bumped by [`PsendShared::recover_epoch`]. Every
    /// put-completion closure captures the generation it was issued under
    /// and discards its side effects if a replay has superseded it — stale
    /// duplicates from a half-completed attempt cannot double-count.
    pub gen: Arc<AtomicU64>,
    /// Per-transport delivered latch for the current epoch: set exactly
    /// once, by the first (current-generation) flag put to land. Replay
    /// re-issues only undelivered transports; a racing duplicate that lands
    /// after the latch is discarded.
    pub delivered: Arc<Mutex<Vec<bool>>>,
    /// Host-drain takeover hook for the device (`MPIX_Pready`-from-kernel)
    /// path: registered by `prequest_create`, it drains the device
    /// notification queue from the waiter's context when the progression
    /// engine's lease expires. Draining pops from the same queue the PE
    /// hook drains, so each notification is serviced exactly once.
    pub device_drain: Mutex<Option<DrainHook>>,
    /// Settled failure of a device-initiated shmem put (retry budget
    /// exhausted). Checked first by the stall diagnosis; cleared at
    /// `MPI_Start` and by epoch replay.
    pub shmem_failure: Arc<Mutex<Option<ShmemError>>>,
}

/// Boxed host-drain callback; see [`PsendShared::device_drain`].
pub type DrainHook = Box<dyn FnMut(&mut Ctx) + Send>;

/// A persistent partitioned send channel (`MPI_Psend_init` result).
#[derive(Clone)]
pub struct PsendRequest {
    pub(crate) inner: Arc<PsendShared>,
}

/// Initialize a partitioned send channel: `MPI_Psend_init`.
///
/// `buffer.len()` must be divisible by `partitions`. The `setup_t` object is
/// shipped to the receiver non-blocking; all deferred work happens in the
/// first [`PsendRequest::pbuf_prepare`].
pub fn psend_init(
    ctx: &mut Ctx,
    rank: &Rank,
    dest: usize,
    tag: u64,
    buffer: &Buffer,
    partitions: usize,
) -> Result<PsendRequest, MpiError> {
    if partitions == 0 {
        return Err(MpiError::InvalidArgument {
            context: "psend_init: need at least one partition".into(),
        });
    }
    if !buffer.len().is_multiple_of(partitions) {
        return Err(MpiError::InvalidArgument {
            context: format!(
                "psend_init: buffer length {} not divisible into {} partitions",
                buffer.len(),
                partitions
            ),
        });
    }
    if dest == rank.rank() {
        return Err(MpiError::InvalidArgument {
            context: "psend_init: self-send channels are not supported".into(),
        });
    }
    if dest >= rank.size() {
        return Err(MpiError::InvalidArgument {
            context: format!("psend_init: destination rank {dest} out of range"),
        });
    }
    let overheads = ApiOverheads::default();
    ctx.advance(ApiOverheads::sample(ctx, overheads.p2p_init));

    let endpoint = rank.worker().create_endpoint(rank.peer_address(dest))?;
    let setup = SenderSetup {
        src: rank.rank(),
        dst: dest,
        tag,
        user_partitions: partitions,
        partition_bytes: buffer.len() / partitions,
        sender_addr: rank.worker().address(),
    };
    endpoint.am_send(
        am_tag(Channel::Setup, tag, rank.rank(), dest),
        setup,
        SenderSetup::WIRE_BYTES,
    );

    let flag_stage = Buffer::alloc(MemSpace::Host { node: rank.gpu().id().node }, partitions * 8);
    Ok(PsendRequest {
        inner: Arc::new(PsendShared {
            world: rank.world().clone(),
            worker: rank.worker().clone(),
            progression: rank.progression().clone(),
            cost: rank.gpu().cost().clone(),
            overheads,
            my_rank: rank.rank(),
            dest,
            tag,
            buffer: buffer.clone(),
            user_partitions: partitions,
            partition_bytes: buffer.len() / partitions,
            endpoint,
            state: Mutex::new(SendState {
                epoch: 0,
                started: false,
                prepared: false,
                transport_partitions: 1,
                data_rkey: None,
                flag_rkey: None,
                requested: None,
                shmem: None,
                shmem_denied: None,
                notifier: None,
                ready: vec![0; 1],
                user_ready: vec![false; partitions],
                sent: vec![false; 1],
                flag_stage,
                stripes: 1,
            }),
            transport_complete: CountEvent::named("psend transport_complete"),
            puts: Arc::new(Mutex::new(Vec::new())),
            gen: Arc::new(AtomicU64::new(0)),
            delivered: Arc::new(Mutex::new(vec![false; 1])),
            device_drain: Mutex::new(None),
            shmem_failure: Arc::new(Mutex::new(None)),
        }),
    })
}

impl PsendRequest {
    /// Number of user partitions of this channel.
    pub fn user_partitions(&self) -> usize {
        self.inner.user_partitions
    }

    /// Bytes per user partition.
    pub fn partition_bytes(&self) -> usize {
        self.inner.partition_bytes
    }

    /// Current transport partition count (user partitions are aggregated
    /// into this many RMA puts per epoch).
    pub fn transport_partitions(&self) -> usize {
        self.inner.state.lock().transport_partitions
    }

    /// The send buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.inner.buffer
    }

    /// Configure transport aggregation. Must be called before any partition
    /// of the current epoch is marked ready. `t` must be in
    /// `1..=user_partitions`.
    pub fn set_transport_partitions(&self, t: usize) -> Result<(), MpiError> {
        if t < 1 || t > self.inner.user_partitions {
            return Err(MpiError::InvalidArgument {
                context: format!("invalid transport partition count {t}"),
            });
        }
        let mut st = self.inner.state.lock();
        if !st.ready.iter().all(|&c| c == 0) {
            return Err(MpiError::InvalidArgument {
                context: "set_transport_partitions after partitions were marked ready".into(),
            });
        }
        st.transport_partitions = t;
        st.ready = vec![0; t];
        st.sent = vec![false; t];
        *self.inner.delivered.lock() = vec![false; t];
        Ok(())
    }

    /// Current stripe count for this channel's data puts.
    pub fn stripes(&self) -> usize {
        self.inner.state.lock().stripes
    }

    /// Per-request copy-mechanism override (else the channel negotiates the
    /// world default, [`parcomm_mpi::WorldConfig::mechanism`]). The
    /// *receiver* resolves the mechanism at its first `MPIX_Pbuf_prepare`,
    /// so an override must be set symmetrically on both endpoints' requests
    /// before either side prepares. Rejected once the channel has
    /// negotiated.
    pub fn set_mechanism(&self, m: CopyMechanism) -> Result<(), MpiError> {
        let mut st = self.inner.state.lock();
        if st.prepared {
            return Err(MpiError::InvalidArgument {
                context: "set_mechanism after the channel negotiated at MPIX_Pbuf_prepare".into(),
            });
        }
        st.requested = Some(m);
        Ok(())
    }

    /// True when the channel negotiated the symmetric-heap mechanism: data
    /// and flags travel as device-initiated one-sided puts against the
    /// receiver's symmetric offsets, with no rkey exchange.
    pub fn shmem_active(&self) -> bool {
        self.inner.state.lock().shmem.is_some()
    }

    /// The typed reason the receiver demoted a requested shmem channel to
    /// the Progression Engine, if it did.
    pub fn shmem_denial(&self) -> Option<ShmemError> {
        self.inner.state.lock().shmem_denied.clone()
    }

    /// Configure multi-path striping: split each transport partition's data
    /// put into up to `stripes` stripes routed concurrently over the
    /// eligible fabric paths (NIC rails across nodes, NVLink relays within
    /// one). The plan degrades gracefully when the route offers fewer
    /// paths; `1` restores the exact single-path protocol. Must be called
    /// before any partition of the current epoch is marked ready; `stripes`
    /// must be in `1..=MAX_STRIPES`.
    pub fn set_stripes(&self, stripes: usize) -> Result<(), MpiError> {
        if !(1..=MAX_STRIPES).contains(&stripes) {
            return Err(MpiError::InvalidArgument {
                context: format!("invalid stripe count {stripes} (max {MAX_STRIPES})"),
            });
        }
        let mut st = self.inner.state.lock();
        if !st.ready.iter().all(|&c| c == 0) {
            return Err(MpiError::InvalidArgument {
                context: "set_stripes after partitions were marked ready".into(),
            });
        }
        st.stripes = stripes;
        Ok(())
    }

    /// `MPI_Start`: open a new communication epoch.
    pub fn start(&self, _ctx: &mut Ctx) -> Result<(), MpiError> {
        let mut st = self.inner.state.lock();
        if st.started {
            return Err(MpiError::InvalidArgument {
                context: "MPI_Start while the previous epoch is still active".into(),
            });
        }
        st.epoch += 1;
        st.started = true;
        let t = st.transport_partitions;
        st.ready = vec![0; t];
        st.user_ready = vec![false; self.inner.user_partitions];
        st.sent = vec![false; t];
        *self.inner.delivered.lock() = vec![false; t];
        self.inner.puts.lock().clear();
        *self.inner.shmem_failure.lock() = None;
        self.inner.transport_complete.reset();
        // Flag puts carry the epoch number so MPI_Parrived can distinguish
        // epochs without a reset race.
        let epoch = st.epoch;
        for u in 0..self.inner.user_partitions {
            st.flag_stage.write_flag(u, epoch);
        }
        Ok(())
    }

    /// The receiver's data-buffer [`RKey`] (available after the first
    /// `MPIX_Pbuf_prepare`). Fault-injection surface: chaos tests call
    /// [`RKey::revoke_ipc`] on it to simulate the peer unmapping its
    /// `ucp_rkey_ptr` IPC mapping mid-epoch.
    pub fn data_rkey(&self) -> Option<RKey> {
        self.inner.state.lock().data_rkey.clone()
    }

    /// `MPIX_Pbuf_prepare` (sender side): block until the receiver's buffer
    /// is guaranteed ready for this epoch.
    pub fn pbuf_prepare(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.pbuf_prepare_charged(ctx, true)
    }

    /// [`PsendRequest::pbuf_prepare`] with the overhead charge gated: a
    /// batched tick ([`crate::pbuf_prepare_batch`]) charges the full
    /// first-call overhead once and bills every further channel the
    /// per-channel batch increment instead. The handshake protocol itself
    /// (reply / RTR consumption) is identical either way.
    pub(crate) fn pbuf_prepare_charged(&self, ctx: &mut Ctx, charge: bool) -> Result<(), MpiError> {
        let (first, epoch) = {
            let st = self.inner.state.lock();
            if !st.started {
                return Err(MpiError::InvalidArgument {
                    context: "MPIX_Pbuf_prepare before MPI_Start".into(),
                });
            }
            (!st.prepared, st.epoch)
        };
        if first {
            let o = if charge {
                self.inner.overheads.pbuf_prepare_first_send
            } else {
                self.inner.overheads.pbuf_prepare_batch_extra
            };
            ctx.advance(ApiOverheads::sample(ctx, o));
            let reply_tag = am_tag(Channel::SetupReply, self.inner.tag, self.inner.my_rank, self.inner.dest);
            let msg = self.recv_handshake(ctx, reply_tag, "setup reply")?;
            // The receiver decides the mechanism and its reply *type* is the
            // verdict: a shmem reply carries two symmetric offsets instead
            // of packed rkeys. Try the shmem shape first; a mismatch hands
            // the payload back for the classic decode.
            match msg.payload.downcast::<ShmemReceiverSetup>() {
                Ok(srs) => {
                    if srs.user_partitions != self.inner.user_partitions {
                        return Err(MpiError::InvalidArgument {
                            context: format!(
                                "partitioned channel: sender ({}) and receiver ({}) partition \
                                 counts differ",
                                self.inner.user_partitions, srs.user_partitions
                            ),
                        });
                    }
                    let heap = self.inner.world.shmem_heap();
                    let data = heap.translate(
                        self.inner.dest,
                        srs.data_off,
                        (self.inner.user_partitions * self.inner.partition_bytes) as u64,
                    )?;
                    let flags =
                        heap.translate(self.inner.dest, srs.flag_off, (self.inner.user_partitions * 8) as u64)?;
                    if let Some(i) = heap.obs() {
                        // One data rkey and one flag rkey that never had to
                        // be packed, shipped, or unpacked.
                        i.rkey_exchanges_avoided.add(2);
                    }
                    let mut st = self.inner.state.lock();
                    st.notifier = Some(srs.notifier.clone());
                    st.shmem = Some(ShmemChannel { data, flags });
                    st.prepared = true;
                }
                Err(payload) => {
                    let rs = payload
                        .downcast::<ReceiverSetup>()
                        .expect("setup reply payload type mismatch");
                    if rs.user_partitions != self.inner.user_partitions {
                        return Err(MpiError::InvalidArgument {
                            context: format!(
                                "partitioned channel: sender ({}) and receiver ({}) partition \
                                 counts differ",
                                self.inner.user_partitions, rs.user_partitions
                            ),
                        });
                    }
                    let mut st = self.inner.state.lock();
                    st.data_rkey = Some(rs.data_rkey.clone());
                    st.flag_rkey = Some(rs.flag_rkey.clone());
                    st.notifier = Some(rs.notifier.clone());
                    st.shmem_denied = rs.shmem_denied.clone();
                    st.prepared = true;
                }
            }
        } else {
            ctx.advance(ApiOverheads::sample(ctx, self.inner.overheads.pbuf_prepare_steady));
            let rtr_tag = am_tag(Channel::ReadyToReceive, self.inner.tag, self.inner.my_rank, self.inner.dest);
            let msg = self.recv_handshake(ctx, rtr_tag, "ready-to-receive")?;
            let rtr = msg.payload.downcast::<ReadyToReceive>().expect("RTR payload type mismatch");
            if rtr.epoch != epoch {
                return Err(MpiError::InvalidArgument {
                    context: format!(
                        "receiver epoch {} out of sync with sender epoch {epoch}",
                        rtr.epoch
                    ),
                });
            }
        }
        Ok(())
    }

    /// Host binding of `MPI_Pready`: mark one user partition ready. If that
    /// completes a transport partition, its data put is issued from the
    /// calling process (charging the put-post cost).
    pub fn pready(&self, ctx: &mut Ctx, user_partition: usize) -> Result<(), MpiError> {
        let completed = self.inner.mark_ready(user_partition..user_partition + 1)?;
        self.post_completed_puts(ctx, completed);
        Ok(())
    }

    /// Host bulk `MPI_Pready` over a contiguous user partition range.
    pub fn pready_range(&self, ctx: &mut Ctx, users: Range<usize>) -> Result<(), MpiError> {
        let completed = self.inner.mark_ready(users)?;
        self.post_completed_puts(ctx, completed);
        Ok(())
    }

    /// Post the data puts for freshly completed transport partitions,
    /// charging the host put-post cost and recording a `pready_host` span
    /// per put as the causal root of its put → wire → completion chain.
    fn post_completed_puts(&self, ctx: &mut Ctx, completed: Vec<usize>) {
        for k in completed {
            let t0 = ctx.now();
            ctx.advance(SimDuration::from_micros_f64(self.inner.cost.data_put_post_us));
            let h = ctx.handle();
            let host_span = h.trace().record_causal(
                "pready_host",
                t0,
                ctx.now(),
                Some(self.inner.my_rank as u32),
                Some(k as u32),
                SpanId::NONE,
            );
            self.inner.issue_data_put(&h, k, host_span, t0);
        }
    }

    /// `MPI_Wait` (sender side): block until every transport partition of
    /// the current epoch is delivered, then close the epoch.
    ///
    /// With [`parcomm_mpi::WorldConfig::wait_watchdog_us`] armed, a stalled
    /// epoch returns a typed error instead of blocking forever: a failed put
    /// surfaces as [`MpiError::Transport`], a crashed progression engine as
    /// [`MpiError::ProgressionHalted`], anything else as
    /// [`MpiError::WaitTimeout`].
    ///
    /// With [`parcomm_mpi::WorldConfig::recover`] enabled, a stall instead
    /// escalates through the recovery ladder every `detect_us`: if the
    /// progression engine's lease has expired, its pending device
    /// notifications are drained from this context; then the epoch's
    /// undelivered transports are replayed under a fresh generation. Only
    /// after `max_replays` fruitless rounds does the typed
    /// [`MpiError::Unrecoverable`] surface.
    pub fn wait(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        let t = {
            let st = self.inner.state.lock();
            if !st.started {
                return Err(MpiError::InvalidArgument {
                    context: "MPI_Wait without MPI_Start".into(),
                });
            }
            st.transport_partitions as u64
        };
        let recover = self.inner.world.config().recover.clone();
        match (recover, self.inner.world.config().wait_watchdog_us) {
            (None, None) => ctx.wait_count(&self.inner.transport_complete, t),
            (None, Some(timeout_us)) => {
                let instruments = self.inner.world.instruments();
                if let Some(ins) = &instruments {
                    ins.watchdog_arms.inc();
                }
                let dt = SimDuration::from_micros_f64(timeout_us);
                if !ctx.wait_count_timeout(&self.inner.transport_complete, t, dt) {
                    if let Some(ins) = &instruments {
                        ins.watchdog_fires.inc();
                    }
                    return Err(self.inner.diagnose_stall(timeout_us, t));
                }
            }
            (Some(rc), watchdog_us) => {
                let instruments = self.inner.world.instruments();
                let detect_us = rc.detect_us.min(watchdog_us.unwrap_or(f64::INFINITY));
                let dt = SimDuration::from_micros_f64(detect_us);
                let mut attempts = 0u32;
                loop {
                    if let Some(ins) = &instruments {
                        ins.watchdog_arms.inc();
                    }
                    if ctx.wait_count_timeout(&self.inner.transport_complete, t, dt) {
                        break;
                    }
                    if let Some(ins) = &instruments {
                        ins.watchdog_fires.inc();
                    }
                    if attempts >= rc.max_replays {
                        let diag = self.inner.diagnose_stall(detect_us, t);
                        return Err(MpiError::Unrecoverable {
                            rank: self.inner.my_rank,
                            context: format!(
                                "psend transport completion (dst {}): {diag}",
                                self.inner.dest
                            ),
                            attempts,
                        });
                    }
                    attempts += 1;
                    if self.inner.progression.lease_expired(ctx.now(), rc.lease_us) {
                        if let Some(ins) = &instruments {
                            ins.recover_lease_expired.inc();
                        }
                        self.inner.host_drain_device(ctx);
                    }
                    self.inner.recover_epoch(ctx);
                }
            }
        }
        self.inner.state.lock().started = false;
        Ok(())
    }

    /// Replay the current epoch's undelivered transport partitions under a
    /// fresh generation (the lease/replay rung of the recovery ladder).
    /// Idempotent and safe to call spuriously: every transport's delivery is
    /// latched exactly once, and completions from superseded generations are
    /// discarded, so a replay of an epoch that was quietly completing merely
    /// wastes bandwidth. Returns the number of transports re-posted.
    pub fn recover_epoch(&self, ctx: &mut Ctx) -> usize {
        self.inner.recover_epoch(ctx)
    }

    /// `MPI_Test` (sender side): true when the epoch is fully delivered.
    pub fn test(&self) -> bool {
        let st = self.inner.state.lock();
        self.inner.transport_complete.count() >= st.transport_partitions as u64
    }

    pub(crate) fn shared(&self) -> &Arc<PsendShared> {
        &self.inner
    }

    /// `MPI_Request_free` for the persistent channel: the request must not
    /// have an active epoch. Resources are reference-counted in the
    /// simulation; this charges the host bookkeeping cost and consumes the
    /// handle so further API calls are impossible.
    pub fn free(self, ctx: &mut Ctx) -> Result<(), MpiError> {
        {
            let st = self.inner.state.lock();
            if st.started {
                return Err(MpiError::InvalidArgument {
                    context: "MPI_Request_free while a communication epoch is active".into(),
                });
            }
        }
        ctx.advance(SimDuration::from_micros_f64(2.0));
        drop(self);
        Ok(())
    }
}

impl PsendRequest {
    /// Handshake receive honoring the wait watchdog: without one armed this
    /// is exactly the seed's unbounded `am_recv` (zero extra events); with
    /// one armed, a dead peer surfaces a typed timeout instead of parking
    /// this rank forever.
    fn recv_handshake(&self, ctx: &mut Ctx, tag: u64, what: &str) -> Result<AmMessage, MpiError> {
        match self.inner.world.config().wait_watchdog_us {
            None => Ok(self.inner.worker.am_recv(ctx, tag)),
            Some(t) => {
                let instruments = self.inner.world.instruments();
                if let Some(ins) = &instruments {
                    ins.watchdog_arms.inc();
                }
                self.inner
                    .worker
                    .am_recv_timeout(ctx, tag, SimDuration::from_micros_f64(t))
                    .ok_or_else(|| {
                        if let Some(ins) = &instruments {
                            ins.watchdog_fires.inc();
                        }
                        MpiError::WaitTimeout {
                            rank: self.inner.my_rank,
                            context: format!("psend {what} (dst {})", self.inner.dest),
                            completed: 0,
                            expected: 1,
                            timeout_us: t,
                        }
                    })
            }
        }
    }
}

impl PsendShared {
    /// Watchdog expiry triage, most-specific first: a settled put failure
    /// (transport gave up after retries), a crashed progression engine, then
    /// the generic stalled-counter timeout.
    pub(crate) fn diagnose_stall(&self, timeout_us: f64, expected: u64) -> MpiError {
        if let Some(e) = self.shmem_failure.lock().clone() {
            return MpiError::Shmem(e);
        }
        let failed = self.puts.lock().iter().find_map(|p| match p.result() {
            Some(Err(e)) => Some(e),
            _ => None,
        });
        if let Some(e) = failed {
            return MpiError::Transport(e);
        }
        if self.progression.is_crashed() {
            return MpiError::ProgressionHalted { rank: self.my_rank };
        }
        MpiError::WaitTimeout {
            rank: self.my_rank,
            context: format!("psend transport completion (dst {})", self.dest),
            completed: self.transport_complete.count(),
            expected,
            timeout_us,
        }
    }

    /// Host-drain takeover: run the registered device-notification drain (if
    /// the device path is in use) from the calling context. Exactly-once is
    /// guaranteed by the shared queue the drain pops from.
    pub(crate) fn host_drain_device(&self, ctx: &mut Ctx) {
        let mut slot = self.device_drain.lock();
        if let Some(drain) = slot.as_mut() {
            if let Some(ins) = self.world.instruments() {
                ins.recover_host_drains.inc();
            }
            drain(ctx);
        }
    }

    /// Replay the epoch's undelivered transports under a fresh generation;
    /// see [`PsendRequest::recover_epoch`].
    pub(crate) fn recover_epoch(&self, ctx: &mut Ctx) -> usize {
        let todo: Vec<usize> = {
            let st = self.state.lock();
            if !st.started || !st.prepared {
                return 0;
            }
            let d = self.delivered.lock();
            st.sent
                .iter()
                .enumerate()
                .filter(|&(k, &sent)| sent && !d[k])
                .map(|(k, _)| k)
                .collect()
        };
        if todo.is_empty() {
            return 0;
        }
        // Supersede the half-completed attempt: completions still in flight
        // carry the old generation and will be discarded on landing. The old
        // put handles are dropped so their (now-moot) failures stop feeding
        // the stall diagnosis.
        self.gen.fetch_add(1, Ordering::AcqRel);
        self.puts.lock().clear();
        *self.shmem_failure.lock() = None;
        if let Some(ins) = self.world.instruments() {
            ins.recover_replays.inc();
        }
        for &k in &todo {
            let t0 = ctx.now();
            ctx.advance(SimDuration::from_micros_f64(self.cost.data_put_post_us));
            let h = ctx.handle();
            let span = h.trace().record_causal(
                "recover_replay",
                t0,
                ctx.now(),
                Some(self.my_rank as u32),
                Some(k as u32),
                SpanId::NONE,
            );
            self.issue_data_put(&h, k, span, t0);
        }
        todo.len()
    }

    /// Mark a user range ready; returns the transport partitions that just
    /// became complete (and latches them as sent).
    pub(crate) fn mark_ready(&self, users: Range<usize>) -> Result<Vec<usize>, MpiError> {
        if users.end > self.user_partitions {
            return Err(MpiError::InvalidArgument {
                context: format!(
                    "pready: partition range {users:?} out of range (channel has {})",
                    self.user_partitions
                ),
            });
        }
        let mut st = self.state.lock();
        if !st.started {
            return Err(MpiError::InvalidArgument {
                context: "MPI_Pready before MPI_Start".into(),
            });
        }
        if !st.prepared {
            return Err(MpiError::InvalidArgument {
                context: "MPI_Pready before MPIX_Pbuf_prepare (receiver not guaranteed ready)"
                    .into(),
            });
        }
        let t = st.transport_partitions;
        for u in users.clone() {
            if st.user_ready[u] {
                return Err(MpiError::InvalidArgument {
                    context: format!("user partition {u} marked ready twice in one epoch"),
                });
            }
            st.user_ready[u] = true;
        }
        let mut completed = Vec::new();
        let k_first = transport_of_user(self.user_partitions, t, users.start);
        let k_last = transport_of_user(self.user_partitions, t, users.end - 1);
        for k in k_first..=k_last {
            let (k_start, k_len) = chunk_range(self.user_partitions, t, k);
            let overlap_start = users.start.max(k_start);
            let overlap_end = users.end.min(k_start + k_len);
            let overlap = overlap_end.saturating_sub(overlap_start) as u64;
            if overlap == 0 {
                continue;
            }
            st.ready[k] += overlap;
            if st.ready[k] == k_len as u64 && !st.sent[k] {
                st.sent[k] = true;
                completed.push(k);
            }
        }
        Ok(completed)
    }

    /// Issue the data put for transport partition `k`, chaining the
    /// receive-side flag put at its completion (paper §IV-A4). `cause` is
    /// the span that posted it (the progression-engine `pe_post` or the
    /// host `pready_host` span); the chained flag put is in turn caused by
    /// the data put's completion span. `pready_at` is when the partition's
    /// pready began processing — the flag put landing closes the
    /// `mpi.pready_arrival_us` histogram interval.
    pub(crate) fn issue_data_put(&self, h: &SimHandle, k: usize, cause: SpanId, pready_at: SimTime) {
        if self.state.lock().shmem.is_some() {
            // Negotiated shmem channel: every delivery of transport `k` —
            // host pready, PE-drained device notification, or epoch replay —
            // goes out as a one-sided symmetric put.
            self.issue_shmem_put(h, k, cause, pready_at);
            return;
        }
        let (ep, data_rkey, flag_rkey, notifier, flag_stage, t, stripes) = {
            let st = self.state.lock();
            (
                self.endpoint.clone(),
                st.data_rkey.clone().expect("pbuf_prepare not completed"),
                st.flag_rkey.clone().expect("pbuf_prepare not completed"),
                st.notifier.clone().expect("pbuf_prepare not completed"),
                st.flag_stage.clone(),
                st.transport_partitions,
                st.stripes,
            )
        };
        let (u0, ulen) = chunk_range(self.user_partitions, t, k);
        let byte_off = u0 * self.partition_bytes;
        let byte_len = ulen * self.partition_bytes;
        let tc = self.transport_complete.clone();
        let ep2 = ep.clone();
        let puts = self.puts.clone();
        let puts2 = puts.clone();
        // Generation tag: a replay bumps `gen`, so completions of puts
        // issued under an older generation (or after this transport's
        // delivered latch is set) discard their side effects — replay is
        // idempotent.
        let issue_gen = self.gen.load(Ordering::Acquire);
        let gen = self.gen.clone();
        let delivered = self.delivered.clone();
        let attr = PutAttr {
            src_rank: Some(self.my_rank as u32),
            dst_rank: Some(self.dest as u32),
            partition: Some(k as u32),
        };
        let world = self.world.clone();
        // The data put carries the channel's stripe count; stripe count 1
        // is put_nbx_attr exactly. The chained flag put below is never
        // striped — it is 8 bytes per user partition of control traffic,
        // and it must observe the *assembled* payload, which the striped
        // put's completion (firing at the assembly barrier) guarantees.
        let h = ep.put_nbx_striped(
            &self.buffer,
            byte_off,
            byte_len,
            &data_rkey,
            byte_off,
            stripes,
            attr,
            cause,
            move |_h, complete_span| {
                // Data delivered: chain the control put that raises the
                // receive-side partition flags (UCX has no
                // put-with-completion). The sender's transport-complete
                // count also waits for this chained put, so the epoch
                // cannot close (and the flag staging cannot be restamped by
                // the next MPI_Start) while a flag put is still reading it.
                let notifier = notifier.clone();
                let tc = tc.clone();
                let fh = ep2.put_nbx_attr(
                    &flag_stage,
                    u0 * 8,
                    ulen * 8,
                    &flag_rkey,
                    u0 * 8,
                    attr,
                    complete_span,
                    move |h, _span| {
                        {
                            let mut d = delivered.lock();
                            if gen.load(Ordering::Acquire) != issue_gen || d[k] {
                                if let Some(ins) = world.instruments() {
                                    ins.recover_stale_puts.inc();
                                }
                                return;
                            }
                            d[k] = true;
                        }
                        if let Some(ins) = world.instruments() {
                            let us = h.now().since(pready_at).as_micros_f64();
                            ins.pready_arrival_us.record(us.round() as u64);
                        }
                        notifier.add(h, ulen as u64);
                        tc.add(h, 1);
                    },
                );
                puts2.lock().push(fh);
            },
        );
        puts.lock().push(h);
    }

    /// Kernel-copy completion signal: the data already landed via in-kernel
    /// NVLink stores; only the flag put travels. `cause` is the
    /// progression-engine `pe_post` span that posted it; `pready_at` as in
    /// [`PsendShared::issue_data_put`].
    pub(crate) fn issue_completion_flag_put(
        &self,
        _h: &SimHandle,
        k: usize,
        cause: SpanId,
        pready_at: SimTime,
    ) {
        let (ep, flag_rkey, notifier, flag_stage, t) = {
            let st = self.state.lock();
            (
                self.endpoint.clone(),
                st.flag_rkey.clone().expect("pbuf_prepare not completed"),
                st.notifier.clone().expect("pbuf_prepare not completed"),
                st.flag_stage.clone(),
                st.transport_partitions,
            )
        };
        let (u0, ulen) = chunk_range(self.user_partitions, t, k);
        let tc = self.transport_complete.clone();
        let attr = PutAttr {
            src_rank: Some(self.my_rank as u32),
            dst_rank: Some(self.dest as u32),
            partition: Some(k as u32),
        };
        let world = self.world.clone();
        let issue_gen = self.gen.load(Ordering::Acquire);
        let gen = self.gen.clone();
        let delivered = self.delivered.clone();
        let h = ep.put_nbx_attr(
            &flag_stage,
            u0 * 8,
            ulen * 8,
            &flag_rkey,
            u0 * 8,
            attr,
            cause,
            move |h, _span| {
                {
                    let mut d = delivered.lock();
                    if gen.load(Ordering::Acquire) != issue_gen || d[k] {
                        if let Some(ins) = world.instruments() {
                            ins.recover_stale_puts.inc();
                        }
                        return;
                    }
                    d[k] = true;
                }
                if let Some(ins) = world.instruments() {
                    let us = h.now().since(pready_at).as_micros_f64();
                    ins.pready_arrival_us.record(us.round() as u64);
                }
                notifier.add(h, ulen as u64);
                tc.add(h, 1);
            },
        );
        self.puts.lock().push(h);
    }

    /// Issue the device-initiated one-sided put for transport partition `k`
    /// on a negotiated shmem channel: translate the receiver's symmetric
    /// offsets locally, push the payload through the fabric, and raise the
    /// receive-side partition flags at arrival (`shmem_signal`) — no host
    /// PE hop, no rkey, no chained control put. `cause` is the span that
    /// initiated it (device emission, host pready, or recovery replay).
    pub(crate) fn issue_shmem_put(&self, h: &SimHandle, k: usize, cause: SpanId, pready_at: SimTime) {
        let (sh, notifier, t, epoch) = {
            let st = self.state.lock();
            (
                st.shmem.clone().expect("shmem channel negotiated"),
                st.notifier.clone().expect("pbuf_prepare not completed"),
                st.transport_partitions,
                st.epoch,
            )
        };
        let (u0, ulen) = chunk_range(self.user_partitions, t, k);
        let job = ShmemPutJob {
            world: self.world.clone(),
            src: self.buffer.clone(),
            data: sh.data,
            flags: sh.flags,
            notifier,
            tc: self.transport_complete.clone(),
            gen: self.gen.clone(),
            issue_gen: self.gen.load(Ordering::Acquire),
            delivered: self.delivered.clone(),
            failure: self.shmem_failure.clone(),
            k,
            u0,
            ulen,
            partition_bytes: self.partition_bytes,
            epoch,
            my_rank: self.my_rank,
            dest: self.dest,
            signal_us: self.cost.shmem_signal_us,
            cause,
            pready_at,
            first_at: h.now(),
        };
        run_shmem_put(job, h, 0);
    }
}

/// Everything one in-flight shmem put needs, cloneable across retries.
struct ShmemPutJob {
    world: MpiWorld,
    src: Buffer,
    data: Buffer,
    flags: Buffer,
    notifier: CountEvent,
    tc: CountEvent,
    gen: Arc<AtomicU64>,
    issue_gen: u64,
    delivered: Arc<Mutex<Vec<bool>>>,
    failure: Arc<Mutex<Option<ShmemError>>>,
    k: usize,
    u0: usize,
    ulen: usize,
    partition_bytes: usize,
    epoch: u64,
    my_rank: usize,
    dest: usize,
    signal_us: f64,
    cause: SpanId,
    pready_at: SimTime,
    first_at: SimTime,
}

/// One attempt of a shmem put: route the payload through the fabric, and at
/// arrival (+ the signal store cost) deposit the bytes, raise the receiver's
/// partition flags in place, and bump the completion counters. A fabric
/// outage retries with doubling backoff; exhausting the budget settles a
/// typed [`ShmemError::WireTimeout`] for the stall diagnosis.
fn run_shmem_put(job: ShmemPutJob, h: &SimHandle, attempt: u32) {
    let now = h.now();
    let byte_off = job.u0 * job.partition_bytes;
    let byte_len = job.ulen * job.partition_bytes;
    let src_loc = job.src.space().location();
    let dst_loc = job.data.space().location();
    let heap_obs = job.world.shmem_heap().obs();
    if attempt == 0 {
        if let Some(i) = &heap_obs {
            i.puts.inc();
            i.bytes.add(byte_len as u64);
        }
    }
    let put_span = h.trace().record_causal(
        "shmem_put",
        now,
        now,
        Some(job.my_rank as u32),
        Some(job.k as u32),
        job.cause,
    );
    match job.world.fabric().try_transfer_attr(
        now,
        src_loc,
        dst_loc,
        byte_len as u64,
        put_span,
        Some(job.dest as u32),
        Some(job.k as u32),
    ) {
        Ok(transfer) => {
            let arrival = transfer.arrival;
            let wire_span = transfer.span;
            let signal = SimDuration::from_micros_f64(job.signal_us);
            h.schedule_at(arrival + signal, move |h| {
                // Bytes land and flags are (re)stamped regardless of
                // staleness — both are idempotent, exactly like a classic
                // put's functional copy. Only the completion side effects
                // are gated on the generation/delivered latch.
                job.data.copy_from_buffer(byte_off, &job.src, byte_off, byte_len);
                for u in job.u0..job.u0 + job.ulen {
                    job.flags.write_flag(u, job.epoch);
                }
                {
                    let mut d = job.delivered.lock();
                    if job.gen.load(Ordering::Acquire) != job.issue_gen || d[job.k] {
                        if let Some(ins) = job.world.instruments() {
                            ins.recover_stale_puts.inc();
                        }
                        return;
                    }
                    d[job.k] = true;
                }
                h.trace().record_causal(
                    "shmem_signal",
                    arrival,
                    h.now(),
                    Some(job.dest as u32),
                    Some(job.k as u32),
                    wire_span,
                );
                if let Some(i) = job.world.shmem_heap().obs() {
                    i.signals.inc();
                }
                if let Some(ins) = job.world.instruments() {
                    let us = h.now().since(job.pready_at).as_micros_f64();
                    ins.pready_arrival_us.record(us.round() as u64);
                }
                job.notifier.add(h, job.ulen as u64);
                job.tc.add(h, 1);
            });
        }
        Err(net_err) => {
            if attempt + 1 >= SHMEM_PUT_MAX_ATTEMPTS {
                if let Some(i) = &heap_obs {
                    i.put_failures.inc();
                }
                let waited = now.since(job.first_at).as_micros_f64();
                *job.failure.lock() = Some(ShmemError::WireTimeout {
                    attempts: attempt + 1,
                    waited_us: waited.round() as u64,
                    cause: net_err.to_string(),
                });
            } else {
                if let Some(i) = &heap_obs {
                    i.put_retries.inc();
                }
                let backoff = SimDuration::from_micros_f64(
                    SHMEM_PUT_RETRY_BACKOFF_US * f64::powi(2.0, attempt as i32),
                );
                h.schedule_in(backoff, move |h| run_shmem_put(job, h, attempt + 1));
            }
        }
    }
}

impl std::fmt::Debug for PsendRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("PsendRequest")
            .field("src", &self.inner.my_rank)
            .field("dst", &self.inner.dest)
            .field("tag", &self.inner.tag)
            .field("partitions", &self.inner.user_partitions)
            .field("epoch", &st.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::transport_of_user;
    use parcomm_mpi::chunk_range;

    #[test]
    fn transport_of_user_inverts_chunk_range() {
        for users in [1usize, 4, 7, 16, 1024] {
            for transports in [1usize, 2, 3, 4] {
                if transports > users {
                    continue;
                }
                for k in 0..transports {
                    let (start, len) = chunk_range(users, transports, k);
                    for u in start..start + len {
                        assert_eq!(
                            transport_of_user(users, transports, u),
                            k,
                            "users={users} transports={transports} u={u}"
                        );
                    }
                }
            }
        }
    }
}
