//! # parcomm-core — MPI-native GPU-initiated MPI Partitioned communication
//!
//! The paper's primary contribution: a UCX-based Partitioned point-to-point
//! component with device bindings.
//!
//! - **Host API** (MPI-4.0 + proposed extensions): [`psend_init`],
//!   [`precv_init`], `start`, `pbuf_prepare` (the proposed
//!   `MPIX_Pbuf_prepare` remote-buffer-readiness guarantee), host
//!   `pready`/`parrived`, `wait`/`test`.
//! - **Device API**: [`prequest_create`]/`free` building the slim
//!   [`DevicePrequest`] (`MPIX_Prequest`), with in-kernel
//!   `pready_all`/`pready_users` at thread/warp/block aggregation levels
//!   ([`parcomm_gpu::AggLevel`]) and three copy mechanisms
//!   ([`CopyMechanism::ProgressionEngine`], [`CopyMechanism::KernelCopy`],
//!   [`CopyMechanism::Shmem`] — the symmetric-heap one-sided backend).
//!
//! See `DESIGN.md` for the experiment map and calibration anchors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod channel;
mod device;
mod overheads;
mod recv;
mod send;

pub use batch::pbuf_prepare_batch;
pub use device::{prequest_create, DevicePrequest, PrequestConfig};
pub use overheads::{ApiOverheads, Overhead};
pub use parcomm_mpi::{CopyMechanism, MpiError};
pub use parcomm_shmem::ShmemError;
pub use recv::{precv_init, PrecvRequest};
pub use send::{psend_init, transport_of_user, PsendRequest};
