//! The receive side of MPI Partitioned point-to-point.
//!
//! The receiver's job (paper §IV-A2): on the first `MPIX_Pbuf_prepare`,
//! consume the sender's `setup_t`, register the receive buffer and the
//! partition status flags (`ucp_mem_map` + `ucp_rkey_pack`), and reply with
//! the rkeys. On later epochs it just signals ready-to-receive. Partition
//! arrival is observed through the flag words the sender's chained puts
//! raise; `MPI_Parrived` reads them and `MPI_Wait` blocks until all user
//! partitions of the epoch have landed.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{Buffer, CostModel, MemSpace};
use parcomm_mpi::{CopyMechanism, MpiError, MpiWorld, Rank};
use parcomm_net::RouteClass;
use parcomm_shmem::ShmemError;
use parcomm_sim::{CountEvent, Ctx, SimDuration};
use parcomm_ucx::{AmMessage, Endpoint, Worker};

use crate::channel::{
    am_tag, Channel, ReadyToReceive, ReceiverSetup, SenderSetup, ShmemReceiverSetup,
};
use crate::overheads::ApiOverheads;

pub(crate) struct RecvState {
    pub epoch: u64,
    pub started: bool,
    pub prepared: bool,
    pub ep_to_sender: Option<Endpoint>,
    /// Device-memory mirror of the arrival flags for the `MPIX_Parrived`
    /// device binding, refreshed during `MPI_Wait` (paper §IV-A4).
    pub device_mirror: Option<Buffer>,
    /// Per-request copy-mechanism override (else the world default).
    pub requested: Option<CopyMechanism>,
    /// True when this channel negotiated the symmetric-heap mechanism (the
    /// receive buffer and flags are bound into the heap and the sender puts
    /// into them directly).
    pub shmem: bool,
    /// Set when shmem was requested but demoted: the typed reason that went
    /// back to the sender in the classic setup reply.
    pub shmem_denied: Option<ShmemError>,
}

pub(crate) struct PrecvShared {
    pub world: MpiWorld,
    pub worker: Worker,
    pub cost: CostModel,
    pub overheads: ApiOverheads,
    pub my_rank: usize,
    pub src: usize,
    pub tag: u64,
    pub buffer: Buffer,
    pub user_partitions: usize,
    pub partition_bytes: usize,
    /// Host flag words, one per user partition; a flag equals the current
    /// epoch number once its partition has arrived.
    pub flags: Buffer,
    /// Arrival counter for the current epoch (bumped by the sender's
    /// chained flag put at its arrival instant).
    pub arrived: CountEvent,
    pub state: Mutex<RecvState>,
}

/// A persistent partitioned receive channel (`MPI_Precv_init` result).
#[derive(Clone)]
pub struct PrecvRequest {
    pub(crate) inner: Arc<PrecvShared>,
}

/// Initialize a partitioned receive channel: `MPI_Precv_init`.
pub fn precv_init(
    ctx: &mut Ctx,
    rank: &Rank,
    src: usize,
    tag: u64,
    buffer: &Buffer,
    partitions: usize,
) -> Result<PrecvRequest, MpiError> {
    if partitions == 0 {
        return Err(MpiError::InvalidArgument {
            context: "precv_init: need at least one partition".into(),
        });
    }
    if !buffer.len().is_multiple_of(partitions) {
        return Err(MpiError::InvalidArgument {
            context: format!(
                "precv_init: buffer length {} not divisible into {} partitions",
                buffer.len(),
                partitions
            ),
        });
    }
    if src == rank.rank() || src >= rank.size() {
        return Err(MpiError::InvalidArgument {
            context: format!("precv_init: invalid source rank {src}"),
        });
    }
    let overheads = ApiOverheads::default();
    ctx.advance(ApiOverheads::sample(ctx, overheads.p2p_init));
    let flags = Buffer::alloc(MemSpace::Host { node: rank.gpu().id().node }, partitions * 8);
    Ok(PrecvRequest {
        inner: Arc::new(PrecvShared {
            world: rank.world().clone(),
            worker: rank.worker().clone(),
            cost: rank.gpu().cost().clone(),
            overheads,
            my_rank: rank.rank(),
            src,
            tag,
            buffer: buffer.clone(),
            user_partitions: partitions,
            partition_bytes: buffer.len() / partitions,
            flags,
            arrived: CountEvent::named("precv arrivals"),
            state: Mutex::new(RecvState {
                epoch: 0,
                started: false,
                prepared: false,
                ep_to_sender: None,
                device_mirror: None,
                requested: None,
                shmem: false,
                shmem_denied: None,
            }),
        }),
    })
}

impl PrecvRequest {
    /// Number of user partitions.
    pub fn user_partitions(&self) -> usize {
        self.inner.user_partitions
    }

    /// Bytes per user partition.
    pub fn partition_bytes(&self) -> usize {
        self.inner.partition_bytes
    }

    /// The receive buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.inner.buffer
    }

    /// Per-request copy-mechanism override (else the world default,
    /// [`parcomm_mpi::WorldConfig::mechanism`]). The receiver is the
    /// deciding side: at its first `MPIX_Pbuf_prepare` it either binds its
    /// buffers into the symmetric heap and replies with offsets (shmem
    /// accepted) or packs rkeys as usual (demoted, with the typed reason
    /// carried back to the sender). Rejected once the channel has
    /// negotiated.
    pub fn set_mechanism(&self, m: CopyMechanism) -> Result<(), MpiError> {
        let mut st = self.inner.state.lock();
        if st.prepared {
            return Err(MpiError::InvalidArgument {
                context: "set_mechanism after the channel negotiated at MPIX_Pbuf_prepare".into(),
            });
        }
        st.requested = Some(m);
        Ok(())
    }

    /// True when the channel negotiated the symmetric-heap mechanism.
    pub fn shmem_active(&self) -> bool {
        self.inner.state.lock().shmem
    }

    /// The typed reason a requested shmem channel was demoted to the
    /// Progression Engine, if it was.
    pub fn shmem_denial(&self) -> Option<ShmemError> {
        self.inner.state.lock().shmem_denied.clone()
    }

    /// `MPI_Start`: open a new receive epoch.
    pub fn start(&self, _ctx: &mut Ctx) -> Result<(), MpiError> {
        let mut st = self.inner.state.lock();
        if st.started {
            return Err(MpiError::InvalidArgument {
                context: "MPI_Start while the previous epoch is still active".into(),
            });
        }
        st.epoch += 1;
        st.started = true;
        self.inner.arrived.reset();
        // Flags are epoch-stamped, so no zeroing is needed: a flag is "set"
        // for this epoch iff it equals the new epoch number.
        Ok(())
    }

    /// `MPIX_Pbuf_prepare` (receiver side): first call performs the
    /// deferred registration and rkey reply; later calls send the
    /// ready-to-receive signal.
    pub fn pbuf_prepare(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.pbuf_prepare_charged(ctx, true)
    }

    /// [`PrecvRequest::pbuf_prepare`] with the overhead charge gated: a
    /// batched tick ([`crate::pbuf_prepare_batch`]) charges the deferred
    /// MCA-init portion of the first-call cost once for the whole batch and
    /// bills every further channel only its own registration increment.
    pub(crate) fn pbuf_prepare_charged(&self, ctx: &mut Ctx, charge: bool) -> Result<(), MpiError> {
        let (first, epoch) = {
            let st = self.inner.state.lock();
            if !st.started {
                return Err(MpiError::InvalidArgument {
                    context: "MPIX_Pbuf_prepare before MPI_Start".into(),
                });
            }
            (!st.prepared, st.epoch)
        };
        let inner = &self.inner;
        if first {
            // Deferred MCA init + ucp_mem_map of data and flag regions +
            // rkey packing: the bulk of the paper's 193.4 µs first-call cost.
            let o = if charge {
                inner.overheads.pbuf_prepare_first_recv
            } else {
                inner.overheads.pbuf_prepare_batch_extra
            };
            ctx.advance(ApiOverheads::sample(ctx, o));
            let setup_tag = am_tag(Channel::Setup, inner.tag, inner.src, inner.my_rank);
            let msg = inner.recv_handshake(ctx, setup_tag, "sender setup")?;
            let ss = msg.payload.downcast::<SenderSetup>().expect("setup payload type mismatch");
            if ss.user_partitions != inner.user_partitions {
                return Err(MpiError::InvalidArgument {
                    context: format!(
                        "partitioned channel: sender/receiver partition counts differ \
                         (sender {}, receiver {})",
                        ss.user_partitions, inner.user_partitions
                    ),
                });
            }
            if ss.partition_bytes * ss.user_partitions != inner.buffer.len() {
                return Err(MpiError::InvalidArgument {
                    context: format!(
                        "partitioned channel: buffer sizes differ (sender {}, receiver {})",
                        ss.partition_bytes * ss.user_partitions,
                        inner.buffer.len()
                    ),
                });
            }
            // The receiver decides the channel's copy mechanism: its own
            // override (or the world default), gated on route and heap
            // eligibility. Accepting shmem binds the receive buffers into
            // the symmetric heap and replies with offsets — no rkey is
            // packed at all on this channel. Any denial demotes to the
            // classic rkey reply, carrying the typed reason to the sender.
            let requested = {
                let st = inner.state.lock();
                st.requested.unwrap_or(inner.world.config().mechanism)
            };
            let shmem_offsets = if requested == CopyMechanism::Shmem {
                Some(inner.try_shmem_bind())
            } else {
                None
            };
            let ep = inner.worker.create_endpoint(ss.sender_addr)?;
            match shmem_offsets {
                Some(Ok((data_off, flag_off))) => {
                    ep.am_send(
                        am_tag(Channel::SetupReply, inner.tag, inner.src, inner.my_rank),
                        ShmemReceiverSetup {
                            data_off,
                            flag_off,
                            notifier: inner.arrived.clone(),
                            user_partitions: inner.user_partitions,
                        },
                        ShmemReceiverSetup::WIRE_BYTES,
                    );
                    let mut st = inner.state.lock();
                    st.ep_to_sender = Some(ep);
                    st.shmem = true;
                    st.prepared = true;
                }
                other => {
                    let denied = match other {
                        Some(Err(e)) => {
                            if let Some(i) = inner.world.shmem_heap().obs() {
                                i.fallbacks.inc();
                            }
                            Some(e)
                        }
                        _ => None,
                    };
                    let data_rkey = inner.worker.mem_map(&inner.buffer).pack_rkey();
                    let flag_rkey = inner.worker.mem_map(&inner.flags).pack_rkey();
                    ep.am_send(
                        am_tag(Channel::SetupReply, inner.tag, inner.src, inner.my_rank),
                        ReceiverSetup {
                            data_rkey,
                            flag_rkey,
                            notifier: inner.arrived.clone(),
                            user_partitions: inner.user_partitions,
                            shmem_denied: denied.clone(),
                        },
                        ReceiverSetup::WIRE_BYTES,
                    );
                    let mut st = inner.state.lock();
                    st.ep_to_sender = Some(ep);
                    st.shmem_denied = denied;
                    st.prepared = true;
                }
            }
        } else {
            ctx.advance(ApiOverheads::sample(ctx, inner.overheads.pbuf_prepare_steady));
            let ep = inner.state.lock().ep_to_sender.clone().expect("prepared state lost");
            ep.am_send(
                am_tag(Channel::ReadyToReceive, inner.tag, inner.src, inner.my_rank),
                ReadyToReceive { epoch },
                ReadyToReceive::WIRE_BYTES,
            );
        }
        Ok(())
    }

    /// `MPI_Parrived` (host binding): has user partition `u` arrived this
    /// epoch? A pure flag read.
    pub fn parrived(&self, u: usize) -> bool {
        assert!(u < self.inner.user_partitions, "parrived: partition out of range");
        let epoch = self.inner.state.lock().epoch;
        self.inner.flags.read_flag(u) == epoch
    }

    /// Number of user partitions arrived so far this epoch.
    pub fn arrived_count(&self) -> u64 {
        self.inner.arrived.count()
    }

    /// The arrival counter event (used by collective progression).
    pub fn arrived_event(&self) -> &CountEvent {
        &self.inner.arrived
    }

    /// Block until at least `n` user partitions of the current epoch have
    /// arrived (a blocking `MPI_Parrived` companion for receiver-side
    /// pipelining: consume early partitions while later ones are still in
    /// flight). Honors the wait watchdog like [`PrecvRequest::wait`].
    pub fn wait_arrivals(&self, ctx: &mut Ctx, n: u64) -> Result<(), MpiError> {
        let target = n.min(self.inner.user_partitions as u64);
        self.inner.wait_arrived(ctx, target, "partial partition arrival")
    }

    /// `MPI_Wait` (receiver side): block until every user partition of the
    /// epoch has arrived, then close the epoch. Also refreshes the
    /// device-memory mirror of the arrival flags if one was created
    /// (paper: "we issue a memory copy to the device in `MPI_Wait` as
    /// partitions arrive").
    ///
    /// With [`parcomm_mpi::WorldConfig::wait_watchdog_us`] armed, a stalled
    /// epoch — lost device flag write, crashed sender-side progression
    /// engine, dropped control message — returns
    /// [`MpiError::WaitTimeout`] instead of hanging the simulation.
    pub fn wait(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        {
            let st = self.inner.state.lock();
            if !st.started {
                return Err(MpiError::InvalidArgument {
                    context: "MPI_Wait without MPI_Start".into(),
                });
            }
        }
        self.inner.wait_arrived(ctx, self.inner.user_partitions as u64, "partition arrival")?;
        let mirror = self.inner.state.lock().device_mirror.clone();
        if let Some(m) = mirror {
            // Host→device copy of the flag words over C2C.
            m.copy_from_buffer(0, &self.inner.flags, 0, self.inner.user_partitions * 8);
            ctx.advance(SimDuration::from_micros_f64(
                self.inner.user_partitions as f64 * 8.0 / (self.inner.cost.hbm_bw_gbps * 1e3)
                    + 0.6,
            ));
        }
        self.inner.state.lock().started = false;
        Ok(())
    }

    /// `MPI_Test` (receiver side).
    pub fn test(&self) -> bool {
        self.inner.arrived.count() >= self.inner.user_partitions as u64
    }

    /// Create (lazily) the GPU-global-memory mirror of the arrival flags
    /// used by the `MPIX_Parrived` device binding. Reading a flag in device
    /// memory is far cheaper for a kernel than reaching into host memory
    /// (paper §IV-A4).
    pub fn device_arrival_flags(&self, rank: &Rank) -> Buffer {
        let mut st = self.inner.state.lock();
        if st.device_mirror.is_none() {
            st.device_mirror = Some(rank.gpu().alloc_global(self.inner.user_partitions * 8));
        }
        st.device_mirror.clone().expect("just created")
    }

    /// `MPIX_Parrived` device binding: check the device-memory mirror for
    /// user partition `u`, charging the device flag-read cost to the kernel.
    /// The mirror is only refreshed in `MPI_Wait`, mirroring the paper's
    /// design (and its staleness caveat).
    pub fn parrived_device(&self, d: &mut parcomm_gpu::DeviceCtx<'_>, u: usize) -> bool {
        let read_cost = SimDuration::from_micros_f64(self.inner.cost.device_flag_read_us);
        d.extend(read_cost);
        let st = self.inner.state.lock();
        match &st.device_mirror {
            Some(m) => m.read_flag(u) == st.epoch,
            None => false,
        }
    }
}

impl PrecvShared {
    /// Eligibility gate + heap binding for the shmem mechanism, receiver
    /// side. Symmetric access requires an IPC-eligible route between the
    /// two ranks' GPUs (anything intra-node; IB cross-node routes cannot be
    /// load/store-addressed) and a live heap registration on both ends;
    /// then the receive buffer and the flag words are bound into this
    /// rank's segment. Any failure is the typed demotion reason.
    fn try_shmem_bind(&self) -> Result<(u64, u64), ShmemError> {
        let heap = self.world.shmem_heap();
        let src_gpu = self.world.gpu_of(self.src).location();
        let dst_gpu = self.world.gpu_of(self.my_rank).location();
        let class = RouteClass::classify(src_gpu, dst_gpu);
        if !class.ipc_eligible() {
            return Err(ShmemError::RouteForbidden { src: src_gpu, dst: dst_gpu, class });
        }
        if !heap.is_registered(self.src) {
            return Err(ShmemError::RegistrationFailed { rank: self.src });
        }
        let data_off = heap.bind(self.my_rank, &self.buffer)?;
        let flag_off = heap.bind(self.my_rank, &self.flags)?;
        Ok((data_off, flag_off))
    }

    /// Handshake receive honoring the wait watchdog: without one armed this
    /// is exactly the seed's unbounded `am_recv`; with one armed, a dead
    /// peer surfaces a typed timeout instead of parking this rank forever.
    fn recv_handshake(&self, ctx: &mut Ctx, tag: u64, what: &str) -> Result<AmMessage, MpiError> {
        match self.world.config().wait_watchdog_us {
            None => Ok(self.worker.am_recv(ctx, tag)),
            Some(t) => self
                .worker
                .am_recv_timeout(ctx, tag, SimDuration::from_micros_f64(t))
                .ok_or_else(|| MpiError::WaitTimeout {
                    rank: self.my_rank,
                    context: format!("precv {what} (src {})", self.src),
                    completed: 0,
                    expected: 1,
                    timeout_us: t,
                }),
        }
    }

    /// Wait for `target` arrivals, honoring the world's wait watchdog.
    fn wait_arrived(&self, ctx: &mut Ctx, target: u64, what: &str) -> Result<(), MpiError> {
        match self.world.config().wait_watchdog_us {
            None => ctx.wait_count(&self.arrived, target),
            Some(timeout_us) => {
                let dt = SimDuration::from_micros_f64(timeout_us);
                if !ctx.wait_count_timeout(&self.arrived, target, dt) {
                    return Err(MpiError::WaitTimeout {
                        rank: self.my_rank,
                        context: format!("precv {what} (src {})", self.src),
                        completed: self.arrived.count(),
                        expected: target,
                        timeout_us,
                    });
                }
            }
        }
        Ok(())
    }
}

impl PrecvRequest {
    /// `MPI_Request_free` for the persistent receive channel (no active
    /// epoch allowed). Consumes the handle.
    pub fn free(self, ctx: &mut Ctx) -> Result<(), MpiError> {
        {
            let st = self.inner.state.lock();
            if st.started {
                return Err(MpiError::InvalidArgument {
                    context: "MPI_Request_free while a communication epoch is active".into(),
                });
            }
        }
        ctx.advance(SimDuration::from_micros_f64(2.0));
        drop(self);
        Ok(())
    }
}

impl std::fmt::Debug for PrecvRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("PrecvRequest")
            .field("src", &self.inner.src)
            .field("dst", &self.inner.my_rank)
            .field("tag", &self.inner.tag)
            .field("partitions", &self.inner.user_partitions)
            .field("epoch", &st.epoch)
            .finish()
    }
}
