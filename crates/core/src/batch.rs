//! Batched channel setup: one `MPIX_Pbuf_prepare` tick over many channels.
//!
//! The partitioned API's first `MPIX_Pbuf_prepare` is expensive (the
//! paper's Table I puts the receiver-side cost near 193 µs) because it
//! fronts deferred once-per-process work — MCA module init, transport
//! warm-up — on top of the per-channel buffer registration. Opening
//! thousands of channels one `pbuf_prepare` at a time re-serializes that
//! setup; production multiplexing (the `parcomm-mux` admission tick) wants
//! the handshakes **coalesced**: every channel's setup AM is already in
//! flight (sent at init / start), so one tick can charge the heavyweight
//! first-call overhead once and drain all the replies back to back,
//! billing each further channel only its own registration increment
//! ([`crate::ApiOverheads::pbuf_prepare_batch_extra`]).
//!
//! Protocol-wise a batched prepare is identical to the serial loop — the
//! same AMs travel in the same order, so a batch of one is bit-identical
//! to a plain [`PsendRequest::pbuf_prepare`] apart from the charge — which
//! keeps the negotiation semantics (shmem accept/demote, partition-count
//! validation, epoch sync) byte-for-byte the same.

use parcomm_mpi::MpiError;
use parcomm_sim::Ctx;

use crate::recv::PrecvRequest;
use crate::send::PsendRequest;

/// Prepare every channel admitted in one tick, coalescing the setup
/// overhead: the first channel that still needs its heavyweight first-call
/// work charges it in full; every further channel in the batch is billed
/// the per-channel batch increment instead.
///
/// Receive channels are prepared first (they consume the senders' setup
/// AMs and emit the replies / RTR signals), then send channels (they block
/// on those replies) — the same reply-before-block order the collective
/// engine uses, so a tick whose sends and receives pair up across ranks
/// cannot deadlock. Within each side, channels are processed in slice
/// order; callers that need cross-rank agreement (the mux admission tick)
/// pass both sides the same canonical order.
pub fn pbuf_prepare_batch(
    ctx: &mut Ctx,
    recvs: &[PrecvRequest],
    sends: &[PsendRequest],
) -> Result<(), MpiError> {
    let mut charged = false;
    for r in recvs {
        r.pbuf_prepare_charged(ctx, !charged)?;
        charged = true;
    }
    for s in sends {
        s.pbuf_prepare_charged(ctx, !charged)?;
        charged = true;
    }
    Ok(())
}
