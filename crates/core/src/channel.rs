//! The partitioned channel wire protocol: tag namespace and the `setup_t`
//! bootstrap objects exchanged between sender and receiver (paper §IV-A1,
//! §IV-A2).

use parcomm_shmem::ShmemError;
use parcomm_sim::CountEvent;
use parcomm_ucx::{RKey, WorkerAddress};

/// Control-message channels multiplexed over the UCX active-message tags.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Channel {
    /// Sender → receiver: initial `setup_t` (from `MPI_Psend_init`).
    Setup = 0,
    /// Receiver → sender: `setup_t` response with rkeys (first
    /// `MPIX_Pbuf_prepare`).
    SetupReply = 1,
    /// Receiver → sender: ready-to-receive signal (subsequent
    /// `MPIX_Pbuf_prepare`).
    ReadyToReceive = 2,
}

/// Pack `(channel, tag, src, dst)` into a single UCX AM tag.
///
/// MPI matching for partitioned channels is on (communicator, rank, tag,
/// posting order); we support one world communicator and require a unique
/// `(src, dst, tag)` triple per channel, which the assertion in
/// `psend_init` enforces.
pub(crate) fn am_tag(chan: Channel, tag: u64, src: usize, dst: usize) -> u64 {
    assert!(tag < (1 << 24), "partitioned tag must fit 24 bits");
    assert!(src < (1 << 16) && dst < (1 << 16), "rank must fit 16 bits");
    ((chan as u64) << 56) | (tag << 32) | ((src as u64) << 16) | dst as u64
}

/// `setup_t`: what `MPI_Psend_init` ships to the receiver (non-blocking).
#[derive(Clone, Debug)]
pub(crate) struct SenderSetup {
    /// Sender and destination rank plus tag: carried on the wire for
    /// matching on real hardware; in the simulation the AM tag already
    /// encodes them, so they are kept for fidelity and debug output.
    #[allow(dead_code)]
    pub src: usize,
    #[allow(dead_code)]
    pub dst: usize,
    #[allow(dead_code)]
    pub tag: u64,
    /// Sender-side user partition count.
    pub user_partitions: usize,
    /// Bytes per user partition.
    pub partition_bytes: usize,
    /// Sender worker address, so the receiver can address its reply.
    pub sender_addr: WorkerAddress,
}

impl SenderSetup {
    /// Modeled wire size: ranks, tag, counts, packed worker address.
    pub const WIRE_BYTES: u64 = 64;
}

/// The receiver's `setup_t` response: everything the sender needs for RMA.
#[derive(Clone)]
pub(crate) struct ReceiverSetup {
    /// Remote key of the receive data buffer.
    pub data_rkey: RKey,
    /// Remote key of the partition status flags (one u64 per user
    /// partition).
    pub flag_rkey: RKey,
    /// Simulation stand-in for the receiver polling its flag memory: the
    /// chained flag put bumps this counter at flag-arrival time.
    pub notifier: CountEvent,
    /// Receiver-side user partition count (must match the sender's).
    pub user_partitions: usize,
    /// When the receiver demoted a requested shmem channel to the
    /// Progression Engine, the typed reason (route forbids symmetric
    /// access, registration failure, heap exhausted). On hardware this is a
    /// status code in the setup reply; the simulation carries the full
    /// error for exact diagnostics.
    pub shmem_denied: Option<ShmemError>,
}

impl ReceiverSetup {
    /// Modeled wire size: two packed rkeys (UCX rkeys are ~100 B each),
    /// remote address, counts.
    pub const WIRE_BYTES: u64 = 256;
}

/// The receiver's `setup_t` response on a negotiated **symmetric-heap**
/// channel: no rkey travels — only the receiver's symmetric offsets, which
/// the sender translates locally against the world's heap. This is the
/// whole point of the mechanism: channel setup shrinks from two packed
/// rkeys (~100 B each) to two 8-byte offsets, and `ucx.rkey_exchanges`
/// stays at zero.
#[derive(Clone)]
pub(crate) struct ShmemReceiverSetup {
    /// Symmetric offset of the receive data buffer in the receiver's
    /// segment.
    pub data_off: u64,
    /// Symmetric offset of the partition status flags.
    pub flag_off: u64,
    /// Same notifier contract as [`ReceiverSetup::notifier`], bumped by the
    /// device-initiated `shmem_signal` at its arrival instant.
    pub notifier: CountEvent,
    /// Receiver-side user partition count (must match the sender's).
    pub user_partitions: usize,
}

impl ShmemReceiverSetup {
    /// Modeled wire size: two symmetric offsets, counts — no rkeys.
    pub const WIRE_BYTES: u64 = 48;
}

/// Ready-to-receive payload for epochs after the first.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct ReadyToReceive {
    /// The receiver's new epoch (sender asserts it matches its own).
    pub epoch: u64,
}

impl ReadyToReceive {
    /// Modeled wire size.
    pub const WIRE_BYTES: u64 = 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_disjoint_across_channels_and_peers() {
        let mut seen = std::collections::HashSet::new();
        for chan in [Channel::Setup, Channel::SetupReply, Channel::ReadyToReceive] {
            for tag in [0u64, 1, 77] {
                for src in [0usize, 1, 7] {
                    for dst in [0usize, 2, 5] {
                        assert!(seen.insert(am_tag(chan, tag, src, dst)));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn oversized_tag_rejected() {
        am_tag(Channel::Setup, 1 << 24, 0, 1);
    }
}
