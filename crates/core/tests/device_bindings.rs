//! Focused tests for the device-side API: progressive readiness overlap,
//! the `MPIX_Parrived` device mirror, warp-level aggregation end-to-end,
//! pinned-flag contents, and MPI_Test polling.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
use parcomm_gpu::{AggLevel, KernelSpec};
use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, SimDuration, Simulation};

const TAG: u64 = 77;

/// A compute-heavy kernel whose span rivals the transfer time.
fn heavy_kernel() -> KernelSpec {
    KernelSpec::new("heavy", 512, 1024).with_flops(20_000.0)
}

#[test]
fn progressive_pready_overlaps_transfer_with_compute() {
    // Same channel, same kernel: the progressive variant's sender-side
    // wait must finish earlier because the first transport partition's
    // data starts crossing NVLink mid-kernel.
    fn run(progressive: bool) -> f64 {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 1);
        let out = Arc::new(Mutex::new(0.0f64));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let parts = 512usize;
            let bytes = parts * 32 * 1024; // 16 MB → ~110 µs on NVLink
            let buf = rank.gpu().alloc_global(bytes);
            match rank.rank() {
                0 => {
                    let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    let preq = prequest_create(
                        ctx,
                        rank,
                        &sreq,
                        PrequestConfig { transport_partitions: 4, ..PrequestConfig::default() },
                    )
                    .unwrap();
                    let t0 = ctx.now();
                    let stream = rank.gpu().create_stream();
                    let p2 = preq.clone();
                    stream.launch(ctx, heavy_kernel(), move |d| {
                        if progressive {
                            p2.pready_all_progressive(d);
                        } else {
                            p2.pready_all(d);
                        }
                    });
                    sreq.wait(ctx).expect("wait");
                    *o2.lock() = ctx.now().since(t0).as_micros_f64();
                }
                1 => {
                    let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rreq.wait(ctx).expect("wait");
                }
                _ => {}
            }
        });
        sim.run().unwrap();
        let v = *out.lock();
        v
    }
    let at_end = run(false);
    let progressive = run(true);
    assert!(
        progressive < at_end * 0.8,
        "progressive ({progressive} µs) must overlap transfers with compute \
         (all-at-end: {at_end} µs)"
    );
}

#[test]
fn progressive_kernel_copy_delivers_payload() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 64usize;
        let buf = rank.gpu().alloc_global(parts * 64);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64(u * 64, (u * u) as f64);
                }
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        copy: CopyMechanism::KernelCopy,
                        transport_partitions: 4,
                        ..PrequestConfig::default()
                    },
                )
                .unwrap();
                let stream = rank.gpu().create_stream();
                let p2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| {
                    p2.pready_all_progressive(d)
                });
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(buf.read_f64(u * 64), (u * u) as f64, "partition {u}");
                }
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn warp_level_device_binding_round_trip() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 128usize; // 4 warps worth of thread-partitions
        let buf = rank.gpu().alloc_global(parts * 8);
        match rank.rank() {
            0 => {
                buf.write_f64_slice(0, &vec![6.25; parts]);
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        agg: AggLevel::Warp,
                        multi_block_counters: false,
                        ..PrequestConfig::default()
                    },
                )
                .unwrap();
                let stream = rank.gpu().create_stream();
                let p2 = preq.clone();
                stream
                    .launch(ctx, KernelSpec::vector_add(1, parts as u32), move |d| p2.pready_all(d));
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                assert_eq!(buf.read_f64_slice(0, parts), vec![6.25; parts]);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn device_arrival_mirror_reflects_wait() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 256);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                // Create the device mirror before the epoch.
                let mirror = rreq.device_arrival_flags(rank);
                assert_eq!(mirror.read_flag(0), 0, "mirror starts clear");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                // MPI_Wait refreshed the device mirror (paper §IV-A4): a
                // kernel can now check arrivals from device memory.
                let stream = rank.gpu().create_stream();
                let rreq2 = rreq.clone();
                let seen = Arc::new(Mutex::new(Vec::new()));
                let seen2 = seen.clone();
                let launch = stream.launch(ctx, KernelSpec::vector_add(1, 4), move |d| {
                    for u in 0..parts {
                        seen2.lock().push(rreq2.parrived_device(d, u));
                    }
                });
                ctx.wait(&launch.done);
                assert_eq!(*seen.lock(), vec![true; parts]);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn mpi_test_polls_without_blocking() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 2usize;
        let buf = rank.gpu().alloc_global(parts * 128);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                assert!(!sreq.test(), "nothing sent yet");
                sreq.pready(ctx, 0).expect("pready");
                sreq.pready(ctx, 1).expect("pready");
                // Poll until complete (MPI_Test loop).
                let mut polls = 0;
                while !sreq.test() {
                    ctx.advance(SimDuration::from_micros(1));
                    polls += 1;
                    assert!(polls < 1000, "test never completed");
                }
                sreq.wait(ctx).expect("wait"); // immediate
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                while !rreq.test() {
                    ctx.advance(SimDuration::from_micros(1));
                }
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn pinned_flags_record_epoch_numbers() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 8);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig::default()).unwrap();
                let stream = rank.gpu().create_stream();
                let p2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, 4), move |d| p2.pready_all(d));
                sreq.wait(ctx).expect("wait");
                // The device wrote its notification into pinned host memory.
                assert_eq!(preq.pinned_flags().read_flag(0), 1, "epoch 1 notification");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}
