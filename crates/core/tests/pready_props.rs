//! Property tests of `Pready`/`Parrived` completion counting on the
//! `parcomm-testkit` runner: for any partition count, transport aggregation,
//! and *any permutation* of the `pready` calls, the send request completes
//! exactly once, every partition's arrival flag fires, and every payload is
//! delivered exactly once (no duplicates, no clobbers).

use std::sync::Arc;

use parcomm_core::{precv_init, psend_init};
use parcomm_mpi::MpiWorld;
use parcomm_sim::{Mutex, Simulation};
use parcomm_testkit::prop::{check, PropConfig, TestResult};

/// Deterministic Fisher–Yates permutation of `0..n` from an LCG stream.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(1);
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

#[test]
fn any_pready_permutation_completes_exactly_once() {
    check(
        &PropConfig::with_cases(16),
        "any_pready_permutation_completes_exactly_once",
        |rng| {
            (
                rng.uniform_range(1, 16) as usize,
                rng.uniform_range(1, 16) as usize,
                rng.uniform_range(0, 1 << 32),
            )
        },
        |&(partitions, transports_probe, perm_seed)| {
            if partitions == 0 || transports_probe == 0 {
                return TestResult::Discard;
            }
            let transports = 1 + transports_probe % partitions;
            let order = permutation(partitions, perm_seed);
            let bytes = partitions * 512;
            // Each partition delivers a distinct sentinel; the receiver
            // counts arrivals by value, so a duplicate or dropped delivery
            // shows up as a count mismatch rather than a silent overwrite.
            let mut sim = Simulation::with_seed(perm_seed);
            let world = MpiWorld::gh200(&sim, 1);
            let wait_count = Arc::new(Mutex::new(0u32));
            let w2 = wait_count.clone();
            world.run_ranks(&mut sim, move |ctx, rank| {
                let buf = rank.gpu().alloc_global(bytes);
                match rank.rank() {
                    0 => {
                        for u in 0..partitions {
                            buf.write_f64(u * 512, (u + 1) as f64 * 1.5);
                        }
                        let sreq = psend_init(ctx, rank, 1, 88, &buf, partitions).expect("init");
                        sreq.set_transport_partitions(transports).expect("set_transport_partitions");
                        sreq.start(ctx).expect("start");
                        sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        for &u in &order {
                            sreq.pready(ctx, u).expect("pready");
                        }
                        sreq.wait(ctx).expect("wait");
                        *w2.lock() += 1;
                    }
                    1 => {
                        let rreq = precv_init(ctx, rank, 0, 88, &buf, partitions).expect("init");
                        rreq.start(ctx).expect("start");
                        rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        rreq.wait(ctx).expect("wait");
                        for u in 0..partitions {
                            assert!(rreq.parrived(u), "partition {u} not flagged");
                            assert_eq!(
                                buf.read_f64(u * 512),
                                (u + 1) as f64 * 1.5,
                                "partition {u} payload (perm {order:?})"
                            );
                        }
                    }
                    _ => {}
                }
            });
            sim.run().expect("p2p sim");
            assert_eq!(*wait_count.lock(), 1, "sender wait completed exactly once");
            TestResult::Pass
        },
    );
}

#[test]
fn double_pready_of_same_partition_fails_the_run() {
    // Completion counting must reject marking the same partition ready
    // twice in one epoch — that is the bug class the counter exists for.
    // The offending rank panics inside the simulation; the scheduler
    // surfaces it as a run error.
    let mut sim = Simulation::with_seed(1);
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(4 * 256);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 89, &buf, 4).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                sreq.pready(ctx, 2).expect("pready");
                sreq.pready(ctx, 2).expect("pready"); // duplicate: must fail the run
                for u in [0, 1, 3] {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 89, &buf, 4).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    let err = sim.run().expect_err("duplicate pready must be rejected");
    assert!(
        err.to_string().contains("marked ready twice"),
        "unexpected error: {err}"
    );
}
