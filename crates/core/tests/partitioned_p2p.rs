//! End-to-end tests of partitioned point-to-point: host bindings, epochs,
//! transport aggregation, and both GPU-initiated copy mechanisms.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
use parcomm_gpu::{AggLevel, KernelSpec};
use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, SimDuration, Simulation};

const TAG: u64 = 42;

#[test]
fn host_pready_full_cycle_delivers_all_partitions() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 8usize;
        let bytes = parts * 1024;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            0 => {
                for u in 0..parts {
                    buf.write_f64_slice(u * 1024, &[u as f64 + 1.0; 128]);
                }
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert!(rreq.parrived(u), "partition {u} must be flagged");
                    assert_eq!(buf.read_f64_slice(u * 1024, 128), vec![u as f64 + 1.0; 128]);
                }
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn persistent_channel_reuse_across_epochs() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * 8);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                for epoch in 1..=3u64 {
                    buf.write_f64_slice(0, &[epoch as f64; 4]);
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    for u in 0..parts {
                        sreq.pready(ctx, u).expect("pready");
                    }
                    sreq.wait(ctx).expect("wait");
                }
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                for epoch in 1..=3u64 {
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rreq.wait(ctx).expect("wait");
                    assert_eq!(
                        buf.read_f64_slice(0, 4),
                        vec![epoch as f64; 4],
                        "epoch {epoch} payload"
                    );
                    assert!(rreq.parrived(2));
                }
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn transport_aggregation_reduces_put_count() {
    // 8 user partitions aggregated into 2 transport puts: partitions only
    // arrive when their covering transport partition completes.
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let observed = Arc::new(Mutex::new(Vec::new()));
    let obs2 = observed.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 8usize;
        let buf = rank.gpu().alloc_global(parts * 64);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.set_transport_partitions(2).expect("set_transport_partitions");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                // Ready partitions 0..3: completes transport 0 only.
                for u in 0..4 {
                    sreq.pready(ctx, u).expect("pready");
                }
                ctx.advance(SimDuration::from_micros(50));
                // Now the second transport.
                for u in 4..8 {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                // Poll until the first transport lands; record arrival sets.
                while rreq.arrived_count() < 4 {
                    ctx.advance(SimDuration::from_micros(1));
                }
                let first: Vec<bool> = (0..8).map(|u| rreq.parrived(u)).collect();
                obs2.lock().push(first);
                rreq.wait(ctx).expect("wait");
                let second: Vec<bool> = (0..8).map(|u| rreq.parrived(u)).collect();
                obs2.lock().push(second);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
    let obs = observed.lock();
    assert_eq!(obs[0], vec![true, true, true, true, false, false, false, false]);
    assert_eq!(obs[1], vec![true; 8]);
}

fn run_device_cycle(copy: CopyMechanism, agg: AggLevel) -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let elapsed = Arc::new(Mutex::new(0.0));
    let e2 = elapsed.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 256usize; // one user partition per thread
        let buf = rank.gpu().alloc_global(parts * 8);
        match rank.rank() {
            0 => {
                buf.write_f64_slice(0, &(0..parts).map(|i| i as f64).collect::<Vec<_>>());
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig { copy, agg, transport_partitions: 1, multi_block_counters: true },
                )
                .expect("prequest");
                let t0 = ctx.now();
                let stream = rank.gpu().create_stream();
                let preq2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, parts as u32), move |d| {
                    preq2.pready_all(d);
                });
                sreq.wait(ctx).expect("wait");
                *e2.lock() = ctx.now().since(t0).as_micros_f64();
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                assert_eq!(
                    buf.read_f64_slice(0, parts),
                    (0..parts).map(|i| i as f64).collect::<Vec<_>>(),
                    "device-initiated payload must land"
                );
            }
            _ => {}
        }
    });
    sim.run().unwrap();
    let v = *elapsed.lock();
    v
}

#[test]
fn device_progression_engine_path_delivers() {
    let t = run_device_cycle(CopyMechanism::ProgressionEngine, AggLevel::Block);
    // Kernel (~1 µs) + block flag write (~1.3 µs) + PE poll + put + NVLink.
    assert!(t > 2.0 && t < 30.0, "PE path cycle took {t} µs");
}

#[test]
fn device_kernel_copy_path_delivers() {
    let t = run_device_cycle(CopyMechanism::KernelCopy, AggLevel::Block);
    assert!(t > 2.0 && t < 30.0, "kernel-copy cycle took {t} µs");
}

#[test]
fn kernel_copy_beats_progression_engine_intra_node() {
    let pe = run_device_cycle(CopyMechanism::ProgressionEngine, AggLevel::Block);
    let kc = run_device_cycle(CopyMechanism::KernelCopy, AggLevel::Block);
    assert!(kc < pe, "kernel copy ({kc} µs) must beat progression engine ({pe} µs)");
}

#[test]
fn aggregation_levels_order_kernel_cost() {
    // Fig. 3 shape: thread-level pready costs far more device time than
    // block-level for a fully occupied block.
    let thread = run_device_cycle(CopyMechanism::ProgressionEngine, AggLevel::Thread);
    let warp = run_device_cycle(CopyMechanism::ProgressionEngine, AggLevel::Warp);
    let block = run_device_cycle(CopyMechanism::ProgressionEngine, AggLevel::Block);
    assert!(block < warp && warp < thread, "block={block} warp={warp} thread={thread}");
    assert!(thread / block > 10.0, "thread/block ratio {}", thread / block);
}

#[test]
fn kernel_copy_cross_node_is_rejected() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(1024);
        match rank.rank() {
            0 => {
                // Rank 4 is on the other node.
                let sreq = psend_init(ctx, rank, 4, TAG, &buf, 4).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let err = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        copy: CopyMechanism::KernelCopy,
                        ..PrequestConfig::default()
                    },
                );
                assert!(err.is_err(), "kernel copy must fail across nodes");
                // Fall back to the progression engine and finish the epoch.
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig::default()).unwrap();
                let stream = rank.gpu().create_stream();
                let preq2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, 4), move |d| preq2.pready_all(d));
                sreq.wait(ctx).expect("wait");
            }
            4 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, 4).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn inter_node_progression_engine_works() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, |ctx, rank| {
        let parts = 16usize;
        let buf = rank.gpu().alloc_global(parts * 512);
        match rank.rank() {
            2 => {
                buf.write_f64_slice(0, &[2.5; 64]);
                let sreq = psend_init(ctx, rank, 6, TAG, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig::default()).unwrap();
                let stream = rank.gpu().create_stream();
                let preq2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, parts as u32), move |d| {
                    preq2.pready_all(d)
                });
                sreq.wait(ctx).expect("wait");
            }
            6 => {
                let rreq = precv_init(ctx, rank, 2, TAG, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                assert_eq!(buf.read_f64_slice(0, 64), vec![2.5; 64]);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn two_transport_partitions_overlap_large_kernels_inter_node() {
    // The paper found 2 transport partitions best for large inter-node
    // kernels (§VI-A2): with threads marking partitions ready as they
    // complete, the first half of the payload is already crossing the IB
    // fabric while the second half is still being computed.
    fn run(transports: usize) -> f64 {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 2);
        let elapsed = Arc::new(Mutex::new(0.0));
        let e2 = elapsed.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let parts = 1024usize;
            let bytes = parts * 8192; // 8 MB total → ~165 µs on the wire
            let buf = rank.gpu().alloc_global(bytes);
            // Compute-heavy kernel (~175 µs) so transfer and compute have
            // comparable spans and overlap is observable.
            let spec = KernelSpec::new("heavy", 1024, 1024).with_flops(10_000.0);
            match rank.rank() {
                0 => {
                    let sreq = psend_init(ctx, rank, 4, TAG, &buf, parts).expect("init");
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    let preq = prequest_create(
                        ctx,
                        rank,
                        &sreq,
                        PrequestConfig {
                            transport_partitions: transports,
                            ..PrequestConfig::default()
                        },
                    )
                    .unwrap();
                    let t0 = ctx.now();
                    let stream = rank.gpu().create_stream();
                    let preq2 = preq.clone();
                    stream.launch(ctx, spec, move |d| preq2.pready_all_progressive(d));
                    sreq.wait(ctx).expect("wait");
                    *e2.lock() = ctx.now().since(t0).as_micros_f64();
                }
                4 => {
                    let rreq = precv_init(ctx, rank, 0, TAG, &buf, parts).expect("init");
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rreq.wait(ctx).expect("wait");
                }
                _ => {}
            }
        });
        sim.run().unwrap();
        let v = *elapsed.lock();
        v
    }
    let one = run(1);
    let two = run(2);
    assert!(
        two < one * 0.95,
        "two transport partitions ({two} µs) should overlap the IB transfer \
         with compute vs one ({one} µs)"
    );
}

#[test]
#[should_panic(expected = "MPI_Pready before MPI_Start")]
fn pready_before_start_panics() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(64);
        if rank.rank() == 0 {
            let sreq = psend_init(ctx, rank, 1, TAG, &buf, 4).expect("init");
            sreq.pready(ctx, 0).expect("pready"); // no start, no prepare: must panic
        }
    });
    let err = sim.run().unwrap_err();
    panic!("{err}");
}

#[test]
#[should_panic(expected = "marked ready twice")]
fn double_pready_panics() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(64);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, 4).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                sreq.pready(ctx, 2).expect("pready");
                sreq.pready(ctx, 2).expect("pready"); // double ready in one epoch
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, 4).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    let err = sim.run().unwrap_err();
    panic!("{err}");
}

#[test]
fn mismatched_partition_counts_detected() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(64);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, TAG, &buf, 8).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, TAG, &buf, 4).expect("init"); // mismatch
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
            }
            _ => {}
        }
    });
    let err = sim.run().unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("partition counts differ"), "got: {msg}");
}
