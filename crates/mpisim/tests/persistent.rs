//! Persistent point-to-point: epoch reuse, correctness, and the
//! partitioned-vs-persistent relationship the literature measures.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, SimDuration, Simulation};

#[test]
fn persistent_send_recv_round_trips_across_epochs() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(1024);
        match rank.rank() {
            0 => {
                let req = rank.send_init(1, 4, &buf, 0, 1024);
                for epoch in 1..=3u64 {
                    buf.write_f64_slice(0, &[epoch as f64; 128]);
                    rank.start_persistent(ctx, &req);
                    rank.wait_persistent(ctx, &req);
                }
            }
            1 => {
                let req = rank.recv_init(0, 4, &buf, 0, 1024);
                for epoch in 1..=3u64 {
                    rank.start_persistent(ctx, &req);
                    rank.wait_persistent(ctx, &req);
                    assert_eq!(buf.read_f64_slice(0, 128), vec![epoch as f64; 128]);
                }
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn persistent_test_polls() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(64);
        match rank.rank() {
            0 => {
                let req = rank.send_init(1, 6, &buf, 0, 64);
                rank.start_persistent(ctx, &req);
                while !rank.test_persistent(&req) {
                    ctx.advance(SimDuration::from_micros(1));
                }
                rank.wait_persistent(ctx, &req);
            }
            1 => {
                // Delay posting the receive so the sender actually polls.
                ctx.advance(SimDuration::from_micros(25));
                let req = rank.recv_init(0, 6, &buf, 0, 64);
                rank.start_persistent(ctx, &req);
                rank.wait_persistent(ctx, &req);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
#[should_panic(expected = "already-active persistent request")]
fn double_start_is_rejected() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        if rank.rank() == 0 {
            let buf = rank.gpu().alloc_global(64);
            let req = rank.send_init(1, 8, &buf, 0, 64);
            rank.start_persistent(ctx, &req);
            rank.start_persistent(ctx, &req);
        }
    });
    let err = sim.run().unwrap_err();
    panic!("{err}");
}

#[test]
fn partitioned_beats_persistent_when_kernel_initiates() {
    // Dosanjh et al. compare partitioned implementations against
    // persistent-based ones (paper §VII-A); with a GPU producer the
    // persistent path must still stream-synchronize before MPI_Start,
    // while the partitioned channel is driven from the kernel.
    use parcomm_core::{precv_init, prequest_create, psend_init, PrequestConfig};
    use parcomm_gpu::KernelSpec;

    fn run(partitioned: bool) -> f64 {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 1);
        let out = Arc::new(Mutex::new(0.0f64));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let bytes = 64 * 1024;
            let buf = rank.gpu().alloc_global(bytes);
            let stream = rank.gpu().create_stream();
            match rank.rank() {
                0 => {
                    if partitioned {
                        let sreq = psend_init(ctx, rank, 1, 9, &buf, 16).expect("init");
                        sreq.start(ctx).expect("start");
                        sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        let preq =
                            prequest_create(ctx, rank, &sreq, PrequestConfig::default()).unwrap();
                        let t0 = ctx.now();
                        let p2 = preq.clone();
                        stream.launch(ctx, KernelSpec::vector_add(8, 1024), move |d| {
                            p2.pready_all(d)
                        });
                        sreq.wait(ctx).expect("wait");
                        *o2.lock() = ctx.now().since(t0).as_micros_f64();
                    } else {
                        let req = rank.send_init(1, 9, &buf, 0, bytes);
                        let t0 = ctx.now();
                        stream.launch(ctx, KernelSpec::vector_add(8, 1024), |_| {});
                        stream.synchronize(ctx);
                        rank.start_persistent(ctx, &req);
                        rank.wait_persistent(ctx, &req);
                        *o2.lock() = ctx.now().since(t0).as_micros_f64();
                    }
                }
                1 => {
                    if partitioned {
                        let rreq = precv_init(ctx, rank, 0, 9, &buf, 16).expect("init");
                        rreq.start(ctx).expect("start");
                        rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        rreq.wait(ctx).expect("wait");
                    } else {
                        let req = rank.recv_init(0, 9, &buf, 0, bytes);
                        rank.start_persistent(ctx, &req);
                        rank.wait_persistent(ctx, &req);
                    }
                }
                _ => {}
            }
        });
        sim.run().unwrap();
        let v = *out.lock();
        v
    }
    let persistent = run(false);
    let partitioned = run(true);
    assert!(
        partitioned < persistent,
        "GPU-initiated partitioned ({partitioned} µs) must beat persistent + sync \
         ({persistent} µs)"
    );
}
