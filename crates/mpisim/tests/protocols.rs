//! Protocol-level tests for the MPI point-to-point model: eager vs
//! rendezvous behavior and multi-rail effects on the send path.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, Simulation};

/// Time one blocking send of `bytes` between `a` and `b`.
fn send_time(nodes: u16, a: usize, b: usize, bytes: usize) -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, nodes);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(bytes);
        if rank.rank() == a {
            rank.barrier(ctx);
            let t0 = ctx.now();
            rank.send(ctx, b, 2, &buf, 0, bytes);
            *o2.lock() = ctx.now().since(t0).as_micros_f64();
        } else if rank.rank() == b {
            rank.barrier(ctx);
            rank.recv(ctx, a, 2, &buf, 0, bytes);
        } else {
            rank.barrier(ctx);
        }
    });
    sim.run().unwrap();
    let v = *out.lock();
    v
}

#[test]
fn rendezvous_handshake_appears_above_eager_threshold() {
    // 4 KB is eager; 8 KB pays the RTS/CTS round trip. The per-byte time
    // difference alone cannot explain the jump.
    let eager = send_time(1, 0, 1, 4 * 1024);
    let rndv = send_time(1, 0, 1, 8 * 1024);
    let wire_delta = 4.0 * 1024.0 / (150.0 * 1e3); // ≈ 0.03 µs
    assert!(
        rndv - eager > wire_delta + 2.0,
        "rendezvous must add a visible handshake: eager {eager} µs, rndv {rndv} µs"
    );
}

#[test]
fn multi_rail_striping_kicks_in_for_large_cross_node_sends() {
    // 8 MB crosses the stripe threshold: effective wire ≈ 4 × 50 GB/s.
    let t = send_time(2, 0, 4, 8 << 20);
    let single_rail_us = (8u64 << 20) as f64 / (50.0 * 1e3);
    assert!(
        t < single_rail_us * 0.5,
        "striped send ({t} µs) must beat single-rail serialization ({single_rail_us} µs)"
    );
}

#[test]
fn small_cross_node_sends_do_not_stripe() {
    // 64 KB stays on one rail: roughly serialization + latency + handshake.
    let t = send_time(2, 0, 4, 64 * 1024);
    let expected = 64.0 * 1024.0 / (50.0 * 1e3) + 3.5 + 7.0 + 1.0;
    assert!(
        (t - expected).abs() < 4.0,
        "single-rail send {t} µs, expected ≈ {expected} µs"
    );
}

#[test]
fn intra_node_gpu_send_uses_nvlink_not_ib() {
    let intra = send_time(1, 0, 1, 1 << 20);
    let inter = send_time(2, 0, 4, 1 << 20);
    assert!(intra < inter, "NVLink path must beat IB path at 1 MB");
    // 1 MB over 150 GB/s ≈ 7 µs serialization; the whole send should be
    // well under 30 µs.
    assert!(intra < 30.0, "intra-node 1 MB send took {intra} µs");
}
