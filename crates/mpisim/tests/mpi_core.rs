//! Integration tests for the MPI core: world/topology, point-to-point
//! matching semantics, the traditional allreduce baseline, and the
//! progression engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_mpi::{HookOutcome, MpiWorld};
use parcomm_sim::{SimConfig, SimDuration, Simulation};

#[test]
fn topology_maps_ranks_to_gpus() {
    let sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 2);
    assert_eq!(world.size(), 8);
    assert_eq!(world.gpu_of(0).node, 0);
    assert_eq!(world.gpu_of(3).index, 3);
    assert_eq!(world.gpu_of(4).node, 1);
    assert_eq!(world.gpu_of(4).index, 0);
    assert_eq!(world.node_of(7), 1);
}

#[test]
fn send_recv_delivers_bytes() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(1024);
        match rank.rank() {
            0 => {
                buf.write_f64_slice(0, &[41.0; 128]);
                rank.send(ctx, 1, 7, &buf, 0, 1024);
            }
            1 => {
                rank.recv(ctx, 0, 7, &buf, 0, 1024);
                assert_eq!(buf.read_f64_slice(0, 128), vec![41.0; 128]);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn messages_do_not_overtake_within_tag() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let buf = rank.gpu().alloc_global(8);
        match rank.rank() {
            0 => {
                for v in 1..=4u64 {
                    buf.write_flag(0, v);
                    rank.send(ctx, 1, 9, &buf, 0, 8);
                }
            }
            1 => {
                for v in 1..=4u64 {
                    rank.recv(ctx, 0, 9, &buf, 0, 8);
                    assert_eq!(buf.read_flag(0), v, "FIFO per (src,dst,tag)");
                }
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn different_tags_match_independently() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        match rank.rank() {
            0 => {
                let a = rank.gpu().alloc_global(8);
                let b = rank.gpu().alloc_global(8);
                a.write_flag(0, 100);
                b.write_flag(0, 200);
                let h = ctx.handle();
                // Post tag 1 then tag 2; receiver takes tag 2 first.
                let s1 = rank.isend(&h, 1, 1, &a, 0, 8);
                let s2 = rank.isend(&h, 1, 2, &b, 0, 8);
                ctx.wait(&s1.done);
                ctx.wait(&s2.done);
            }
            1 => {
                let buf = rank.gpu().alloc_global(8);
                rank.recv(ctx, 0, 2, &buf, 0, 8);
                assert_eq!(buf.read_flag(0), 200);
                rank.recv(ctx, 0, 1, &buf, 0, 8);
                assert_eq!(buf.read_flag(0), 100);
            }
            _ => {}
        }
    });
    sim.run().unwrap();
}

#[test]
fn cross_node_send_takes_longer_than_intra_node() {
    let intra = time_pingpong(1, 0, 1);
    let inter = time_pingpong(2, 0, 4);
    assert!(
        inter > intra * 1.3,
        "inter-node {inter} µs should exceed intra-node {intra} µs"
    );
}

fn time_pingpong(nodes: u16, a: usize, b: usize) -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, nodes);
    let elapsed = Arc::new(Mutex::new(0.0));
    let e2 = elapsed.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(65536);
        if rank.rank() == a {
            let t0 = ctx.now();
            rank.send(ctx, b, 3, &buf, 0, 65536);
            rank.recv(ctx, b, 4, &buf, 0, 65536);
            *e2.lock() = ctx.now().since(t0).as_micros_f64();
        } else if rank.rank() == b {
            rank.recv(ctx, a, 3, &buf, 0, 65536);
            rank.send(ctx, a, 4, &buf, 0, 65536);
        }
    });
    sim.run().unwrap();
    let v = *elapsed.lock();
    v
}

#[test]
fn allreduce_ring_sums_across_all_ranks() {
    for nodes in [1u16, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, nodes);
        let size = world.size();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let n = 1024usize;
            let buf = rank.gpu().alloc_global(n * 8);
            let init: Vec<f64> =
                (0..n).map(|i| (rank.rank() + 1) as f64 * (i + 1) as f64).collect();
            buf.write_f64_slice(0, &init);
            let stream = rank.gpu().create_stream();
            rank.allreduce_ring_f64(ctx, &buf, 0, n, &stream);
            // Expected: sum over ranks of (r+1)*(i+1) = (i+1) * P(P+1)/2.
            let p = rank.size() as f64;
            let scale = p * (p + 1.0) / 2.0;
            let out = buf.read_f64_slice(0, n);
            for (i, v) in out.iter().enumerate() {
                let expect = (i + 1) as f64 * scale;
                assert!(
                    (v - expect).abs() < 1e-9,
                    "nodes={nodes} rank={} elem {i}: {v} != {expect}",
                    rank.rank()
                );
            }
        });
        sim.run().unwrap();
        let _ = size;
    }
}

#[test]
fn allreduce_handles_uneven_lengths() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = 13usize; // not divisible by 4
        let buf = rank.gpu().alloc_global(n * 8);
        buf.write_f64_slice(0, &vec![1.0; n]);
        let stream = rank.gpu().create_stream();
        rank.allreduce_ring_f64(ctx, &buf, 0, n, &stream);
        assert_eq!(buf.read_f64_slice(0, n), vec![4.0; n]);
    });
    sim.run().unwrap();
}

#[test]
fn allreduce_single_element_chunks() {
    // n < P exercise: some chunks are empty.
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = 2usize;
        let buf = rank.gpu().alloc_global(n * 8);
        buf.write_f64_slice(0, &[rank.rank() as f64, 10.0]);
        let stream = rank.gpu().create_stream();
        rank.allreduce_ring_f64(ctx, &buf, 0, n, &stream);
        assert_eq!(buf.read_f64_slice(0, n), vec![0.0 + 1.0 + 2.0 + 3.0, 40.0]);
    });
    sim.run().unwrap();
}

#[test]
fn progression_engine_runs_hooks_until_removed() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = counter.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        if rank.rank() == 0 {
            let c3 = c2.clone();
            rank.progression().register(&ctx.handle(), move |_ctx| {
                let n = c3.fetch_add(1, Ordering::Relaxed) + 1;
                if n >= 5 {
                    HookOutcome::Remove
                } else {
                    HookOutcome::Keep
                }
            });
            // Give the engine time to run the hook to completion.
            ctx.advance(SimDuration::from_micros(100));
            assert_eq!(rank.progression().hook_count(), 0);
        }
    });
    sim.run().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 5);
}

#[test]
fn progression_engine_idles_without_hooks() {
    // A world where nobody registers hooks must terminate promptly (the
    // engines park on their work event and are released at shutdown).
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 2);
    world.run_ranks(&mut sim, |ctx, _rank| {
        ctx.advance(SimDuration::from_micros(10));
    });
    let report = sim.run().unwrap();
    // 8 ranks + 8 idle engines should not generate poll storms.
    assert!(report.events_processed < 500, "events {}", report.events_processed);
}

#[test]
fn barrier_aligns_ranks() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let times = Arc::new(Mutex::new(Vec::new()));
    let t2 = times.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        ctx.advance(SimDuration::from_micros(rank.rank() as u64 * 10));
        rank.barrier(ctx);
        t2.lock().push(ctx.now().as_micros_f64());
    });
    sim.run().unwrap();
    let times = times.lock();
    assert!(times.iter().all(|&t| t == 30.0), "{times:?}");
}

#[test]
fn hoststaged_allreduce_matches_ring_numerically() {
    for nodes in [1u16, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, nodes);
        world.run_ranks(&mut sim, move |ctx, rank| {
            let n = 257usize; // deliberately uneven across chunks
            let a = rank.gpu().alloc_global(n * 8);
            let b = rank.gpu().alloc_global(n * 8);
            let init: Vec<f64> =
                (0..n).map(|i| (rank.rank() as f64 + 1.0) * (i as f64 - 100.0)).collect();
            a.write_f64_slice(0, &init);
            b.write_f64_slice(0, &init);
            let stream = rank.gpu().create_stream();
            rank.allreduce_ring_f64(ctx, &a, 0, n, &stream);
            rank.allreduce_hoststaged_f64(ctx, &b, 0, n, &stream);
            let va = a.read_f64_slice(0, n);
            let vb = b.read_f64_slice(0, n);
            for i in 0..n {
                assert!(
                    (va[i] - vb[i]).abs() < 1e-9,
                    "nodes={nodes} elem {i}: ring {} vs staged {}",
                    va[i],
                    vb[i]
                );
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn hoststaged_allreduce_is_slower_than_gpudirect_ring() {
    // The whole point of the baseline: host staging + CPU reductions cost
    // far more than the CUDA-aware ring at large sizes.
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let n = 1 << 20; // 8 MB
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        rank.barrier(ctx);
        let t0 = ctx.now();
        rank.allreduce_ring_f64(ctx, &buf, 0, n, &stream);
        let ring = ctx.now().since(t0).as_micros_f64();
        rank.barrier(ctx);
        let t1 = ctx.now();
        rank.allreduce_hoststaged_f64(ctx, &buf, 0, n, &stream);
        let staged = ctx.now().since(t1).as_micros_f64();
        if rank.rank() == 0 {
            *o2.lock() = (ring, staged);
        }
    });
    sim.run().unwrap();
    let (ring, staged) = *out.lock();
    assert!(
        staged > ring * 1.5,
        "host-staged ({staged} µs) must be much slower than GPU-direct ring ({ring} µs)"
    );
}
