//! The per-rank MPI progression engine.
//!
//! The paper's design (§IV-A4, §IV-B3) leans on a host progress thread: it
//! notices device-side `MPIX_Pready` notifications in pinned host memory,
//! issues the corresponding `ucp_put_nbx` calls, and advances partitioned
//! collective schedules. Here it is a daemon simulation process per rank
//! that runs registered **hooks** every poll interval.
//!
//! Hooks run in the engine's process context, so they can charge host time
//! (e.g. the put-post cost) and block if ever needed. A hook returning
//! [`HookOutcome::Remove`] unregisters itself. The engine parks on an event
//! while no hooks are registered, so idle ranks cost no simulation events.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_sim::{Ctx, Event, SimDuration};

/// What a hook wants after an invocation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HookOutcome {
    /// Call me again on the next poll.
    Keep,
    /// Done; unregister.
    Remove,
}

type Hook = Box<dyn FnMut(&mut Ctx) -> HookOutcome + Send>;

struct PeState {
    hooks: Vec<Hook>,
    /// Set whenever a hook is registered while the engine is idle.
    work_available: Event,
}

/// Handle to a rank's progression engine.
#[derive(Clone)]
pub struct ProgressionEngine {
    inner: Arc<Mutex<PeState>>,
    poll: SimDuration,
}

impl ProgressionEngine {
    /// Spawn the engine daemon for `rank` with the given poll interval.
    pub(crate) fn start(ctx: &mut Ctx, rank: usize, poll: SimDuration) -> ProgressionEngine {
        let inner = Arc::new(Mutex::new(PeState {
            hooks: Vec::new(),
            work_available: Event::new(),
        }));
        let engine = ProgressionEngine { inner: inner.clone(), poll };
        ctx.spawn_daemon(format!("progress{rank}"), move |ctx| {
            loop {
                if ctx.is_shutdown() {
                    break;
                }
                // Park while idle.
                let wait_ev = {
                    let st = inner.lock();
                    if st.hooks.is_empty() {
                        Some(st.work_available.clone())
                    } else {
                        None
                    }
                };
                if let Some(ev) = wait_ev {
                    if !ctx.wait(&ev) {
                        break; // shutdown
                    }
                    let st = inner.lock();
                    if st.work_available.is_set() && st.hooks.is_empty() {
                        st.work_available.reset();
                        continue;
                    }
                    drop(st);
                    // The progress thread polls on a grid: a notification
                    // raised between ticks is observed up to one poll
                    // interval later (uniform phase).
                    let phase = ctx.with_rng(|r| r.uniform());
                    ctx.advance(SimDuration::from_micros_f64(
                        poll.as_micros_f64() * phase,
                    ));
                    if ctx.is_shutdown() {
                        break;
                    }
                }
                // Run every registered hook once. Hooks are temporarily
                // moved out so they can re-enter the engine (e.g. register
                // follow-up work) without deadlocking the lock.
                let mut hooks = std::mem::take(&mut inner.lock().hooks);
                let mut kept: Vec<Hook> = Vec::with_capacity(hooks.len());
                for mut hook in hooks.drain(..) {
                    if hook(ctx) == HookOutcome::Keep {
                        kept.push(hook);
                    }
                }
                {
                    let mut st = inner.lock();
                    // New hooks registered during the sweep go behind kept ones.
                    let newly = std::mem::take(&mut st.hooks);
                    kept.extend(newly);
                    st.hooks = kept;
                    if st.hooks.is_empty() && st.work_available.is_set() {
                        st.work_available.reset();
                    }
                }
                ctx.advance(poll);
            }
        });
        engine
    }

    /// Register a hook; the engine wakes if it was idle. Callable from both
    /// process context (pass `ctx.handle()`) and scheduled callbacks — the
    /// device-side `MPIX_Pready` notification path registers from the
    /// latter.
    pub fn register(
        &self,
        h: &parcomm_sim::SimHandle,
        hook: impl FnMut(&mut Ctx) -> HookOutcome + Send + 'static,
    ) {
        let ev = {
            let mut st = self.inner.lock();
            st.hooks.push(Box::new(hook));
            st.work_available.clone()
        };
        ev.set(h);
    }

    /// The engine's poll interval.
    pub fn poll_interval(&self) -> SimDuration {
        self.poll
    }

    /// Number of registered hooks (diagnostics/tests).
    pub fn hook_count(&self) -> usize {
        self.inner.lock().hooks.len()
    }
}
