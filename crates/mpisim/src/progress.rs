//! The per-rank MPI progression engine.
//!
//! The paper's design (§IV-A4, §IV-B3) leans on a host progress thread: it
//! notices device-side `MPIX_Pready` notifications in pinned host memory,
//! issues the corresponding `ucp_put_nbx` calls, and advances partitioned
//! collective schedules. Here it is a daemon simulation process per rank
//! that runs registered **hooks** every poll interval.
//!
//! Hooks run in the engine's process context, so they can charge host time
//! (e.g. the put-post cost) and block if ever needed. A hook returning
//! [`HookOutcome::Remove`] unregisters itself. The engine parks on an event
//! while no hooks are registered, so idle ranks cost no simulation events.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_sim::{Ctx, Event, SimDuration, SimTime};

/// What a hook wants after an invocation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HookOutcome {
    /// Call me again on the next poll.
    Keep,
    /// Done; unregister.
    Remove,
}

/// Fault schedule for one rank's progression engine.
///
/// A **stall** pauses the engine's poll loop for `stall_us` starting at
/// `stall_at_us` — hooks run late, puts post late, the run survives with
/// degraded timing. A **crash** (`crash_at_us`) permanently halts the loop:
/// registered hooks never run again, and the typed error surfaces through
/// the `MPI_Wait` watchdog ([`crate::MpiError::ProgressionHalted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PeFaultConfig {
    /// Virtual instant (µs) the stall begins.
    pub stall_at_us: f64,
    /// Stall duration (µs); 0 disables the stall.
    pub stall_us: f64,
    /// Virtual instant (µs) the engine crashes; `None` disables.
    pub crash_at_us: Option<f64>,
}

impl Default for PeFaultConfig {
    fn default() -> Self {
        PeFaultConfig { stall_at_us: 0.0, stall_us: 0.0, crash_at_us: None }
    }
}

type Hook = Box<dyn FnMut(&mut Ctx) -> HookOutcome + Send>;

struct PeState {
    hooks: Vec<Hook>,
    /// Set whenever a hook is registered while the engine is idle.
    work_available: Event,
}

/// Handle to a rank's progression engine.
#[derive(Clone)]
pub struct ProgressionEngine {
    inner: Arc<Mutex<PeState>>,
    poll: SimDuration,
    crashed: Arc<AtomicBool>,
    /// Virtual instant of the last hook sweep — the engine's heartbeat,
    /// renewed immediately before each sweep. Recovery's lease check reads
    /// this to distinguish a slow PE from a dead one without any wall clock.
    heartbeat: Arc<Mutex<SimTime>>,
}

impl ProgressionEngine {
    /// Spawn the engine daemon for `rank` with the given poll interval and
    /// optional fault schedule (`None` in every fault-free run).
    pub(crate) fn start(
        ctx: &mut Ctx,
        rank: usize,
        poll: SimDuration,
        fault: Option<PeFaultConfig>,
        instruments: Option<crate::world::MpiInstruments>,
    ) -> ProgressionEngine {
        let inner = Arc::new(Mutex::new(PeState {
            hooks: Vec::new(),
            work_available: Event::new(),
        }));
        let crashed = Arc::new(AtomicBool::new(false));
        let heartbeat = Arc::new(Mutex::new(SimTime::ZERO));
        let engine = ProgressionEngine {
            inner: inner.clone(),
            poll,
            crashed: crashed.clone(),
            heartbeat: heartbeat.clone(),
        };
        let mut stall_pending = fault.as_ref().is_some_and(|f| f.stall_us > 0.0);
        ctx.spawn_daemon(format!("progress{rank}"), move |ctx| {
            loop {
                if ctx.is_shutdown() {
                    break;
                }
                // Park while idle.
                let wait_ev = {
                    let st = inner.lock();
                    if st.hooks.is_empty() {
                        Some(st.work_available.clone())
                    } else {
                        None
                    }
                };
                if let Some(ev) = wait_ev {
                    if !ctx.wait(&ev) {
                        break; // shutdown
                    }
                    let st = inner.lock();
                    if st.work_available.is_set() && st.hooks.is_empty() {
                        st.work_available.reset();
                        continue;
                    }
                    drop(st);
                    // The progress thread polls on a grid: a notification
                    // raised between ticks is observed up to one poll
                    // interval later (uniform phase).
                    let phase = ctx.with_rng(|r| r.uniform());
                    ctx.advance(SimDuration::from_micros_f64(
                        poll.as_micros_f64() * phase,
                    ));
                    if ctx.is_shutdown() {
                        break;
                    }
                }
                if let Some(f) = &fault {
                    // Stall: checked immediately before each hook sweep so
                    // that work arriving mid-window (even while the engine
                    // was parked idle) is not serviced until the window
                    // closes — hooks run late, puts post late, the run
                    // survives with degraded timing.
                    let now_us = ctx.now().as_micros_f64();
                    if stall_pending && now_us >= f.stall_at_us {
                        stall_pending = false;
                        let end = f.stall_at_us + f.stall_us;
                        if end > now_us {
                            ctx.advance(SimDuration::from_micros_f64(end - now_us));
                            continue;
                        }
                    }
                    // Crash: halt the loop for good. Checked immediately
                    // before each sweep so no hook runs at or after the
                    // crash instant; waiters time out upstream with
                    // `MpiError::ProgressionHalted`.
                    if f.crash_at_us.is_some_and(|t| ctx.now().as_micros_f64() >= t) {
                        crashed.store(true, Ordering::Release);
                        break;
                    }
                }
                // Renew the lease immediately before the sweep: a live PE
                // always heartbeats before servicing hooks, so a stale
                // heartbeat with hooks pending means the loop is dead (or
                // stalled long enough that host takeover is safe anyway —
                // takeover is idempotent).
                *heartbeat.lock() = ctx.now();
                // Run every registered hook once. Hooks are temporarily
                // moved out so they can re-enter the engine (e.g. register
                // follow-up work) without deadlocking the lock.
                let mut hooks = std::mem::take(&mut inner.lock().hooks);
                if let Some(ins) = &instruments {
                    ins.pe_polls.inc();
                    ins.pe_hook_runs.add(hooks.len() as u64);
                }
                let mut kept: Vec<Hook> = Vec::with_capacity(hooks.len());
                for mut hook in hooks.drain(..) {
                    if hook(ctx) == HookOutcome::Keep {
                        kept.push(hook);
                    }
                }
                {
                    let mut st = inner.lock();
                    // New hooks registered during the sweep go behind kept ones.
                    let newly = std::mem::take(&mut st.hooks);
                    kept.extend(newly);
                    st.hooks = kept;
                    if st.hooks.is_empty() && st.work_available.is_set() {
                        st.work_available.reset();
                    }
                }
                ctx.advance(poll);
            }
        });
        engine
    }

    /// Register a hook; the engine wakes if it was idle. Callable from both
    /// process context (pass `ctx.handle()`) and scheduled callbacks — the
    /// device-side `MPIX_Pready` notification path registers from the
    /// latter.
    pub fn register(
        &self,
        h: &parcomm_sim::SimHandle,
        hook: impl FnMut(&mut Ctx) -> HookOutcome + Send + 'static,
    ) {
        let ev = {
            let mut st = self.inner.lock();
            st.hooks.push(Box::new(hook));
            st.work_available.clone()
        };
        ev.set(h);
    }

    /// The engine's poll interval.
    pub fn poll_interval(&self) -> SimDuration {
        self.poll
    }

    /// True once an injected crash has permanently halted the engine.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Virtual instant of the engine's last hook sweep (its heartbeat).
    pub fn last_heartbeat(&self) -> SimTime {
        *self.heartbeat.lock()
    }

    /// Lease check: true when the engine is provably dead (crashed) or has
    /// hooks registered yet has not swept them within `lease_us` of `now`.
    /// A parked-idle engine (no hooks) never expires — there is nothing to
    /// take over. False positives on a merely-stalled engine are safe: the
    /// host-drain takeover pops from the same queue the PE hook drains, so
    /// each notification is serviced exactly once.
    pub fn lease_expired(&self, now: SimTime, lease_us: f64) -> bool {
        if self.is_crashed() {
            return true;
        }
        if self.hook_count() == 0 {
            return false;
        }
        now.saturating_since(self.last_heartbeat()).as_micros_f64() > lease_us
    }

    /// Number of registered hooks (diagnostics/tests).
    pub fn hook_count(&self) -> usize {
        self.inner.lock().hooks.len()
    }
}
