//! # parcomm-mpi — the MPI core substrate
//!
//! A simulated MPI over the UCX layer: `MPI_COMM_WORLD` with one rank per
//! GPU, tag-matched point-to-point (the paper's `MPI_Send`/`MPI_Recv`
//! baseline), the traditional host-driven ring `MPI_Allreduce` baseline,
//! and the per-rank progression engine the Partitioned component (and the
//! partitioned collectives) hook into.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coll;
mod error;
mod mechanism;
mod p2p;
mod persistent;
mod progress;
mod world;

pub use coll::chunk_range;
pub use error::MpiError;
pub use mechanism::CopyMechanism;
pub use p2p::P2pOp;
pub use persistent::PersistentRequest;
pub use progress::{HookOutcome, PeFaultConfig, ProgressionEngine};
pub use world::{MpiInstruments, MpiWorld, Rank, RecoverConfig, WorldConfig};
