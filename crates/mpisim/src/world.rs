//! The MPI world: rank/topology bookkeeping and per-rank launch.
//!
//! An [`MpiWorld`] models `MPI_COMM_WORLD` over the simulated cluster with
//! one rank per GPU (the paper's deployment: ranks 0–3 on node 0, 4–7 on
//! node 1). Each rank is a simulation process; [`MpiWorld::run_ranks`]
//! spawns them all with a [`Rank`] handle providing the MPI surface.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::{CostModel, EmissionFaultConfig, Gpu, GpuId, Location, Unit};
use parcomm_net::{ClusterSpec, Fabric, NetFaultConfig, Topology};
use parcomm_obs::{Counter, Histogram, MetricsRegistry};
use parcomm_shmem::SymmetricHeap;
use parcomm_sim::{Ctx, SimBarrier, SimDuration, Simulation};
use parcomm_ucx::{UcxUniverse, Worker, WorkerAddress};

use crate::mechanism::CopyMechanism;
use crate::p2p::MatchTable;
use crate::progress::{PeFaultConfig, ProgressionEngine};

/// MPI-layer instruments, shared by every rank's progression engine and the
/// partitioned send/recv watchdogs. Cheap to clone; clones share counters.
#[derive(Clone, Debug)]
pub struct MpiInstruments {
    /// Progression-engine poll sweeps executed (all ranks).
    pub pe_polls: Counter,
    /// Individual hook invocations across all sweeps.
    pub pe_hook_runs: Counter,
    /// Blocking waits that armed a watchdog timer.
    pub watchdog_arms: Counter,
    /// Watchdog timers that fired (stall detected).
    pub watchdog_fires: Counter,
    /// log2-bucket latency (µs) from a partition's pready being processed
    /// (host `MPI_Pready` or progression-engine drain) to its receive-side
    /// flags landing — the pready → arrival boundary of the paper's
    /// pipeline.
    pub pready_arrival_us: Histogram,
    /// PE leases found expired (crash or missed heartbeat) by a recovering
    /// waiter.
    pub recover_lease_expired: Counter,
    /// Epoch replays issued by the recovery ladder (each may re-post many
    /// puts).
    pub recover_replays: Counter,
    /// Stale put completions (from a superseded replay generation, or a
    /// duplicate of an already-delivered transport partition) discarded by
    /// the generation gate.
    pub recover_stale_puts: Counter,
    /// Host-side takeovers of a dead progression engine's pending device
    /// notifications.
    pub recover_host_drains: Counter,
}

impl MpiInstruments {
    fn new(registry: &MetricsRegistry) -> Self {
        MpiInstruments {
            pe_polls: registry.counter("mpi.pe.polls"),
            pe_hook_runs: registry.counter("mpi.pe.hook_runs"),
            watchdog_arms: registry.counter("mpi.watchdog.arms"),
            watchdog_fires: registry.counter("mpi.watchdog.fires"),
            pready_arrival_us: registry.histogram("mpi.pready_arrival_us"),
            recover_lease_expired: registry.counter("mpi.recover.lease_expired"),
            recover_replays: registry.counter("mpi.recover.replays"),
            recover_stale_puts: registry.counter("mpi.recover.stale_puts"),
            recover_host_drains: registry.counter("mpi.recover.host_drains"),
        }
    }
}

/// Epoch-level recovery policy (the top rungs of the escalation ladder:
/// per-put retry → re-striping → Kernel-Copy fallback → **lease + replay +
/// host drain**). `None` in [`WorldConfig::recover`] disables every recovery
/// path — the default, bit-for-bit identical to the pre-recovery stack.
///
/// When enabled and no fault fires, recovery is digest-neutral: the only
/// extra machinery is cancellable timed-wait backstops (heap tombstones the
/// run loop skips) and atomic heartbeat/generation bookkeeping, none of
/// which schedules an observable event.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverConfig {
    /// Maximum epoch replays per blocking wait before the typed
    /// [`crate::MpiError::Unrecoverable`] surfaces.
    pub max_replays: u32,
    /// Stall window (µs) with zero progress before the recovery ladder
    /// escalates. Must comfortably exceed any legitimate single-step stall
    /// (and the per-put retry budget, so retries settle first).
    pub detect_us: f64,
    /// Progression-engine lease (µs): a PE with registered hooks that has
    /// not swept them within this window is treated as dead and its pending
    /// device notifications are drained from host context.
    pub lease_us: f64,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig { max_replays: 4, detect_us: 20_000.0, lease_us: 2_000.0 }
    }
}

/// World-level configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Cluster shape and link classes.
    pub cluster: ClusterSpec,
    /// GPU cost model (same on every device).
    pub cost: CostModel,
    /// Host software overhead charged per MPI send/recv call.
    pub mpi_overhead_us: f64,
    /// Progression-engine poll interval.
    pub progress_poll_us: f64,
    /// Watchdog timeout (µs) armed on every blocking MPI wait. `None`
    /// (the default) waits forever — zero extra events in fault-free runs.
    pub wait_watchdog_us: Option<f64>,
    /// Network fault schedule (drops / latency spikes / NIC outages).
    pub net_faults: Option<NetFaultConfig>,
    /// Per-rank progression-engine fault schedules.
    pub pe_faults: Vec<(usize, PeFaultConfig)>,
    /// Per-rank device flag-write (emission) fault schedules.
    pub gpu_flag_faults: Vec<(usize, EmissionFaultConfig)>,
    /// Stripe count for cross-node partitioned data puts issued by the
    /// collective engine's channels: each data put splits into up to this
    /// many stripes routed concurrently over the NIC rails. `1` (the
    /// default) is the classic single-path protocol, bit-for-bit.
    pub stripes: usize,
    /// Epoch-level recovery policy. `None` (the default) disables the
    /// lease/replay/host-drain ladder entirely — pre-recovery behavior,
    /// bit-for-bit.
    pub recover: Option<RecoverConfig>,
    /// Default copy mechanism for partitioned channels. Both channel
    /// endpoints resolve this identically at setup, so no extra handshake
    /// travels; a per-request `set_mechanism` override takes precedence.
    /// The default ([`CopyMechanism::ProgressionEngine`]) is the classic
    /// protocol, bit-for-bit.
    pub mechanism: CopyMechanism,
    /// Symmetric-heap segment size per rank (bytes). The heap is registered
    /// once at world construction; channels using
    /// [`CopyMechanism::Shmem`] bind their buffers into it and exchange
    /// offsets instead of rkeys.
    pub shmem_heap_bytes: u64,
    /// Per-rank shmem signal-emission fault schedules (delayed / lost
    /// device `shmem_signal`s), independent of `gpu_flag_faults`.
    pub shmem_faults: Vec<(usize, EmissionFaultConfig)>,
    /// Ranks whose symmetric-heap registration fails at world construction
    /// (fault hook): their channels fall back to the Progression Engine
    /// with a typed `ShmemError::RegistrationFailed`.
    pub shmem_heap_fail: Vec<usize>,
}

impl WorldConfig {
    /// The paper's GH200 testbed with `nodes` nodes.
    pub fn gh200(nodes: u16) -> Self {
        WorldConfig {
            cluster: ClusterSpec::gh200(nodes),
            cost: CostModel::default(),
            mpi_overhead_us: 0.5,
            progress_poll_us: 0.5,
            wait_watchdog_us: None,
            net_faults: None,
            pe_faults: Vec::new(),
            gpu_flag_faults: Vec::new(),
            stripes: 1,
            recover: None,
            mechanism: CopyMechanism::ProgressionEngine,
            shmem_heap_bytes: 1 << 22,
            shmem_faults: Vec::new(),
            shmem_heap_fail: Vec::new(),
        }
    }
}

struct WorldInner {
    config: WorldConfig,
    topology: Topology,
    fabric: Fabric,
    universe: UcxUniverse,
    /// The once-per-world symmetric heap (registered at construction;
    /// [`CopyMechanism::Shmem`] channels bind into it).
    shmem_heap: SymmetricHeap,
    matching: MatchTable,
    /// Worker address of each rank, filled as ranks start.
    addresses: Mutex<Vec<Option<WorkerAddress>>>,
    size: usize,
    start_barrier: SimBarrier,
    /// Set by [`MpiWorld::enable_metrics`]; `None` keeps every layer's
    /// instrumentation on its zero-cost `Option` fast path.
    metrics: Mutex<Option<(MetricsRegistry, MpiInstruments)>>,
}

/// The simulated `MPI_COMM_WORLD`. Cheap to clone.
#[derive(Clone)]
pub struct MpiWorld {
    inner: Arc<WorldInner>,
}

impl MpiWorld {
    /// Build a world over a fresh fabric; one rank per GPU. Panics on a
    /// malformed cluster spec; use [`MpiWorld::try_new`] for the typed
    /// error.
    pub fn new(sim: &Simulation, config: WorldConfig) -> Self {
        MpiWorld::try_new(sim, config).unwrap_or_else(|e| panic!("MPI world construction: {e}"))
    }

    /// Fallible form of [`MpiWorld::new`]: validates the cluster shape and
    /// returns [`crate::MpiError::InvalidTopology`] instead of panicking on
    /// a degenerate spec (zero nodes, zero GPUs, more NICs than GPUs, …).
    pub fn try_new(sim: &Simulation, config: WorldConfig) -> Result<Self, crate::MpiError> {
        let fabric = Fabric::try_new(sim.handle(), config.cluster.clone())
            .map_err(crate::MpiError::InvalidTopology)?;
        let topology = fabric.topology();
        if let Some(nf) = &config.net_faults {
            fabric.arm_faults(nf.clone());
        }
        let universe = UcxUniverse::new(fabric.clone());
        let size = topology.num_ranks();
        // The symmetric heap registers once here — per-rank base offsets
        // are deterministic from this point and no rkey ever travels for
        // buffers bound into it.
        let shmem_heap =
            SymmetricHeap::new(size, config.shmem_heap_bytes, &config.shmem_heap_fail);
        Ok(MpiWorld {
            inner: Arc::new(WorldInner {
                config,
                topology,
                fabric,
                universe,
                shmem_heap,
                matching: MatchTable::new(),
                addresses: Mutex::new(vec![None; size]),
                size,
                start_barrier: SimBarrier::new(size),
                metrics: Mutex::new(None),
            }),
        })
    }

    /// Create a [`MetricsRegistry`] and attach every layer's instruments to
    /// it: fabric transfer/rail counters, UCX put/AM counters, and the
    /// MPI-layer PE/watchdog counters. Call before [`MpiWorld::run_ranks`]
    /// so per-rank GPUs attach as they initialize. Idempotent; returns the
    /// (possibly pre-existing) registry.
    pub fn enable_metrics(&self) -> MetricsRegistry {
        let mut slot = self.inner.metrics.lock();
        if let Some((reg, _)) = slot.as_ref() {
            return reg.clone();
        }
        let registry = MetricsRegistry::new();
        self.inner.fabric.attach_metrics(&registry);
        self.inner.universe.attach_metrics(&registry);
        self.inner.shmem_heap.attach_metrics(&registry);
        let instruments = MpiInstruments::new(&registry);
        *slot = Some((registry.clone(), instruments));
        registry
    }

    /// The registry created by [`MpiWorld::enable_metrics`], if any.
    pub fn metrics_registry(&self) -> Option<MetricsRegistry> {
        self.inner.metrics.lock().as_ref().map(|(r, _)| r.clone())
    }

    /// The MPI-layer instruments, if metrics are enabled.
    pub fn instruments(&self) -> Option<MpiInstruments> {
        self.inner.metrics.lock().as_ref().map(|(_, i)| i.clone())
    }

    /// GH200 world with `nodes` nodes.
    pub fn gh200(sim: &Simulation, nodes: u16) -> Self {
        MpiWorld::new(sim, WorldConfig::gh200(nodes))
    }

    /// Number of ranks (== number of GPUs).
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.inner.config
    }

    /// The cluster fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The UCX universe (shared by the Partitioned component).
    pub fn universe(&self) -> &UcxUniverse {
        &self.inner.universe
    }

    /// The world's symmetric heap (registered once at construction).
    pub fn shmem_heap(&self) -> &SymmetricHeap {
        &self.inner.shmem_heap
    }

    /// The validated cluster topology (rank ↔ GPU mapping, locality
    /// queries, NIC rails).
    pub fn topology(&self) -> Topology {
        self.inner.topology.clone()
    }

    /// The GPU identity rank `r` drives.
    pub fn gpu_of(&self, r: usize) -> GpuId {
        self.inner.topology.gpu_of(r)
    }

    /// The node rank `r` runs on.
    pub fn node_of(&self, r: usize) -> u16 {
        self.inner.topology.node_of(r)
    }

    pub(crate) fn matching(&self) -> &MatchTable {
        &self.inner.matching
    }

    pub(crate) fn worker_address_of(&self, r: usize) -> WorkerAddress {
        self.inner.addresses.lock()[r].expect("rank not initialized yet")
    }

    /// Spawn one simulation process per rank running `body`. All ranks pass
    /// an internal start barrier after initializing (MPI_Init semantics:
    /// no rank proceeds until every worker address is published).
    pub fn run_ranks<F>(&self, sim: &mut Simulation, body: F)
    where
        F: Fn(&mut Ctx, &mut Rank) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        for r in 0..self.inner.size {
            let world = self.clone();
            let body = body.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                let mut rank = Rank::init(ctx, world, r);
                body(ctx, &mut rank);
            });
        }
    }
}

impl std::fmt::Debug for MpiWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiWorld").field("size", &self.inner.size).finish()
    }
}

/// The per-rank MPI handle: identity, device, worker, and the progression
/// engine. The MPI surface (send/recv, allreduce, barrier) hangs off this.
pub struct Rank {
    world: MpiWorld,
    rank: usize,
    gpu: Gpu,
    worker: Worker,
    progression: ProgressionEngine,
}

impl Rank {
    fn init(ctx: &mut Ctx, world: MpiWorld, rank: usize) -> Rank {
        let gpu_id = world.gpu_of(rank);
        let gpu = Gpu::new(gpu_id, world.inner.config.cost.clone(), ctx.handle());
        gpu.set_rank(rank as u32);
        if let Some(reg) = world.metrics_registry() {
            gpu.attach_metrics(&reg);
        }
        if let Some((_, ef)) = world
            .inner
            .config
            .gpu_flag_faults
            .iter()
            .find(|(r, _)| *r == rank)
        {
            gpu.arm_emission_faults(ef.clone());
        }
        if let Some((_, ef)) = world
            .inner
            .config
            .shmem_faults
            .iter()
            .find(|(r, _)| *r == rank)
        {
            gpu.arm_shmem_signal_faults(ef.clone());
        }
        let worker = world
            .inner
            .universe
            .create_worker(Location { node: gpu_id.node, unit: Unit::Cpu });
        world.inner.addresses.lock()[rank] = Some(worker.address());
        let pe_fault = world
            .inner
            .config
            .pe_faults
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, f)| f.clone());
        let progression = ProgressionEngine::start(
            ctx,
            rank,
            SimDuration::from_micros_f64(world.inner.config.progress_poll_us),
            pe_fault,
            world.instruments(),
        );
        // MPI_Init barrier: every rank's worker address is published before
        // anyone communicates.
        world.inner.start_barrier.wait(ctx);
        Rank { world, rank, gpu, worker, progression }
    }

    /// This rank's index in the world.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// The world this rank belongs to.
    pub fn world(&self) -> &MpiWorld {
        &self.world
    }

    /// The cluster topology of this rank's world.
    pub fn topology(&self) -> Topology {
        self.world.topology()
    }

    /// The GPU this rank drives.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// This rank's UCP worker.
    pub fn worker(&self) -> &Worker {
        &self.worker
    }

    /// This rank's progression engine.
    pub fn progression(&self) -> &ProgressionEngine {
        &self.progression
    }

    /// Worker address of a peer rank (available after MPI_Init).
    pub fn peer_address(&self, r: usize) -> WorkerAddress {
        self.world.worker_address_of(r)
    }

    /// Host software overhead per MPI call.
    pub fn mpi_overhead(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.world.inner.config.mpi_overhead_us)
    }

    /// The epoch-recovery policy, if enabled. Blocking partitioned waits use
    /// this to escalate a stalled epoch through lease check → replay → host
    /// drain instead of timing out fatally.
    pub fn recover_config(&self) -> Option<RecoverConfig> {
        self.world.inner.config.recover.clone()
    }

    /// The armed wait-watchdog timeout, if any. Blocking MPI waits use this
    /// to turn a stalled completion counter into a typed [`crate::MpiError`]
    /// instead of deadlocking the simulation.
    pub fn wait_watchdog(&self) -> Option<SimDuration> {
        self.world
            .inner
            .config
            .wait_watchdog_us
            .map(SimDuration::from_micros_f64)
    }

    /// Synchronize all ranks (zero-cost alignment barrier used by the
    /// benchmark harnesses; real MPI_Barrier latency is not modeled because
    /// no measured region in the paper contains one).
    pub fn barrier(&self, ctx: &mut Ctx) {
        self.world.inner.start_barrier.wait(ctx);
    }
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank").field("rank", &self.rank).field("gpu", &self.gpu.id()).finish()
    }
}
