//! Typed MPI-layer errors.
//!
//! The shared error surface of the partitioned runtime: `core` (point-to-
//! point partitioned requests), `collectives` (the Algorithm-2 engine), and
//! the applications all report failures through [`MpiError`] instead of
//! panicking or deadlocking. Watchdog variants carry the offending rank /
//! partition / step so a chaos-test failure is diagnosable from the error
//! alone.

use parcomm_net::TopologyError;
use parcomm_shmem::ShmemError;
use parcomm_ucx::UcxError;

/// Typed failure of an MPI-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiError {
    /// `MPI_Wait` (or a partitioned arrival wait) exceeded the armed
    /// watchdog timeout: the operation's completion counter stalled.
    WaitTimeout {
        /// The waiting rank.
        rank: usize,
        /// What was being waited on (e.g. `"psend transport completion"`).
        context: String,
        /// Units (partitions/transports) that had completed at expiry.
        completed: u64,
        /// Units required for completion.
        expected: u64,
        /// The armed watchdog timeout (µs).
        timeout_us: f64,
    },
    /// The Algorithm-2 collective progression loop exceeded the watchdog
    /// while a partition was parked at a step.
    CollectiveTimeout {
        /// The stuck rank.
        rank: usize,
        /// Partition whose state machine stopped advancing.
        partition: usize,
        /// Step index the partition was parked at.
        step: usize,
        /// Partitions that had fully completed at expiry.
        completed: u64,
        /// Total partitions in the collective.
        expected: u64,
        /// The armed watchdog timeout (µs).
        timeout_us: f64,
    },
    /// The local progression engine crashed (fault injection) — device
    /// notifications can no longer be drained into puts.
    ProgressionHalted {
        /// The rank whose engine died.
        rank: usize,
    },
    /// A user-supplied argument violates the API contract (e.g. partition
    /// count not dividing the buffer).
    InvalidArgument {
        /// What was wrong.
        context: String,
    },
    /// The cluster spec handed to world construction is structurally
    /// invalid (zero nodes, zero GPUs per node, more NICs than GPUs, …).
    InvalidTopology(TopologyError),
    /// A transport-layer (UCX) failure bubbled up.
    Transport(UcxError),
    /// A symmetric-heap (shmem backend) failure bubbled up: route forbids
    /// symmetric access, heap exhausted/unregistered, or a device put
    /// exhausted its retry budget.
    Shmem(ShmemError),
    /// The recovery escalation ladder was exhausted: every rung (put retry,
    /// re-striping, fallback, lease-gated replay, host drain, quarantine
    /// repair) ran out or does not apply. Surfaced only when recovery is
    /// enabled and repair is impossible.
    Unrecoverable {
        /// The rank that gave up.
        rank: usize,
        /// What could not be recovered (operation + last diagnosis).
        context: String,
        /// Recovery attempts (replays/drains) spent before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::WaitTimeout { rank, context, completed, expected, timeout_us } => write!(
                f,
                "rank {rank}: wait on {context} timed out after {timeout_us}us \
                 ({completed}/{expected} complete)"
            ),
            MpiError::CollectiveTimeout {
                rank,
                partition,
                step,
                completed,
                expected,
                timeout_us,
            } => write!(
                f,
                "rank {rank}: collective stalled at partition {partition} step {step} \
                 for {timeout_us}us ({completed}/{expected} partitions complete)"
            ),
            MpiError::ProgressionHalted { rank } => {
                write!(f, "rank {rank}: progression engine halted")
            }
            MpiError::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
            MpiError::InvalidTopology(e) => write!(f, "invalid topology: {e}"),
            MpiError::Transport(e) => write!(f, "transport error: {e}"),
            MpiError::Shmem(e) => write!(f, "shmem error: {e}"),
            MpiError::Unrecoverable { rank, context, attempts } => write!(
                f,
                "rank {rank}: unrecoverable after {attempts} recovery attempts: {context}"
            ),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<UcxError> for MpiError {
    fn from(e: UcxError) -> Self {
        MpiError::Transport(e)
    }
}

impl From<ShmemError> for MpiError {
    fn from(e: ShmemError) -> Self {
        MpiError::Shmem(e)
    }
}
