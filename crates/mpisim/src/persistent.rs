//! Persistent point-to-point (`MPI_Send_init` / `MPI_Recv_init`): the
//! pre-partitioned way to amortize per-message setup, and the baseline the
//! partitioned literature measures against (paper §VII-A, Dosanjh et al.).
//!
//! A persistent request binds (peer, tag, buffer) once; each epoch is
//! `start → wait`. Unlike partitioned channels there is no intra-message
//! granularity: the whole buffer moves as one message when started, and
//! there is no device binding — the host must have synchronized the GPU
//! before starting the send.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_gpu::Buffer;
use parcomm_sim::{Ctx, Event};

use crate::p2p::P2pOp;
use crate::world::Rank;

/// Direction of a persistent request.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Dir {
    Send,
    Recv,
}

struct PersistentInner {
    dir: Dir,
    peer: usize,
    tag: u64,
    buf: Buffer,
    off: usize,
    len: usize,
    active: Mutex<Option<Event>>,
}

/// A persistent point-to-point request (`MPI_Send_init`/`MPI_Recv_init`).
#[derive(Clone)]
pub struct PersistentRequest {
    inner: Arc<PersistentInner>,
}

impl Rank {
    /// `MPI_Send_init`: bind a persistent send of `len` bytes at
    /// `buf[off..]` to `dest`.
    pub fn send_init(&self, dest: usize, tag: u64, buf: &Buffer, off: usize, len: usize) -> PersistentRequest {
        assert!(dest < self.size(), "send_init: destination out of range");
        PersistentRequest {
            inner: Arc::new(PersistentInner {
                dir: Dir::Send,
                peer: dest,
                tag,
                buf: buf.clone(),
                off,
                len,
                active: Mutex::new(None),
            }),
        }
    }

    /// `MPI_Recv_init`: bind a persistent receive.
    pub fn recv_init(&self, src: usize, tag: u64, buf: &Buffer, off: usize, len: usize) -> PersistentRequest {
        assert!(src < self.size(), "recv_init: source out of range");
        PersistentRequest {
            inner: Arc::new(PersistentInner {
                dir: Dir::Recv,
                peer: src,
                tag,
                buf: buf.clone(),
                off,
                len,
                active: Mutex::new(None),
            }),
        }
    }

    /// `MPI_Start` on a persistent request: post the bound operation.
    pub fn start_persistent(&self, ctx: &mut Ctx, req: &PersistentRequest) {
        let inner = &req.inner;
        {
            let active = inner.active.lock();
            assert!(active.is_none(), "MPI_Start on an already-active persistent request");
        }
        ctx.advance(self.mpi_overhead());
        let h = ctx.handle();
        let op: P2pOp = match inner.dir {
            Dir::Send => self.isend(&h, inner.peer, inner.tag, &inner.buf, inner.off, inner.len),
            Dir::Recv => self.irecv(&h, inner.peer, inner.tag, &inner.buf, inner.off, inner.len),
        };
        *inner.active.lock() = Some(op.done);
    }

    /// `MPI_Wait` on a persistent request: block until the posted
    /// operation completes, re-arming the request for the next epoch.
    pub fn wait_persistent(&self, ctx: &mut Ctx, req: &PersistentRequest) {
        let done = {
            let mut active = req.inner.active.lock();
            active.take().expect("MPI_Wait on an inactive persistent request")
        };
        ctx.wait(&done);
    }

    /// `MPI_Test` on a persistent request (non-consuming).
    pub fn test_persistent(&self, req: &PersistentRequest) -> bool {
        req.inner.active.lock().as_ref().map(|e| e.is_set()).unwrap_or(false)
    }
}

impl std::fmt::Debug for PersistentRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentRequest")
            .field("dir", &self.inner.dir)
            .field("peer", &self.inner.peer)
            .field("tag", &self.inner.tag)
            .field("len", &self.inner.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    // Integration coverage lives in tests/persistent.rs; unit tests here
    // cover pure bookkeeping.
    use super::*;

    #[test]
    fn debug_format_mentions_peer() {
        // Construct without a world: only the Debug impl is exercised.
        let inner = PersistentInner {
            dir: Dir::Send,
            peer: 3,
            tag: 9,
            buf: Buffer::alloc(parcomm_gpu::MemSpace::Host { node: 0 }, 8),
            off: 0,
            len: 8,
            active: Mutex::new(None),
        };
        let req = PersistentRequest { inner: Arc::new(inner) };
        let s = format!("{req:?}");
        assert!(s.contains("peer: 3") && s.contains("tag: 9"));
    }
}
