//! Tag-matched point-to-point: the `MPI_Send`/`MPI_Recv` baseline.
//!
//! Matching is on `(src, dst, tag)` with FIFO order per key (MPI
//! non-overtaking). Transfers are rendezvous-style: data moves once both
//! sides have posted, routed by the *buffer* locations (CUDA-aware MPI:
//! device payload takes NVLink/GPUDirect paths even though the host posts
//! the operation). The sender completes at delivery (synchronous-mode
//! semantics) — the right model for the paper's baseline, which
//! stream-synchronizes before sending and measures until delivery.

use std::collections::{HashMap, VecDeque};

use parcomm_sim::Mutex;

use parcomm_gpu::Buffer;
use parcomm_sim::{Ctx, Event, SimHandle};

use crate::world::Rank;

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct MatchKey {
    src: usize,
    dst: usize,
    tag: u64,
}

struct SendEntry {
    buf: Buffer,
    off: usize,
    len: usize,
    done: Event,
}

struct RecvEntry {
    buf: Buffer,
    off: usize,
    len: usize,
    done: Event,
}

#[derive(Default)]
struct Queues {
    sends: VecDeque<SendEntry>,
    recvs: VecDeque<RecvEntry>,
}

/// World-global matching state.
pub(crate) struct MatchTable {
    table: Mutex<HashMap<MatchKey, Queues>>,
}

impl MatchTable {
    pub(crate) fn new() -> Self {
        MatchTable { table: Mutex::new(HashMap::new()) }
    }
}

/// Handle to a pending nonblocking operation.
#[derive(Clone, Debug)]
pub struct P2pOp {
    /// Fires at completion (delivery for both sides).
    pub done: Event,
}

/// Messages larger than this use the rendezvous protocol: an RTS/CTS
/// handshake (one round trip) precedes the payload, as UCX does for
/// device-memory transfers that need registration/GPUDirect setup.
const EAGER_THRESHOLD: usize = 4096;

/// Start the matched transfer: data plane + completion events.
fn fire_transfer(
    h: &SimHandle,
    fabric: &parcomm_net::Fabric,
    send: SendEntry,
    recv: RecvEntry,
) {
    assert_eq!(
        send.len, recv.len,
        "MPI message truncation: send {} bytes, recv {} bytes",
        send.len, recv.len
    );
    let src_loc = send.buf.space().location();
    let dst_loc = recv.buf.space().location();
    let handshake = if send.len > EAGER_THRESHOLD {
        // RTS + CTS: one control round trip at path latency.
        fabric.path_latency(src_loc, dst_loc) * 2
    } else {
        parcomm_sim::SimDuration::ZERO
    };
    let t = fabric.transfer_at(h.now() + handshake, src_loc, dst_loc, send.len as u64);
    let (sbuf, rbuf) = (send.buf, recv.buf);
    let (soff, roff, len) = (send.off, recv.off, send.len);
    let (sdone, rdone) = (send.done, recv.done);
    h.schedule_at(t.arrival, move |h| {
        rbuf.copy_from_buffer(roff, &sbuf, soff, len);
        sdone.set(h);
        rdone.set(h);
    });
}

impl Rank {
    /// Nonblocking send of `len` bytes from `buf[off..]` to `dest`.
    pub fn isend(&self, h: &SimHandle, dest: usize, tag: u64, buf: &Buffer, off: usize, len: usize) -> P2pOp {
        assert!(dest < self.size(), "isend: destination rank {dest} out of range");
        let key = MatchKey { src: self.rank(), dst: dest, tag };
        let done = Event::new();
        let entry = SendEntry { buf: buf.clone(), off, len, done: done.clone() };
        let matched = {
            let mut table = self.world().matching().table.lock();
            let q = table.entry(key).or_default();
            match q.recvs.pop_front() {
                Some(r) => Some(r),
                None => {
                    q.sends.push_back(entry);
                    None
                }
            }
        };
        if let Some(recv) = matched {
            fire_transfer(h, self.world().fabric(), entry_from(done.clone(), buf, off, len), recv);
        }
        P2pOp { done }
    }

    /// Nonblocking receive of `len` bytes into `buf[off..]` from `src`.
    pub fn irecv(&self, h: &SimHandle, src: usize, tag: u64, buf: &Buffer, off: usize, len: usize) -> P2pOp {
        assert!(src < self.size(), "irecv: source rank {src} out of range");
        let key = MatchKey { src, dst: self.rank(), tag };
        let done = Event::new();
        let entry = RecvEntry { buf: buf.clone(), off, len, done: done.clone() };
        let matched = {
            let mut table = self.world().matching().table.lock();
            let q = table.entry(key).or_default();
            match q.sends.pop_front() {
                Some(s) => Some(s),
                None => {
                    q.recvs.push_back(entry);
                    None
                }
            }
        };
        if let Some(send) = matched {
            fire_transfer(
                h,
                self.world().fabric(),
                send,
                RecvEntry { buf: buf.clone(), off, len, done: done.clone() },
            );
        }
        P2pOp { done }
    }

    /// Blocking send (charges the MPI software overhead, then waits for
    /// delivery — synchronous-mode semantics, see module docs).
    pub fn send(&self, ctx: &mut Ctx, dest: usize, tag: u64, buf: &Buffer, off: usize, len: usize) {
        ctx.advance(self.mpi_overhead());
        let op = self.isend(&ctx.handle(), dest, tag, buf, off, len);
        ctx.wait(&op.done);
    }

    /// Blocking receive.
    pub fn recv(&self, ctx: &mut Ctx, src: usize, tag: u64, buf: &Buffer, off: usize, len: usize) {
        ctx.advance(self.mpi_overhead());
        let op = self.irecv(&ctx.handle(), src, tag, buf, off, len);
        ctx.wait(&op.done);
    }

    /// Combined send+recv (deadlock-free neighbor exchange).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        ctx: &mut Ctx,
        dest: usize,
        stag: u64,
        sbuf: &Buffer,
        soff: usize,
        slen: usize,
        src: usize,
        rtag: u64,
        rbuf: &Buffer,
        roff: usize,
        rlen: usize,
    ) {
        ctx.advance(self.mpi_overhead());
        let h = ctx.handle();
        let s = self.isend(&h, dest, stag, sbuf, soff, slen);
        let r = self.irecv(&h, src, rtag, rbuf, roff, rlen);
        ctx.wait(&s.done);
        ctx.wait(&r.done);
    }
}

/// Rebuild a send entry (ownership dance: the original went into the match
/// decision; completion event and buffer are shared handles).
fn entry_from(done: Event, buf: &Buffer, off: usize, len: usize) -> SendEntry {
    SendEntry { buf: buf.clone(), off, len, done }
}
