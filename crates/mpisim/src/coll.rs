//! Traditional (host-driven) collectives: the `MPI_Allreduce` baseline.
//!
//! This is the model the paper compares against in Figs. 6/7/10/11: a ring
//! reduce-scatter + allgather where every reduce-scatter step launches a GPU
//! reduction kernel and pays a full `cudaStreamSynchronize` before the next
//! communication step — the synchronization cost the partitioned collective
//! eliminates from application code.

use parcomm_gpu::{Buffer, KernelSpec, MemSpace, Stream};
use parcomm_sim::{Ctx, SimDuration};

use crate::world::Rank;

/// Tag used by the traditional allreduce ring (FIFO matching keeps
/// iterations ordered per rank pair).
const ALLREDUCE_TAG: u64 = 0xA11D;

/// Element range `[start, start+len)` of chunk `i` when `n` elements are
/// split into `parts` contiguous chunks as evenly as possible.
pub fn chunk_range(n: usize, parts: usize, i: usize) -> (usize, usize) {
    assert!(i < parts);
    let base = n / parts;
    let rem = n % parts;
    let len = base + usize::from(i < rem);
    let start = i * base + i.min(rem);
    (start, len)
}

impl Rank {
    /// In-place sum-allreduce over `n` `f64` elements of a device buffer,
    /// using the host-driven ring reduce-scatter/allgather algorithm.
    ///
    /// Each of the `P-1` reduce-scatter steps does: neighbor `sendrecv`,
    /// then a device reduction kernel followed by `cudaStreamSynchronize`
    /// (numerical correctness requires the reduction to finish before the
    /// chunk is forwarded). The `P-1` allgather steps are pure `sendrecv`.
    pub fn allreduce_ring_f64(
        &self,
        ctx: &mut Ctx,
        buf: &Buffer,
        byte_off: usize,
        n: usize,
        stream: &Stream,
    ) {
        let p = self.size();
        if p == 1 || n == 0 {
            return;
        }
        let r = self.rank();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;

        let (_, max_chunk) = chunk_range(n, p, 0);
        let scratch = self.gpu().alloc_global(max_chunk * 8);

        // Reduce-scatter: after step s, chunk (r - s - 1) mod p holds the
        // partial sum of s+2 ranks' contributions.
        for s in 0..p - 1 {
            let send_chunk = (r + p - s) % p;
            let recv_chunk = (r + 2 * p - s - 1) % p;
            let (s_start, s_len) = chunk_range(n, p, send_chunk);
            let (r_start, r_len) = chunk_range(n, p, recv_chunk);
            self.sendrecv(
                ctx,
                right,
                ALLREDUCE_TAG,
                buf,
                byte_off + s_start * 8,
                s_len * 8,
                left,
                ALLREDUCE_TAG,
                &scratch,
                0,
                r_len * 8,
            );
            // Device reduction of the received chunk, then the mandatory
            // stream synchronize before the next ring step.
            let buf2 = buf.clone();
            let scratch2 = scratch.clone();
            let dst_off = byte_off + r_start * 8;
            let spec = KernelSpec::new("allreduce_reduce", (r_len as u32).div_ceil(1024).max(1), 1024)
                .with_memory_traffic(16, 8)
                .with_flops(1.0);
            stream.launch(ctx, spec, move |_d| {
                buf2.accumulate_f64(dst_off, &scratch2, 0, r_len);
            });
            stream.synchronize(ctx);
        }

        // Allgather: circulate the fully reduced chunks.
        for s in 0..p - 1 {
            let send_chunk = (r + p + 1 - s) % p;
            let recv_chunk = (r + p - s) % p;
            let (s_start, s_len) = chunk_range(n, p, send_chunk);
            let (r_start, r_len) = chunk_range(n, p, recv_chunk);
            self.sendrecv(
                ctx,
                right,
                ALLREDUCE_TAG,
                buf,
                byte_off + s_start * 8,
                s_len * 8,
                left,
                ALLREDUCE_TAG,
                buf,
                byte_off + r_start * 8,
                r_len * 8,
            );
        }
    }
}

impl Rank {
    /// The production `MPI_Allreduce` baseline the paper measures against
    /// (Open MPI v5.0.1rc1 on device buffers): the reduction `MPI_Op` runs
    /// on the *CPU*, so the library stages the payload device→host, runs a
    /// host ring reduce-scatter/allgather with CPU reductions, and copies
    /// the result back — each staging copy paying a stream synchronize.
    /// This host-staged path is what makes the traditional collective
    /// "multiple orders of magnitude" slower than the partitioned one in
    /// the paper's Figs. 6/7 (see EXPERIMENTS.md).
    pub fn allreduce_hoststaged_f64(
        &self,
        ctx: &mut Ctx,
        buf: &Buffer,
        byte_off: usize,
        n: usize,
        stream: &Stream,
    ) {
        let p = self.size();
        if p == 1 || n == 0 {
            return;
        }
        let node = self.gpu().id().node;
        let host = Buffer::alloc(MemSpace::Host { node }, n * 8);
        let c2c_gbps = 450.0;
        // CPU-side single-threaded reduce throughput (sum of two streams).
        let cpu_reduce_gbps = 8.0;

        // Stage the whole device buffer to the host.
        let d2h = SimDuration::from_micros_f64(n as f64 * 8.0 / (c2c_gbps * 1e3));
        let op = stream.enqueue_busy(&ctx.handle(), "d2h", d2h);
        ctx.wait(&op.done);
        stream.synchronize(ctx);
        host.copy_from_buffer(0, buf, byte_off, n * 8);

        // Host ring reduce-scatter + allgather with CPU reductions.
        let r = self.rank();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        let (_, max_chunk) = chunk_range(n, p, 0);
        let scratch = Buffer::alloc(MemSpace::Host { node }, max_chunk * 8);
        for s in 0..p - 1 {
            let send_chunk = (r + p - s) % p;
            let recv_chunk = (r + 2 * p - s - 1) % p;
            let (s_start, s_len) = chunk_range(n, p, send_chunk);
            let (r_start, r_len) = chunk_range(n, p, recv_chunk);
            self.sendrecv(
                ctx, right, ALLREDUCE_TAG, &host, s_start * 8, s_len * 8,
                left, ALLREDUCE_TAG, &scratch, 0, r_len * 8,
            );
            host.accumulate_f64(r_start * 8, &scratch, 0, r_len);
            ctx.advance(SimDuration::from_micros_f64(
                r_len as f64 * 8.0 / (cpu_reduce_gbps * 1e3),
            ));
        }
        for s in 0..p - 1 {
            let send_chunk = (r + p + 1 - s) % p;
            let recv_chunk = (r + p - s) % p;
            let (s_start, s_len) = chunk_range(n, p, send_chunk);
            let (r_start, r_len) = chunk_range(n, p, recv_chunk);
            self.sendrecv(
                ctx, right, ALLREDUCE_TAG, &host, s_start * 8, s_len * 8,
                left, ALLREDUCE_TAG, &host, r_start * 8, r_len * 8,
            );
        }

        // Unstage back to the device.
        buf.copy_from_buffer(byte_off, &host, 0, n * 8);
        let h2d = SimDuration::from_micros_f64(n as f64 * 8.0 / (c2c_gbps * 1e3));
        let op = stream.enqueue_busy(&ctx.handle(), "h2d", h2d);
        ctx.wait(&op.done);
        stream.synchronize(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::chunk_range;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 16, 33] {
            for p in [1usize, 2, 3, 4, 8] {
                let mut total = 0;
                let mut next = 0;
                for i in 0..p {
                    let (start, len) = chunk_range(n, p, i);
                    assert_eq!(start, next, "n={n} p={p} i={i}");
                    next = start + len;
                    total += len;
                }
                assert_eq!(total, n, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let lens: Vec<usize> = (0..4).map(|i| chunk_range(10, 4, i).1).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }
}
