//! The copy-mechanism selector shared by every partitioned layer.
//!
//! Lives in the MPI core (rather than `parcomm-core`) so the world
//! configuration can carry a default mechanism and both channel endpoints
//! can resolve the same negotiation without a dependency cycle.

/// How the payload moves when partitions are marked ready.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CopyMechanism {
    /// Device threads raise flags in pinned host memory; the host
    /// progression engine issues the RMA puts (MPI-ACX style).
    ProgressionEngine,
    /// The kernel stores payload directly into the peer GPU's memory over
    /// NVLink via the `ucp_rkey_ptr` IPC mapping; only the completion
    /// signal goes through the host. Intra-node only.
    KernelCopy,
    /// Symmetric-heap one-sided: both endpoints bind their buffers into
    /// the world's symmetric heap at channel setup, so the device
    /// translates `(rank, offset)` locally and emits `shmem_put` +
    /// `shmem_signal` straight onto the fabric — no host progression-engine
    /// hop and **no rkey exchange, ever**. Intra-node (NVLink-class routes)
    /// only; forbidden routes fall back to the Progression Engine with a
    /// typed `ShmemError`.
    Shmem,
}

impl CopyMechanism {
    /// Stable short name (CLI flags, bench output).
    pub fn short_name(self) -> &'static str {
        match self {
            CopyMechanism::ProgressionEngine => "pe",
            CopyMechanism::KernelCopy => "kc",
            CopyMechanism::Shmem => "shmem",
        }
    }

    /// Parse the short name used by `--mechanism pe|kc|shmem` flags.
    pub fn from_short_name(s: &str) -> Option<CopyMechanism> {
        match s {
            "pe" => Some(CopyMechanism::ProgressionEngine),
            "kc" => Some(CopyMechanism::KernelCopy),
            "shmem" => Some(CopyMechanism::Shmem),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_round_trip() {
        for m in [
            CopyMechanism::ProgressionEngine,
            CopyMechanism::KernelCopy,
            CopyMechanism::Shmem,
        ] {
            assert_eq!(CopyMechanism::from_short_name(m.short_name()), Some(m));
        }
        assert_eq!(CopyMechanism::from_short_name("bogus"), None);
    }
}
