//! # parcomm-recover — self-healing partitioned epochs
//!
//! The recovery escalation ladder for partitioned communication, bottom
//! rung to top:
//!
//! 1. **Put retry** (`ucxsim`) — transient wire failures retried with
//!    doubling backoff, invisible above UCX;
//! 2. **Re-striping** (`netsim` routing) — a dark NIC's stripes re-spread
//!    over the surviving rails;
//! 3. **Kernel-Copy → PE fallback** (`core`) — a revoked IPC mapping
//!    demotes device puts to Progression-Engine posts per `MPIX_Pready`;
//! 4. **Lease takeover** (`mpisim` + `core`) — a progression engine that
//!    stops heartbeating past its lease is declared dead from *sim time*
//!    (never the wall clock) and the blocked host wait drains its queue
//!    exactly once;
//! 5. **Epoch replay** (`core`) — undelivered partitions are re-put under
//!    a bumped generation tag; stale duplicates from the pre-recovery
//!    generation are discarded idempotently on completion;
//! 6. **Quarantine + schedule repair** (`collectives`) — a channel whose
//!    peer node is gone is quarantined and the hierarchical schedule is
//!    recomputed over the surviving [`Topology`] members;
//! 7. **Typed surrender** — only when repair is impossible does
//!    [`MpiError::Unrecoverable`] surface; recovery never hangs and never
//!    panics.
//!
//! Rungs 1–3 shipped with earlier layers; this crate names the whole
//! ladder, carries the policy knobs ([`RecoverPolicy`]), the node
//! quarantine ([`Quarantine`]), and the post-run survivability report
//! ([`RecoveryReport`]) assembled from the `mpi.recover.*` counters.
//!
//! **Digest neutrality.** With recovery enabled and zero faults firing,
//! runs are bit-for-bit identical to the pre-recovery stack: the ladder
//! only arms cancellable timers (heap tombstones, skipped without
//! advancing the clock) and bumps pure-atomic counters. The frozen PR-5 /
//! PR-6 digests prove it in `tests/recovery.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use parcomm_fault::{chaos, FaultPlan};
use parcomm_mpi::{MpiError, RecoverConfig, WorldConfig};
use parcomm_net::Topology;
use parcomm_obs::MetricsSnapshot;

pub use parcomm_coll::Schedule;
pub use parcomm_fault::chaos::ChaosRun;

/// The rungs of the recovery escalation ladder, mildest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscalationLevel {
    /// Nothing fired: the epoch completed on the fast path.
    None,
    /// UCX put retry with backoff absorbed transient wire failures.
    PutRetry,
    /// Stripes re-spread over surviving rails around a dark NIC.
    Restripe,
    /// Kernel Copy demoted to Progression-Engine posts (IPC revocation).
    KernelCopyFallback,
    /// A PE lease expired and the host drained its queue.
    LeaseTakeover,
    /// Undelivered partitions were replayed under a new generation.
    EpochReplay,
    /// A node was quarantined and the schedule recomputed around it.
    QuarantineRepair,
    /// The ladder was exhausted: [`MpiError::Unrecoverable`] surfaced.
    Unrecoverable,
}

/// Policy knobs for the ladder's top rungs, applied onto a
/// [`WorldConfig`]. Wraps [`RecoverConfig`] with a builder surface.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoverPolicy {
    config: RecoverConfig,
}

impl RecoverPolicy {
    /// The default policy: 4 replays, 20 ms stall detection, 2 ms PE lease.
    pub fn new() -> Self {
        RecoverPolicy::default()
    }

    /// Cap the number of epoch replays before typed surrender.
    pub fn max_replays(mut self, n: u32) -> Self {
        self.config.max_replays = n;
        self
    }

    /// Zero-progress window (µs) before the ladder engages.
    pub fn detect_us(mut self, us: f64) -> Self {
        self.config.detect_us = us;
        self
    }

    /// PE heartbeat lease (µs); an engine silent longer is declared dead.
    pub fn lease_us(mut self, us: f64) -> Self {
        self.config.lease_us = us;
        self
    }

    /// The underlying [`RecoverConfig`].
    pub fn config(&self) -> RecoverConfig {
        self.config.clone()
    }

    /// Arm this policy on a [`WorldConfig`].
    pub fn apply(&self, cfg: &mut WorldConfig) {
        cfg.recover = Some(self.config.clone());
    }
}

/// A set of quarantined nodes and the schedule-repair entry point.
///
/// Quarantine is *node*-granular: when a rank's progression engine is
/// unrecoverable, its whole node is routed around (the hierarchical
/// schedule's cross-node phase is node-to-node, so a single surviving
/// leader cannot be assumed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarantine {
    nodes: Vec<u16>,
}

impl Quarantine {
    /// An empty quarantine: every node healthy.
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// Quarantine `node` (idempotent).
    pub fn add(&mut self, node: u16) {
        if !self.nodes.contains(&node) {
            self.nodes.push(node);
            self.nodes.sort_unstable();
        }
    }

    /// True if `node` is quarantined.
    pub fn contains(&self, node: u16) -> bool {
        self.nodes.contains(&node)
    }

    /// The quarantined nodes, ascending.
    pub fn nodes(&self) -> &[u16] {
        &self.nodes
    }

    /// Number of quarantined nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node is quarantined.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Recompute `rank`'s hierarchical allreduce schedule over the
    /// surviving nodes. Typed [`MpiError::Unrecoverable`] when repair is
    /// impossible — `rank`'s own node is quarantined, or fewer than two
    /// nodes survive.
    pub fn repair_allreduce(
        &self,
        rank: usize,
        topo: &Topology,
    ) -> Result<Schedule, MpiError> {
        Schedule::repair_hierarchical_ring(rank, topo, &self.nodes)
    }
}

/// Post-run survivability report, read from the `mpi.recover.*` counters.
///
/// Counters are pure atomics, so assembling the report never perturbs the
/// run's digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// PE leases found expired (crash or missed heartbeat).
    pub lease_expired: u64,
    /// Epoch replays issued.
    pub replays: u64,
    /// Stale pre-recovery puts discarded by generation gating.
    pub stale_puts: u64,
    /// Host drains of a dead engine's queue.
    pub host_drains: u64,
}

impl RecoveryReport {
    /// Read the recovery counters out of a run's metrics snapshot.
    pub fn from_metrics(metrics: &MetricsSnapshot) -> Self {
        let c = |name: &str| metrics.counter(name).unwrap_or(0);
        RecoveryReport {
            lease_expired: c("mpi.recover.lease_expired"),
            replays: c("mpi.recover.replays"),
            stale_puts: c("mpi.recover.stale_puts"),
            host_drains: c("mpi.recover.host_drains"),
        }
    }

    /// True when no ladder rung above put-retry fired.
    pub fn quiet(&self) -> bool {
        self.lease_expired == 0 && self.replays == 0 && self.stale_puts == 0
            && self.host_drains == 0
    }

    /// The highest ladder rung the counters witness. (`PutRetry` and
    /// below are absorbed beneath the counters; a quiet report maps to
    /// [`EscalationLevel::None`].)
    pub fn highest_level(&self) -> EscalationLevel {
        if self.replays > 0 {
            EscalationLevel::EpochReplay
        } else if self.lease_expired > 0 || self.host_drains > 0 {
            EscalationLevel::LeaseTakeover
        } else {
            EscalationLevel::None
        }
    }
}

/// Run the canonical partitioned allreduce under `plan` with `policy`
/// armed: the recovering chaos harness `tests/recovery.rs` and the CI
/// `recover` job drive.
pub fn run_allreduce_recovering(
    sim_seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    policy: &RecoverPolicy,
) -> ChaosRun {
    chaos::run_allreduce_recovering(sim_seed, plan, nodes, Some(policy.config()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_levels_are_ordered() {
        assert!(EscalationLevel::PutRetry < EscalationLevel::EpochReplay);
        assert!(EscalationLevel::EpochReplay < EscalationLevel::QuarantineRepair);
        assert!(EscalationLevel::QuarantineRepair < EscalationLevel::Unrecoverable);
    }

    #[test]
    fn policy_applies_onto_world_config() {
        let mut cfg = WorldConfig::gh200(1);
        assert!(cfg.recover.is_none());
        RecoverPolicy::new().max_replays(2).detect_us(1e4).lease_us(500.0).apply(&mut cfg);
        let rc = cfg.recover.expect("armed");
        assert_eq!(rc.max_replays, 2);
        assert_eq!(rc.detect_us, 1e4);
        assert_eq!(rc.lease_us, 500.0);
    }

    #[test]
    fn quarantine_is_idempotent_and_sorted() {
        let mut q = Quarantine::new();
        q.add(3);
        q.add(1);
        q.add(3);
        assert_eq!(q.nodes(), &[1, 3]);
        assert!(q.contains(1) && !q.contains(0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn report_reads_counters_and_classifies() {
        let r = RecoveryReport::default();
        assert!(r.quiet());
        assert_eq!(r.highest_level(), EscalationLevel::None);
        let r = RecoveryReport { replays: 2, lease_expired: 1, ..Default::default() };
        assert_eq!(r.highest_level(), EscalationLevel::EpochReplay);
        let r = RecoveryReport { host_drains: 1, ..Default::default() };
        assert_eq!(r.highest_level(), EscalationLevel::LeaseTakeover);
    }
}
