//! Fast runtime probes of the escalation ladder (the full conformance
//! suite lives at the workspace root in `tests/recovery.rs`).

use parcomm_fault::FaultPlan;
use parcomm_recover::{run_allreduce_recovering, RecoverPolicy, RecoveryReport};

#[test]
fn zero_fault_recovery_run_matches_recovery_off() {
    let policy = RecoverPolicy::new();
    let on = run_allreduce_recovering(0xA11CE, &FaultPlan::none(), 1, &policy);
    let off = parcomm_fault::chaos::run_allreduce(0xA11CE, &FaultPlan::none(), 1);
    assert!(on.survived() && off.survived());
    assert_eq!(on.digest, off.digest, "recovery must be digest-neutral when no fault fires");
    assert!(RecoveryReport::from_metrics(&on.metrics).quiet());
}

#[test]
fn pe_crash_recovers_with_host_drain() {
    let plan = FaultPlan::none().with_pe_crash(1, 80.0).with_watchdog(5_000_000.0);
    let clean = parcomm_fault::chaos::run_allreduce(0xA11CE, &FaultPlan::none(), 1);
    let run = run_allreduce_recovering(0xA11CE, &plan, 1, &RecoverPolicy::new());
    assert!(run.survived(), "PE crash must recover: {:?}", run.errors);
    assert_eq!(run.numeric, clean.numeric, "recovered numerics must match fault-free");
    let report = RecoveryReport::from_metrics(&run.metrics);
    assert!(!report.quiet(), "the ladder must have fired: {report:?}");
}

#[test]
fn all_rails_down_recovers_by_replay() {
    // Window opens after the ~400 µs channel handshake settles and closes
    // inside the 20 ms stall-detection horizon, so epoch replay lands.
    let mut plan = FaultPlan::none().with_watchdog(5_000_000.0);
    for nic in 0..4u8 {
        plan = plan.with_nic_outage(0, nic, 600.0, 8_000.0).expect("valid window");
    }
    let clean = parcomm_fault::chaos::run_allreduce(0xA11CE, &FaultPlan::none(), 2);
    let run = run_allreduce_recovering(0xA11CE, &plan, 2, &RecoverPolicy::new());
    assert!(run.survived(), "finite all-rails outage must recover: {:?}", run.errors);
    assert_eq!(run.numeric, clean.numeric);
    let report = RecoveryReport::from_metrics(&run.metrics);
    assert!(report.replays > 0, "epoch replay must have fired: {report:?}");
}
