//! The span-category → pipeline-layer mapping.
//!
//! Exporters group spans into one track per rank × layer; the layer names
//! follow the paper's pipeline: GPU (kernels, device flag writes), host
//! (host-side `MPI_Pready`), progression engine, UCX (puts), and the
//! network fabric.

/// The pipeline layer a span category belongs to. Unknown categories map
/// to `"other"` so exporters never drop a span.
pub fn layer_of(category: &str) -> &'static str {
    match category {
        "kernel" | "stream_sync" | "pready_flag" => "gpu",
        "pready_host" => "host",
        "pe_post" | "coll_step" => "pe",
        "put" | "put_complete" => "ucx",
        "wire" => "net",
        _ => "other",
    }
}

/// Deterministic track ordering for a layer (Chrome `tid`).
pub fn layer_tid(layer: &str) -> u64 {
    match layer {
        "gpu" => 1,
        "host" => 2,
        "pe" => 3,
        "ucx" => 4,
        "net" => 5,
        _ => 6,
    }
}

/// True for categories only recorded at causal trace level (2) — the
/// handoff spans that do not exist in the level-1 baseline stream. Used to
/// filter causal-level traces back to the frozen base-category view.
pub fn is_causal_category(category: &str) -> bool {
    matches!(
        category,
        "pready_flag" | "pready_host" | "pe_post" | "put" | "put_complete" | "coll_step"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_categories_are_not_causal_only() {
        for c in ["kernel", "stream_sync", "wire"] {
            assert!(!is_causal_category(c), "{c}");
        }
        for c in ["pready_flag", "pready_host", "pe_post", "put", "put_complete"] {
            assert!(is_causal_category(c), "{c}");
        }
    }

    #[test]
    fn every_known_category_has_a_layer() {
        for c in
            ["kernel", "stream_sync", "pready_flag", "pready_host", "pe_post", "put", "wire"]
        {
            assert_ne!(layer_of(c), "other", "{c}");
        }
        assert_eq!(layer_of("mystery"), "other");
        assert_eq!(layer_tid("gpu"), 1);
    }
}
