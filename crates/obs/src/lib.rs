//! # parcomm-obs — observability over the simulated stack
//!
//! The analysis side of `parcomm-sim`'s structured span tracing, plus a
//! first-party metrics registry. Everything here is hermetic (no external
//! dependencies) and operates on data the simulation already produced —
//! nothing in this crate touches the virtual clock, so observability can
//! never perturb a run.
//!
//! Components:
//!
//! - [`metrics`]: counters, gauges, and log2-bucket histograms behind a
//!   [`MetricsRegistry`], snapshotable to hand-rolled JSON. Layers attach
//!   instruments explicitly; an unattached layer pays only an `Option`
//!   check per event.
//! - [`mod@occupancy`]: windowed per-category span aggregation (the
//!   `gap_decomposition` table).
//! - [`chrome`]: Chrome `trace_event` JSON exporter — one track per
//!   rank × layer, causal edges as flow events; loadable in Perfetto.
//! - [`folded`]: folded-stack flamegraph text built from causal chains.
//! - [`critical`]: a critical-path analyzer walking the causal graph
//!   backward from the last completion.
//! - [`json`]: a minimal first-party JSON parser used to validate exported
//!   traces in tests and CI.
//! - [`layers`]: the span-category → pipeline-layer mapping shared by the
//!   exporters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod critical;
pub mod folded;
pub mod json;
pub mod layers;
pub mod metrics;
pub mod occupancy;
pub mod spill;

pub use chrome::{chrome_trace_json, chrome_trace_json_with_counters};
pub use critical::{CriticalPath, CriticalStep};
pub use folded::folded_stacks;
pub use json::JsonValue;
pub use layers::{is_causal_category, layer_of};
pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use occupancy::{occupancy, CategorySummary};
pub use spill::{attach_jsonl_spill, SpanSpill};
