//! Folded-stack flamegraph exporter.
//!
//! Renders each span as one frame stack — the span's causal chain from
//! root cause to the span itself, rooted at the owning rank — in the
//! classic `frame;frame;frame weight` text format consumed by
//! `flamegraph.pl` / `inferno` / speedscope. Weights are the span's own
//! duration in integer microseconds, so a flamegraph of the output shows
//! where virtual time accumulates per rank along the pipeline's causal
//! structure.

use std::collections::BTreeMap;

use parcomm_sim::TraceSpan;

/// Render spans as aggregated folded stacks, one `stack weight` line per
/// unique causal chain, sorted by stack name. Instant (zero-duration)
/// spans carry no weight and are skipped.
pub fn folded_stacks(spans: &[TraceSpan]) -> String {
    // Effective rank: own, else inherited from the causal chain.
    let mut ranks: Vec<Option<u32>> = Vec::with_capacity(spans.len());
    for (i, s) in spans.iter().enumerate() {
        let r = s.rank.or_else(|| {
            s.caused_by.index().filter(|&c| c < i).and_then(|c| ranks[c])
        });
        ranks.push(r);
    }

    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let weight = s.end.saturating_since(s.start).as_micros_f64().round() as u64;
        if weight == 0 {
            continue;
        }
        // Walk to the root cause, collecting frames innermost-first.
        let mut frames: Vec<&'static str> = vec![s.category];
        let mut cur = s.caused_by;
        let mut hops = 0;
        while let Some(c) = cur.index().filter(|&c| c < spans.len()) {
            frames.push(spans[c].category);
            cur = spans[c].caused_by;
            hops += 1;
            if hops > spans.len() {
                break; // cycle guard for malformed input
            }
        }
        let root = match ranks[i] {
            Some(r) => format!("rank{r}"),
            None => "rank?".to_string(),
        };
        let mut stack = root;
        for f in frames.iter().rev() {
            stack.push(';');
            stack.push_str(f);
        }
        *agg.entry(stack).or_default() += weight;
    }

    let mut out = String::new();
    for (stack, weight) in &agg {
        out.push_str(&format!("{stack} {weight}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_sim::{SimTime, SpanId, Trace};

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn stacks_follow_causal_chain_and_aggregate() {
        let tr = Trace::default();
        tr.enable_causal();
        for _ in 0..2 {
            let k = tr.record_attr("kernel", t(0), t(10), Some(0), None, SpanId::NONE);
            let p = tr.record_causal("pe_post", t(10), t(12), Some(0), Some(0), k);
            let put = tr.record_causal("put", t(12), t(12), Some(0), Some(0), p);
            tr.record_attr("wire", t(12), t(16), None, None, put);
        }
        let out = folded_stacks(&tr.spans());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            [
                "rank0;kernel 20",
                "rank0;kernel;pe_post 4",
                "rank0;kernel;pe_post;put;wire 8",
            ]
        );
    }

    #[test]
    fn unattributed_spans_root_at_unknown_rank() {
        let tr = Trace::default();
        tr.enable();
        tr.record("wire", t(0), t(5));
        assert_eq!(folded_stacks(&tr.spans()), "rank?;wire 5\n");
    }
}
