//! Minimal first-party JSON: a recursive-descent parser plus the escape
//! helpers the exporters share. Exists so CI can validate the emitted
//! Chrome `trace_event` files (and metrics snapshots) without external
//! dependencies — the parser accepts exactly standard JSON.

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; trace files stay well inside 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(ms) => ms.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's members.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(ms) => Some(ms),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace). Member order is preserved, so
    /// rendering is deterministic; non-finite numbers become `null`, as
    /// in [`number`]. Finite values round-trip through [`parse`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&number(*n)),
            JsonValue::String(s) => out.push_str(&quote(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// JSON-escape and quote a string (shared by the exporters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an f64 as a JSON number (`null` for non-finite values).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#)
            .expect("parse");
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn quote_round_trips_through_parse() {
        let s = "a\"b\\c\nd\te\u{1}";
        let parsed = parse(&quote(s)).expect("parse");
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn render_round_trips_through_parse() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#)
            .expect("parse");
        let rendered = v.render();
        assert_eq!(parse(&rendered).expect("reparse"), v);
        assert_eq!(
            rendered,
            r#"{"a":[1.0,2.5,-300.0],"b":{"c":"x\ny","d":true},"e":null}"#
        );
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn unicode_strings_survive() {
        let v = parse(r#""héllo ✓ A""#).expect("parse");
        assert_eq!(v.as_str(), Some("héllo ✓ A"));
    }
}
