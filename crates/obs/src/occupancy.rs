//! Windowed per-category span aggregation — the `gap_decomposition`
//! occupancy table (paper §VI-B), generalized from the aggregation that
//! used to live in `simcore::Trace::summarize`.

use std::collections::BTreeMap;

use parcomm_sim::{SimDuration, SimTime, TraceSpan};

/// Aggregate of one category within a window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CategorySummary {
    /// Number of spans intersecting the window.
    pub count: u64,
    /// Total virtual time across spans clipped to the window (spans may
    /// overlap in wall terms — this is occupancy, not elapsed).
    pub total: SimDuration,
}

/// Aggregate `spans` within `[from, to]` by category. Each intersecting
/// span contributes its clipped duration; disjoint spans are skipped.
pub fn occupancy(
    spans: &[TraceSpan],
    from: SimTime,
    to: SimTime,
) -> BTreeMap<&'static str, CategorySummary> {
    let mut out: BTreeMap<&'static str, CategorySummary> = BTreeMap::new();
    for s in spans {
        if s.end < from || s.start > to {
            continue;
        }
        let start = s.start.max(from);
        let end = s.end.min(to);
        let e = out.entry(s.category).or_default();
        e.count += 1;
        e.total += end.saturating_since(start);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_sim::Trace;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn summary_clips_to_window() {
        let tr = Trace::default();
        tr.enable();
        tr.record("kernel", t(0), t(10));
        tr.record("kernel", t(20), t(30));
        tr.record("sync", t(5), t(8));
        tr.record("early", t(0), t(1)); // fully outside
        let s = occupancy(&tr.spans(), t(5), t(25));
        assert_eq!(s["kernel"].count, 2);
        assert_eq!(s["kernel"].total, SimDuration::from_micros(10)); // 5 + 5
        assert_eq!(s["sync"].total, SimDuration::from_micros(3));
        assert!(!s.contains_key("early"));
    }
}
