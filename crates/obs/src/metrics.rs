//! First-party hermetic metrics: counters, gauges, log2-bucket histograms.
//!
//! A [`MetricsRegistry`] hands out cheap cloneable instruments backed by
//! atomics. Layers *attach* instruments explicitly (e.g.
//! `Fabric::attach_metrics`); a layer with nothing attached pays only an
//! `Option` check per event, so metrics are zero-cost and digest-neutral
//! when unused — instrument updates never touch the virtual clock, so even
//! when attached they cannot perturb timing or event counts.
//!
//! [`MetricsRegistry::snapshot`] freezes every instrument into a
//! [`MetricsSnapshot`] that renders to the same hand-rolled JSON style the
//! bench reporter uses (the workspace builds with zero external
//! dependencies, so no `serde`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (f64, stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistState {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A log2-bucket histogram of `u64` observations (bytes, iterations, µs).
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`.
#[derive(Clone, Debug)]
pub struct Histogram {
    state: Arc<HistState>,
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.state.count.fetch_add(1, Ordering::Relaxed);
        self.state.sum.fetch_add(v, Ordering::Relaxed);
        self.state.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.state.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> u64 {
        self.state.sum.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` (in `[0, 1]`) of the recorded observations:
    /// the *upper bound* of the first log2 bucket whose cumulative count
    /// reaches `ceil(q · count)`. Conservative by construction (never
    /// under-reports); resolution is the bucket width, i.e. within 2× of
    /// the true quantile. Returns 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.state.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket 0 is exact zeros; bucket i ≥ 1 covers [2^(i-1), 2^i).
                return if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
            }
        }
        u64::MAX
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registry of named instruments. Cheap to clone; clones share state.
/// Instrument lookups are idempotent: asking for the same name and kind
/// twice returns handles to the same underlying value.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<(String, Instrument)>>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut es = self.entries.lock();
        for (n, i) in es.iter() {
            if n == name {
                if let Instrument::Counter(c) = i {
                    return c.clone();
                }
            }
        }
        let c = Counter { v: Arc::new(AtomicU64::new(0)) };
        es.push((name.to_string(), Instrument::Counter(c.clone())));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut es = self.entries.lock();
        for (n, i) in es.iter() {
            if n == name {
                if let Instrument::Gauge(g) = i {
                    return g.clone();
                }
            }
        }
        let g = Gauge { bits: Arc::new(AtomicU64::new(0.0f64.to_bits())) };
        es.push((name.to_string(), Instrument::Gauge(g.clone())));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut es = self.entries.lock();
        for (n, i) in es.iter() {
            if n == name {
                if let Instrument::Histogram(h) = i {
                    return h.clone();
                }
            }
        }
        let h = Histogram {
            state: Arc::new(HistState {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        };
        es.push((name.to_string(), Instrument::Histogram(h.clone())));
        h
    }

    /// Freeze every instrument into a snapshot, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, MetricValue)> = self
            .entries
            .lock()
            .iter()
            .map(|(n, i)| {
                let v = match i {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => {
                        let buckets = h
                            .state
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let c = b.load(Ordering::Relaxed);
                                (c > 0).then(|| {
                                    let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                                    (lo, c)
                                })
                            })
                            .collect();
                        MetricValue::Histogram { count: h.count(), sum: h.sum(), buckets }
                    }
                };
                (n.clone(), v)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("instruments", &self.entries.lock().len())
            .finish()
    }
}

/// A frozen instrument value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram: observation count, sum, and non-empty `(bucket_lo,
    /// count)` pairs in ascending bucket order.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Non-empty buckets as `(lower_bound, count)`.
        buckets: Vec<(u64, u64)>,
    },
}

/// A point-in-time copy of every instrument, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Value of the counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Serialize to pretty-printed JSON (hand-rolled, no `serde`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("  {}: ", crate::json::quote(name)));
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&crate::json::number(*g)),
                MetricValue::Histogram { count, sum, buckets } => {
                    out.push_str(&format!(
                        "{{\"count\": {count}, \"sum\": {sum}, \"buckets\": ["
                    ));
                    for (j, (lo, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{lo}, {c}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pe.polls");
        c.add(3);
        reg.counter("pe.polls").inc(); // same instrument by name
        assert_eq!(c.get(), 4);
        let g = reg.gauge("net.util");
        g.set(0.5);
        assert_eq!(reg.gauge("net.util").get(), 0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pe.polls"), Some(4));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("put.bytes");
        for v in [0u64, 1, 2, 3, 1024, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 2 + 3 + 1024 + 1_000_000);
        let snap = reg.snapshot();
        let MetricValue::Histogram { count, buckets, .. } = &snap.entries[0].1 else {
            panic!("expected histogram");
        };
        assert_eq!(*count, 6);
        // 0 → bucket lo 0; 1 → lo 1; 2,3 → lo 2; 1024 → lo 1024;
        // 1_000_000 → lo 2^19.
        assert_eq!(
            buckets,
            &vec![(0u64, 1u64), (1, 1), (2, 2), (1024, 1), (1 << 19, 1)]
        );
    }

    #[test]
    fn histogram_quantile_is_conservative_bucket_bound() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat.us");
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        for v in [0u64, 1, 2, 3, 100, 100, 100, 100, 100, 4000] {
            h.record(v);
        }
        // p40 target = 4th of 10 sorted obs (3) → bucket [2,4) → bound 3.
        assert_eq!(h.quantile(0.4), 3);
        // p90 target = 9th (100) → bucket [64,128) → bound 127.
        assert_eq!(h.quantile(0.9), 127);
        // p99 target = 10th (4000) → bucket [2048,4096) → bound 4095; never
        // under the true value.
        assert_eq!(h.quantile(0.99), 4095);
        assert!(h.quantile(0.99) >= 4000);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn snapshot_json_is_sorted_and_parseable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("m.hist").record(7);
        let json = reg.snapshot().to_json();
        let v = crate::json::parse(&json).expect("valid json");
        let obj = v.as_object().expect("object");
        assert_eq!(obj[0].0, "a.first");
        assert_eq!(obj[2].0, "z.last");
        assert_eq!(v.get("a.first").and_then(|x| x.as_f64()), Some(2.0));
    }
}
