//! Critical-path analysis over the causal span graph.
//!
//! Walks backward from the last-completing span, following recorded
//! causal edges when present and falling back to the latest-ending
//! predecessor otherwise, to recover the longest dependency chain that
//! produced the final completion. The per-category occupancy along that
//! chain answers the paper's question directly: which layer of the
//! GPU-initiated pipeline bounds end-to-end latency.

use std::collections::BTreeMap;

use parcomm_sim::{SimDuration, SimTime, SpanId, TraceSpan};

/// One hop on the critical path, in chronological order.
#[derive(Clone, Debug)]
pub struct CriticalStep {
    /// Id of the span (1-based, matching the Chrome export's `span` arg).
    pub span: SpanId,
    /// Span category.
    pub category: &'static str,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Rank attribution, if any.
    pub rank: Option<u32>,
    /// Partition attribution, if any.
    pub partition: Option<u32>,
    /// True when the hop to the *next* step followed a recorded causal
    /// edge rather than an inferred (latest-ending predecessor) one.
    pub causal_edge: bool,
}

/// The longest dependency chain ending at the last-completing span.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Steps in chronological order (first cause → final completion).
    pub steps: Vec<CriticalStep>,
}

impl CriticalPath {
    /// Recover the critical path from a span stream.
    ///
    /// Starting at the span with the greatest end time, repeatedly step to
    /// its cause: the recorded `caused_by` span when present, otherwise
    /// the latest-*ending* span that started strictly earlier (work that
    /// was still in flight when the current span began and so plausibly
    /// gated it). A visited set guards against cycles from malformed
    /// input.
    pub fn from_spans(spans: &[TraceSpan]) -> Self {
        let Some(mut cur) = (0..spans.len()).max_by_key(|&i| (spans[i].end, i)) else {
            return Self::default();
        };
        let mut visited = vec![false; spans.len()];
        let mut rev: Vec<(usize, bool)> = Vec::new(); // (index, arrived via causal edge)
        loop {
            visited[cur] = true;
            let s = &spans[cur];
            if let Some(c) = s.caused_by.index().filter(|&c| c < spans.len() && !visited[c]) {
                rev.push((cur, true));
                cur = c;
                continue;
            }
            // Inferred predecessor: among spans that started strictly
            // earlier, the latest-ending one (max end prefers work still in
            // flight at this span's start over work that finished before
            // it; ties go to the later-recorded span). Strictness ends the
            // walk at the earliest root instead of hopping between
            // concurrent same-start spans.
            let pred = (0..spans.len())
                .filter(|&i| !visited[i] && spans[i].start < s.start)
                .max_by_key(|&i| (spans[i].end, i));
            match pred {
                Some(p) => {
                    rev.push((cur, false));
                    cur = p;
                }
                None => {
                    rev.push((cur, false));
                    break;
                }
            }
        }
        let steps = rev
            .into_iter()
            .rev()
            .map(|(i, via_causal)| {
                let s = &spans[i];
                CriticalStep {
                    span: SpanId::from_index(i),
                    category: s.category,
                    start: s.start,
                    end: s.end,
                    rank: s.rank,
                    partition: s.partition,
                    causal_edge: via_causal,
                }
            })
            .collect();
        Self { steps }
    }

    /// Start of the chain (start of its first step).
    pub fn start(&self) -> Option<SimTime> {
        self.steps.first().map(|s| s.start)
    }

    /// End of the chain (end of its last step).
    pub fn end(&self) -> Option<SimTime> {
        self.steps.last().map(|s| s.end)
    }

    /// Fraction of `[from, to]` covered by the chain's extent. The chain
    /// is a dependency explanation of the interval, so its extent — not
    /// summed step durations, which overlap at handoffs — is what must
    /// span the measured window (paper's ≥90% acceptance bar).
    pub fn coverage_of(&self, from: SimTime, to: SimTime) -> f64 {
        let (Some(s), Some(e)) = (self.start(), self.end()) else {
            return 0.0;
        };
        let interval = to.saturating_since(from).as_micros_f64();
        if interval <= 0.0 {
            return 0.0;
        }
        let lo = s.max(from);
        let hi = e.min(to);
        hi.saturating_since(lo).as_micros_f64() / interval
    }

    /// Occupancy along the chain by category: time each category
    /// *advances the horizon*, so overlapping handoff spans are not double
    /// counted and the pieces sum to the chain extent. Time no step
    /// covers is reported under the pseudo-category `"gap"`.
    pub fn occupancy(&self) -> BTreeMap<&'static str, SimDuration> {
        let mut out: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
        let Some(mut horizon) = self.start() else {
            return out;
        };
        for step in &self.steps {
            if step.start > horizon {
                *out.entry("gap").or_default() += step.start.since(horizon);
                horizon = step.start;
            }
            if step.end > horizon {
                *out.entry(step.category).or_default() += step.end.since(horizon);
                horizon = step.end;
            }
        }
        out
    }

    /// Human-readable report: the chain, then per-category occupancy.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.steps.is_empty() {
            out.push_str("critical path: (no spans)\n");
            return out;
        }
        let extent = self
            .end()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(self.start().unwrap_or(SimTime::ZERO));
        out.push_str(&format!(
            "critical path: {} steps spanning {}\n",
            self.steps.len(),
            extent
        ));
        for s in &self.steps {
            let rank = s.rank.map(|r| format!("r{r}")).unwrap_or_else(|| "r?".into());
            let part = s.partition.map(|p| format!(" p{p}")).unwrap_or_default();
            let edge = if s.causal_edge { "=>" } else { "~>" };
            out.push_str(&format!(
                "  {edge} {:<12} [{rank}{part}] {} .. {} ({})\n",
                s.category,
                s.start,
                s.end,
                s.end.saturating_since(s.start)
            ));
        }
        out.push_str("  occupancy along path:\n");
        let occ = self.occupancy();
        let total = extent.as_micros_f64().max(f64::MIN_POSITIVE);
        for (cat, d) in &occ {
            out.push_str(&format!(
                "    {cat:<12} {:>12} ({:.1}%)\n",
                format!("{d}"),
                100.0 * d.as_micros_f64() / total
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_sim::Trace;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn follows_causal_edges_backward() {
        let tr = Trace::default();
        tr.enable_causal();
        let k = tr.record_attr("kernel", t(0), t(10), Some(0), None, SpanId::NONE);
        let f = tr.record_causal("pready_flag", t(8), t(8), Some(0), Some(0), k);
        let p = tr.record_causal("pe_post", t(9), t(11), Some(0), Some(0), f);
        let put = tr.record_causal("put", t(11), t(11), Some(0), Some(0), p);
        let w = tr.record_attr("wire", t(11), t(20), None, None, put);
        tr.record_causal("put_complete", t(20), t(20), Some(1), Some(0), w);
        // Noise that ends earlier and is not on the chain.
        tr.record("kernel", t(0), t(5));

        let cp = CriticalPath::from_spans(&tr.spans());
        let cats: Vec<_> = cp.steps.iter().map(|s| s.category).collect();
        assert_eq!(
            cats,
            ["kernel", "pready_flag", "pe_post", "put", "wire", "put_complete"]
        );
        assert_eq!(cp.start(), Some(t(0)));
        assert_eq!(cp.end(), Some(t(20)));
        assert!((cp.coverage_of(t(0), t(20)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infers_predecessor_without_causal_edges() {
        let tr = Trace::default();
        tr.enable();
        tr.record("kernel", t(0), t(10));
        tr.record("stream_sync", t(10), t(10)); // instant at kernel end
        tr.record("wire", t(4), t(18)); // overlaps, ends last
        let cp = CriticalPath::from_spans(&tr.spans());
        // Last-ending span is wire; its inferred predecessor is the
        // kernel (started before it, still running at wire start).
        let cats: Vec<_> = cp.steps.iter().map(|s| s.category).collect();
        assert_eq!(cats, ["kernel", "wire"]);
        assert!(!cp.steps[0].causal_edge);
    }

    #[test]
    fn occupancy_accounts_handoffs_and_gaps() {
        let tr = Trace::default();
        tr.enable_causal();
        let a = tr.record_attr("kernel", t(0), t(10), Some(0), None, SpanId::NONE);
        // Effect starts 5 µs after its cause ends: a genuine gap.
        tr.record_causal("pe_post", t(15), t(20), Some(0), Some(0), a);
        let cp = CriticalPath::from_spans(&tr.spans());
        let occ = cp.occupancy();
        assert_eq!(occ["kernel"], SimDuration::from_micros(10));
        assert_eq!(occ["gap"], SimDuration::from_micros(5));
        assert_eq!(occ["pe_post"], SimDuration::from_micros(5));
        let total: SimDuration = occ.values().copied().fold(SimDuration::ZERO, |x, y| x + y);
        assert_eq!(total, SimDuration::from_micros(20)); // sums to extent
        let report = cp.render();
        assert!(report.contains("critical path: 2 steps"));
        assert!(report.contains("gap"));
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let cp = CriticalPath::from_spans(&[]);
        assert!(cp.steps.is_empty());
        assert_eq!(cp.coverage_of(SimTime::ZERO, t(10)), 0.0);
        assert!(cp.render().contains("no spans"));
    }
}
