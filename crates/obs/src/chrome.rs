//! Chrome `trace_event` JSON exporter.
//!
//! Produces the "JSON Array Format" object (`{"traceEvents": [...]}`)
//! loadable in Perfetto / `chrome://tracing`:
//!
//! - one *process* per rank (`pid = rank + 1`; pid 0 collects spans whose
//!   rank is unknown even via their causal chain), named by metadata
//!   events;
//! - one *thread* per pipeline layer within each rank (`gpu`, `host`,
//!   `pe`, `ucx`, `net` — see [`crate::layers`]), so a rank's timeline
//!   reads top-to-bottom in pipeline order;
//! - complete (`"X"`) duration events with timestamps in microseconds
//!   (fractional — virtual time is nanosecond-resolution);
//! - causal edges as flow event pairs (`"s"` at the cause, `"f"` with
//!   `bp: "e"` at the effect), which Perfetto draws as arrows across the
//!   handoffs of the GPU-initiated pipeline;
//! - optionally ([`chrome_trace_json_with_counters`]) metrics snapshots
//!   as `"C"` counter events on a dedicated `metrics` process, so put and
//!   poll rates render as Perfetto counter tracks alongside the spans.
//!
//! The output is byte-deterministic for a given span stream.

use parcomm_sim::{SimTime, TraceSpan};

use crate::json::quote;
use crate::layers::{layer_of, layer_tid};
use crate::metrics::{MetricValue, MetricsSnapshot};

fn us(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1000.0)
}

/// Effective rank of each span: its own, or the nearest one up its causal
/// chain (an unattributed `wire` span inherits the rank of the `put` that
/// caused it).
fn effective_ranks(spans: &[TraceSpan]) -> Vec<Option<u32>> {
    let mut out: Vec<Option<u32>> = Vec::with_capacity(spans.len());
    for (i, s) in spans.iter().enumerate() {
        let r = s.rank.or_else(|| {
            s.caused_by
                .index()
                .filter(|&c| c < i)
                .and_then(|c| out[c])
        });
        out.push(r);
    }
    out
}

/// Render a span stream as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    finish(span_events(spans))
}

/// Like [`chrome_trace_json`], additionally rendering timestamped metrics
/// snapshots as Chrome `"C"` counter events on a dedicated `metrics`
/// process: one counter track per counter/gauge, and `count`/`sum` series
/// per histogram. `samples` must be in ascending time order (they render
/// in the given order). With no samples the output is byte-identical to
/// [`chrome_trace_json`].
pub fn chrome_trace_json_with_counters(
    spans: &[TraceSpan],
    samples: &[(SimTime, MetricsSnapshot)],
) -> String {
    let mut events = span_events(spans);
    if !samples.is_empty() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{METRICS_PID},\"tid\":0,\
             \"args\":{{\"name\":\"metrics\"}}}}"
        ));
    }
    for (at, snapshot) in samples {
        for (name, value) in &snapshot.entries {
            let series = match value {
                MetricValue::Counter(c) => format!("\"value\":{c}"),
                MetricValue::Gauge(g) => format!("\"value\":{}", crate::json::number(*g)),
                MetricValue::Histogram { count, sum, .. } => {
                    format!("\"count\":{count},\"sum\":{sum}")
                }
            };
            events.push(format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{METRICS_PID},\"tid\":0,\
                 \"args\":{{{series}}}}}",
                quote(name),
                us(*at),
            ));
        }
    }
    finish(events)
}

/// Process id of the counter tracks — far above any rank pid so counters
/// group under their own `metrics` process in the UI.
const METRICS_PID: u64 = 1_000_000;

fn finish(events: Vec<String>) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Metadata, duration, and flow events for a span stream, in the
/// exporter's deterministic order.
fn span_events(spans: &[TraceSpan]) -> Vec<String> {
    let ranks = effective_ranks(spans);
    let pid_of = |r: Option<u32>| r.map(|r| r as u64 + 1).unwrap_or(0);

    let mut events: Vec<String> = Vec::new();

    // Metadata: process and thread names, in deterministic order.
    let mut tracks: Vec<(u64, u64, &'static str)> = Vec::new(); // (pid, tid, layer)
    for (i, s) in spans.iter().enumerate() {
        let layer = layer_of(s.category);
        let t = (pid_of(ranks[i]), layer_tid(layer), layer);
        if !tracks.contains(&t) {
            tracks.push(t);
        }
    }
    tracks.sort();
    let mut seen_pid: Vec<u64> = Vec::new();
    for &(pid, tid, layer) in &tracks {
        if !seen_pid.contains(&pid) {
            seen_pid.push(pid);
            let pname = if pid == 0 {
                "unattributed".to_string()
            } else {
                format!("rank {}", pid - 1)
            };
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                quote(&pname)
            ));
        }
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            quote(layer)
        ));
    }

    // Duration events, in recording order.
    for (i, s) in spans.iter().enumerate() {
        let layer = layer_of(s.category);
        let pid = pid_of(ranks[i]);
        let tid = layer_tid(layer);
        let dur_us = (s.end.as_nanos().saturating_sub(s.start.as_nanos())) as f64 / 1000.0;
        let mut args = format!("\"span\":{}", i + 1);
        if let Some(p) = s.partition {
            args.push_str(&format!(",\"partition\":{p}"));
        }
        if let Some(c) = s.caused_by.index() {
            args.push_str(&format!(",\"caused_by\":{}", c + 1));
        }
        events.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
            quote(s.category),
            quote(layer),
            us(s.start),
            dur_us,
        ));
    }

    // Flow events: one s/f pair per causal edge, id = effect span id.
    for (i, s) in spans.iter().enumerate() {
        let Some(c) = s.caused_by.index() else { continue };
        if c >= spans.len() {
            continue;
        }
        let cause = &spans[c];
        let id = i + 1;
        let (cpid, ctid) = (pid_of(ranks[c]), layer_tid(layer_of(cause.category)));
        let (epid, etid) = (pid_of(ranks[i]), layer_tid(layer_of(s.category)));
        events.push(format!(
            "{{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":{id},\
             \"ts\":{},\"pid\":{cpid},\"tid\":{ctid}}}",
            us(cause.start),
        ));
        events.push(format!(
            "{{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{id},\"ts\":{},\"pid\":{epid},\"tid\":{etid}}}",
            us(s.start),
        ));
    }

    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_sim::{SimTime, SpanId, Trace};

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn tiny_trace() -> Vec<TraceSpan> {
        let tr = Trace::default();
        tr.enable_causal();
        let k = tr.record_attr("kernel", t(0), t(10), Some(0), None, SpanId::NONE);
        let f = tr.record_causal("pready_flag", t(8), t(8), Some(0), Some(1), k);
        let p = tr.record_causal("pe_post", t(9), t(10), Some(0), Some(1), f);
        let put = tr.record_causal("put", t(10), t(10), Some(0), Some(1), p);
        let w = tr.record_attr("wire", t(10), t(14), None, None, put);
        tr.record_causal("put_complete", t(14), t(14), Some(0), Some(1), w);
        tr.spans()
    }

    /// Golden output: the exporter's byte-exact rendering of a hand-built
    /// five-handoff chain. Guards the format against accidental drift —
    /// Perfetto-compatibility was verified against this exact shape.
    #[test]
    fn golden_chrome_trace() {
        let got = chrome_trace_json(&tiny_trace());
        let expected = "{\"traceEvents\":[\n\
{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"rank 0\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"gpu\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\"args\":{\"name\":\"pe\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":4,\"args\":{\"name\":\"ucx\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":5,\"args\":{\"name\":\"net\"}},\n\
{\"name\":\"kernel\",\"cat\":\"gpu\",\"ph\":\"X\",\"ts\":0.000,\"dur\":10.000,\"pid\":1,\"tid\":1,\"args\":{\"span\":1}},\n\
{\"name\":\"pready_flag\",\"cat\":\"gpu\",\"ph\":\"X\",\"ts\":8.000,\"dur\":0.000,\"pid\":1,\"tid\":1,\"args\":{\"span\":2,\"partition\":1,\"caused_by\":1}},\n\
{\"name\":\"pe_post\",\"cat\":\"pe\",\"ph\":\"X\",\"ts\":9.000,\"dur\":1.000,\"pid\":1,\"tid\":3,\"args\":{\"span\":3,\"partition\":1,\"caused_by\":2}},\n\
{\"name\":\"put\",\"cat\":\"ucx\",\"ph\":\"X\",\"ts\":10.000,\"dur\":0.000,\"pid\":1,\"tid\":4,\"args\":{\"span\":4,\"partition\":1,\"caused_by\":3}},\n\
{\"name\":\"wire\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":10.000,\"dur\":4.000,\"pid\":1,\"tid\":5,\"args\":{\"span\":5,\"caused_by\":4}},\n\
{\"name\":\"put_complete\",\"cat\":\"ucx\",\"ph\":\"X\",\"ts\":14.000,\"dur\":0.000,\"pid\":1,\"tid\":4,\"args\":{\"span\":6,\"partition\":1,\"caused_by\":5}},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":2,\"ts\":0.000,\"pid\":1,\"tid\":1},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":2,\"ts\":8.000,\"pid\":1,\"tid\":1},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":3,\"ts\":8.000,\"pid\":1,\"tid\":1},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":3,\"ts\":9.000,\"pid\":1,\"tid\":3},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":4,\"ts\":9.000,\"pid\":1,\"tid\":3},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":4,\"ts\":10.000,\"pid\":1,\"tid\":4},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":5,\"ts\":10.000,\"pid\":1,\"tid\":4},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":5,\"ts\":10.000,\"pid\":1,\"tid\":5},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":6,\"ts\":10.000,\"pid\":1,\"tid\":5},\n\
{\"name\":\"causal\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":6,\"ts\":14.000,\"pid\":1,\"tid\":4}\n\
],\"displayTimeUnit\":\"ms\"}\n";
        assert_eq!(got, expected);
    }

    #[test]
    fn exported_trace_parses_with_first_party_parser() {
        let json = chrome_trace_json(&tiny_trace());
        let v = crate::json::parse(&json).expect("valid json");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("events");
        let xs = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        assert_eq!(xs, 6);
        // Flow events come in balanced s/f pairs.
        let starts = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .count();
        let finishes = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .count();
        assert_eq!(starts, finishes);
        assert_eq!(starts, 5);
    }

    #[test]
    fn counter_events_render_as_a_metrics_process() {
        use crate::metrics::MetricsRegistry;

        let spans = tiny_trace();
        let reg = MetricsRegistry::new();
        let puts = reg.counter("ucx.puts");
        let lat = reg.histogram("ucx.put_latency_us");
        let s0 = reg.snapshot();
        puts.inc();
        lat.record(4);
        let s1 = reg.snapshot();
        let samples = vec![(t(0), s0), (t(14), s1)];

        // No samples → byte-identical to the plain exporter.
        assert_eq!(chrome_trace_json_with_counters(&spans, &[]), chrome_trace_json(&spans));

        let json = chrome_trace_json_with_counters(&spans, &samples);
        let v = crate::json::parse(&json).expect("valid json");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("events");
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        // 2 samples × 2 instruments.
        assert_eq!(counters.len(), 4);
        // Snapshot entries are name-sorted: the histogram precedes the
        // counter within each sample.
        assert_eq!(counters[2].get("name").and_then(|n| n.as_str()), Some("ucx.put_latency_us"));
        assert_eq!(
            counters[2].get("args").and_then(|a| a.get("count")).and_then(|c| c.as_f64()),
            Some(1.0)
        );
        let last = counters.last().expect("counter");
        assert_eq!(last.get("name").and_then(|n| n.as_str()), Some("ucx.puts"));
        assert_eq!(
            last.get("args").and_then(|a| a.get("value")).and_then(|c| c.as_f64()),
            Some(1.0)
        );
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str())
                    == Some("metrics")
        }));
        // The span events are untouched.
        assert_eq!(
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count(),
            6
        );
    }

    #[test]
    fn wire_span_inherits_rank_through_causal_chain() {
        let spans = tiny_trace();
        let ranks = effective_ranks(&spans);
        // Span 4 is the unattributed wire span; it inherits rank 0 from
        // the put that caused it.
        assert_eq!(spans[4].rank, None);
        assert_eq!(ranks[4], Some(0));
    }
}
