//! JSONL span spill — the file-backed end of the trace eviction sink.
//!
//! A bounded trace ring buffer ([`Trace::set_capacity`]) keeps memory flat
//! on long chaos campaigns, but on its own it *discards* the evicted
//! prefix. [`SpanSpill`] turns eviction into streaming: attach it with
//! [`attach_jsonl_spill`] and every span the ring evicts is appended to a
//! JSON-Lines file, one object per line, in eviction (= recording) order.
//! Retained window + spill file together reconstruct the full history.
//!
//! The spill is a pure retention mechanism: it runs outside the span
//! store's lock, never touches the virtual clock, and therefore never
//! perturbs a run's digest. Write errors are counted
//! ([`SpanSpill::write_errors`]) rather than panicking — an observability
//! sink must not take down the simulation it observes.
//!
//! Line shape (times in integer nanoseconds of virtual time; `rank`,
//! `partition`, and `caused_by` omitted when absent):
//!
//! ```json
//! {"category":"wire","start_ns":1200,"end_ns":3400,"rank":1,"partition":0,"caused_by":17}
//! ```

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use parcomm_sim::{Trace, TraceSpan};

use crate::json::quote;

/// Append-only JSONL sink for evicted trace spans.
pub struct SpanSpill {
    out: Mutex<BufWriter<File>>,
    written: AtomicU64,
    write_errors: AtomicU64,
}

impl SpanSpill {
    /// Create (truncating) the spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Arc<SpanSpill>> {
        let file = File::create(path)?;
        Ok(Arc::new(SpanSpill {
            out: Mutex::new(BufWriter::new(file)),
            written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }))
    }

    /// Render one span as its JSONL line (no trailing newline).
    pub fn line(span: &TraceSpan) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"category\":");
        s.push_str(&quote(span.category));
        s.push_str(&format!(
            ",\"start_ns\":{},\"end_ns\":{}",
            span.start.as_nanos(),
            span.end.as_nanos()
        ));
        if let Some(rank) = span.rank {
            s.push_str(&format!(",\"rank\":{rank}"));
        }
        if let Some(partition) = span.partition {
            s.push_str(&format!(",\"partition\":{partition}"));
        }
        if !span.caused_by.is_none() {
            s.push_str(&format!(",\"caused_by\":{}", span.caused_by.as_u64()));
        }
        s.push('}');
        s
    }

    /// Append one span. Errors are tallied, not raised.
    pub fn write(&self, span: &TraceSpan) {
        let line = SpanSpill::line(span);
        let mut out = self.out.lock().expect("spill writer poisoned");
        match writeln!(out, "{line}") {
            Ok(()) => {
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Spans successfully appended so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Failed appends so far (disk full, closed file, …).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Flush buffered lines to the file.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("spill writer poisoned").flush()
    }
}

impl Drop for SpanSpill {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Create a [`SpanSpill`] at `path` and install it as `trace`'s eviction
/// sink. Returns the spill handle for flushing and accounting; dropping
/// every clone of the handle flushes the file, and
/// `trace.set_evict_sink(None)` detaches early.
pub fn attach_jsonl_spill(
    trace: &Trace,
    path: impl AsRef<Path>,
) -> std::io::Result<Arc<SpanSpill>> {
    let spill = SpanSpill::create(path)?;
    let sink = Arc::clone(&spill);
    trace.set_evict_sink(Some(Arc::new(move |span: &TraceSpan| sink.write(span))));
    Ok(spill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use parcomm_sim::{SimTime, SpanId};

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parcomm-spill-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn line_renders_optional_fields_only_when_present() {
        let span = TraceSpan {
            category: "wire",
            start: t(1),
            end: t(3),
            rank: Some(2),
            partition: None,
            caused_by: SpanId::from_index(4),
        };
        let line = SpanSpill::line(&span);
        let v = parse(&line).expect("line is valid JSON");
        assert_eq!(v.get("category").and_then(|c| c.as_str()), Some("wire"));
        assert_eq!(v.get("start_ns").and_then(|n| n.as_f64()), Some(1000.0));
        assert_eq!(v.get("end_ns").and_then(|n| n.as_f64()), Some(3000.0));
        assert_eq!(v.get("rank").and_then(|n| n.as_f64()), Some(2.0));
        assert!(v.get("partition").is_none());
        assert_eq!(v.get("caused_by").and_then(|n| n.as_f64()), Some(5.0));
        let bare = TraceSpan {
            category: "kernel",
            start: t(0),
            end: t(1),
            rank: None,
            partition: None,
            caused_by: SpanId::NONE,
        };
        let line = SpanSpill::line(&bare);
        assert!(!line.contains("rank") && !line.contains("caused_by"));
        parse(&line).expect("bare line is valid JSON");
    }

    #[test]
    fn spill_captures_every_evicted_span_in_order() {
        let path = tmp("order");
        let trace = Trace::default();
        trace.enable();
        trace.set_capacity(Some(2));
        let spill = attach_jsonl_spill(&trace, &path).expect("create spill");
        let names: [&'static str; 5] = ["a", "b", "c", "d", "e"];
        for (i, name) in names.iter().enumerate() {
            trace.record(name, t(i as u64), t(i as u64 + 1));
        }
        spill.flush().expect("flush");
        assert_eq!(spill.written(), 3);
        assert_eq!(spill.write_errors(), 0);
        // Retained + spilled == recorded: history is whole.
        assert_eq!(spill.written() + trace.span_count() as u64, trace.recorded());
        let body = std::fs::read_to_string(&path).expect("read spill");
        let cats: Vec<String> = body
            .lines()
            .map(|l| {
                parse(l)
                    .expect("valid JSONL line")
                    .get("category")
                    .and_then(|c| c.as_str())
                    .expect("category present")
                    .to_string()
            })
            .collect();
        assert_eq!(cats, ["a", "b", "c"]);
        trace.set_evict_sink(None);
        let _ = std::fs::remove_file(&path);
    }
}
