//! Property tests of the schedule-step algebra (paper §IV-B1), on the
//! `parcomm-testkit` property runner: for every schedule family, step
//! composition must cover all chunks exactly once per phase, offsets must
//! chain correctly between neighbors, and sends must be symmetric with
//! receives.

use parcomm_coll::{Schedule, StepOp};
use parcomm_testkit::prop::{check, PropConfig, TestResult};

fn gen_p_rank(rng: &mut parcomm_sim::SimRng) -> (usize, usize) {
    (rng.uniform_range(1, 24) as usize, rng.uniform_range(0, 24) as usize)
}

#[test]
fn ring_allreduce_each_phase_covers_chunks_exactly_once() {
    check(
        &PropConfig::default(),
        "ring_allreduce_each_phase_covers_chunks_exactly_once",
        gen_p_rank,
        |&(p, r_probe)| {
            if p < 2 {
                return TestResult::Discard;
            }
            let r = r_probe % p;
            let s = Schedule::ring_allreduce(r, p);
            // Reduce-scatter phase: the p-1 arriving chunks are distinct
            // (each chunk of the buffer is reduced into exactly once), and
            // likewise for the allgather phase.
            for (phase, range) in [("reduce-scatter", 0..p - 1), ("allgather", p - 1..2 * (p - 1))]
            {
                let mut seen: Vec<usize> =
                    range.map(|i| s.steps[i].arrived_offset).collect();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(
                    seen.len(),
                    p - 1,
                    "p={p} r={r}: {phase} phase repeats an arriving chunk"
                );
            }
            TestResult::Pass
        },
    );
}

#[test]
fn ring_allreduce_cross_rank_step_is_chunk_permutation() {
    check(
        &PropConfig::default(),
        "ring_allreduce_cross_rank_step_is_chunk_permutation",
        gen_p_rank,
        |&(p, step_probe)| {
            if p < 2 {
                return TestResult::Discard;
            }
            let i = step_probe % (2 * (p - 1));
            // At any step, the chunks arriving across all ranks form a
            // permutation of 0..p: every chunk is in flight somewhere.
            let mut arrived: Vec<usize> =
                (0..p).map(|r| Schedule::ring_allreduce(r, p).steps[i].arrived_offset).collect();
            arrived.sort_unstable();
            assert_eq!(arrived, (0..p).collect::<Vec<_>>(), "step {i}");
            let mut ready: Vec<usize> =
                (0..p).map(|r| Schedule::ring_allreduce(r, p).steps[i].ready_offset).collect();
            ready.sort_unstable();
            assert_eq!(ready, (0..p).collect::<Vec<_>>(), "step {i}");
            TestResult::Pass
        },
    );
}

#[test]
fn pairwise_alltoall_sends_and_receives_each_chunk_exactly_once() {
    check(
        &PropConfig::default(),
        "pairwise_alltoall_sends_and_receives_each_chunk_exactly_once",
        gen_p_rank,
        |&(p, r_probe)| {
            if p < 2 {
                return TestResult::Discard;
            }
            let r = r_probe % p;
            let s = Schedule::pairwise_alltoall(r, p);
            assert_eq!(s.len(), p - 1);
            // Outgoing chunks: every chunk except our own, exactly once.
            let mut sent: Vec<usize> = s.steps.iter().map(|st| st.ready_offset).collect();
            sent.sort_unstable();
            let expect: Vec<usize> = (0..p).filter(|&c| c != r).collect();
            assert_eq!(sent, expect, "rank {r} outgoing chunks");
            // Arriving chunks: every peer's chunk exactly once.
            let mut got: Vec<usize> = s.steps.iter().map(|st| st.arrived_offset).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "rank {r} arriving chunks");
            // Direct exchange: send target and receive source match the
            // chunk indices, and all steps are NOP + early staged.
            for st in &s.steps {
                assert_eq!(st.outgoing, vec![st.ready_offset]);
                assert_eq!(st.incoming, vec![st.arrived_offset]);
                assert_eq!(st.op, StepOp::Nop);
                assert!(st.early_stage);
            }
            TestResult::Pass
        },
    );
}

#[test]
fn schedule_sends_are_symmetric_with_receives() {
    check(
        &PropConfig::default(),
        "schedule_sends_are_symmetric_with_receives",
        |rng| {
            (
                rng.uniform_range(1, 16) as usize,
                rng.uniform_range(0, 16) as usize,
                rng.uniform_range(0, 5) as usize,
            )
        },
        |&(p, root_probe, family)| {
            if p == 0 {
                return TestResult::Discard;
            }
            let root = root_probe % p;
            let build: fn(usize, usize, usize) -> Schedule = match family {
                0 => |r, p, _| Schedule::ring_allreduce(r, p),
                1 => |r, p, _| Schedule::ring_allgather(r, p),
                2 => Schedule::tree_bcast,
                3 => Schedule::chain_gather,
                _ => Schedule::chain_scatter,
            };
            let schedules: Vec<Schedule> = (0..p).map(|r| build(r, p, root)).collect();
            let steps = schedules[0].len();
            for (r, s) in schedules.iter().enumerate() {
                assert_eq!(s.len(), steps, "rank {r}: ragged schedule");
            }
            // Whenever rank a lists b as outgoing at step i, rank b must
            // list a as incoming at step i, and vice versa.
            for i in 0..steps {
                for a in 0..p {
                    for &b in &schedules[a].steps[i].outgoing {
                        assert!(
                            schedules[b].steps[i].incoming.contains(&a),
                            "family {family} p={p} root={root} step {i}: {a}→{b} unmatched"
                        );
                    }
                    for &b in &schedules[a].steps[i].incoming {
                        assert!(
                            schedules[b].steps[i].outgoing.contains(&a),
                            "family {family} p={p} root={root} step {i}: {a}←{b} unmatched"
                        );
                    }
                }
            }
            TestResult::Pass
        },
    );
}

#[test]
fn reduce_scatter_composed_with_allgather_covers_like_allreduce() {
    check(
        &PropConfig::default(),
        "reduce_scatter_composed_with_allgather_covers_like_allreduce",
        gen_p_rank,
        |&(p, r_probe)| {
            if p < 2 {
                return TestResult::Discard;
            }
            let r = r_probe % p;
            let full = Schedule::ring_allreduce(r, p);
            let rs = Schedule::ring_reduce_scatter(r, p);
            let ag = Schedule::ring_allgather(r, p);
            assert_eq!(rs.len() + ag.len(), full.len());
            // The reduce-scatter half is the allreduce prefix, op included.
            for i in 0..rs.len() {
                assert_eq!(rs.steps[i].ready_offset, full.steps[i].ready_offset);
                assert_eq!(rs.steps[i].arrived_offset, full.steps[i].arrived_offset);
                assert_eq!(rs.steps[i].op, StepOp::Sum);
            }
            // The standalone allgather forwards every chunk except the one
            // this rank starts with, exactly once.
            let mut sent: Vec<usize> = ag.steps.iter().map(|st| st.ready_offset).collect();
            sent.sort_unstable();
            sent.dedup();
            assert_eq!(sent.len(), p - 1, "p={p} r={r}: allgather repeats a chunk");
            TestResult::Pass
        },
    );
}
