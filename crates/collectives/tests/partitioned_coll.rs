//! End-to-end tests for partitioned collectives: numerical correctness of
//! the ring allreduce and tree bcast, epoch reuse, pipelining, and the
//! device-initiated path.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_coll::{pallreduce_init, pbcast_init, Schedule, StepOp};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, SimDuration, Simulation};

#[test]
fn pallreduce_sums_correctly_one_node() {
    run_allreduce_correctness(1, 4, 256);
}

#[test]
fn pallreduce_sums_correctly_two_nodes() {
    run_allreduce_correctness(2, 8, 128);
}

fn run_allreduce_correctness(nodes: u16, partitions: usize, elems_per_chunk: usize) {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, nodes);
    let p = world.size();
    let n = partitions * p * elems_per_chunk;
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(n * 8);
        let init: Vec<f64> = (0..n).map(|i| (rank.rank() + 1) as f64 * (i + 1) as f64).collect();
        buf.write_f64_slice(0, &init);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 5).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        for u in 0..partitions {
            coll.pready(ctx, u).expect("pready");
        }
        coll.wait(ctx).expect("wait");
        let out = buf.read_f64_slice(0, n);
        let scale = (rank.size() * (rank.size() + 1)) as f64 / 2.0;
        for (i, v) in out.iter().enumerate() {
            let expect = (i + 1) as f64 * scale;
            assert!(
                (v - expect).abs() < 1e-6,
                "rank {} elem {i}: {v} != {expect}",
                rank.rank()
            );
        }
        for u in 0..partitions {
            assert!(coll.parrived(u));
        }
    });
    sim.run().unwrap();
}

#[test]
fn pallreduce_reuse_across_iterations() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 2usize;
        let n = partitions * p * 16;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 9).expect("init");
        for iter in 1..=3u64 {
            buf.write_f64_slice(0, &vec![iter as f64 * (rank.rank() + 1) as f64; n]);
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            for u in 0..partitions {
                coll.pready(ctx, u).expect("pready");
            }
            coll.wait(ctx).expect("wait");
            let expect = iter as f64 * (p * (p + 1)) as f64 / 2.0;
            let out = buf.read_f64_slice(0, n);
            assert!(
                out.iter().all(|v| (v - expect).abs() < 1e-9),
                "iter {iter}: {:?} != {expect}",
                &out[..4]
            );
        }
    });
    sim.run().unwrap();
}

#[test]
fn pallreduce_device_initiated() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * p * 64;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 11).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        // The compute kernel produces the contribution and calls the device
        // MPIX_Pready for all partitions.
        let buf2 = buf.clone();
        let coll2 = coll.clone();
        let r = rank.rank();
        stream.launch(ctx, KernelSpec::vector_add((n as u32).div_ceil(1024).max(1), 1024), move |d| {
            buf2.write_f64_slice(0, &vec![(r + 1) as f64; n]);
            coll2.pready_device_all(d);
        });
        coll.wait(ctx).expect("wait");
        let expect = (p * (p + 1)) as f64 / 2.0;
        let out = buf.read_f64_slice(0, n);
        assert!(out.iter().all(|v| (v - expect).abs() < 1e-9), "{:?} != {expect}", &out[..4]);
    });
    sim.run().unwrap();
}

#[test]
fn pallreduce_partitions_pipeline() {
    // Marking partitions ready at staggered times must still complete, and
    // early partitions should finish before late ones are even ready.
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * p * 16;
        let buf = rank.gpu().alloc_global(n * 8);
        buf.write_f64_slice(0, &vec![1.0; n]);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 13).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        for u in 0..partitions {
            coll.pready(ctx, u).expect("pready");
            ctx.advance(SimDuration::from_micros(30));
        }
        coll.wait(ctx).expect("wait");
        let out = buf.read_f64_slice(0, n);
        assert!(out.iter().all(|v| (*v - p as f64).abs() < 1e-9));
    });
    sim.run().unwrap();
}

#[test]
fn pbcast_delivers_root_payload() {
    for nodes in [1u16, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, nodes);
        world.run_ranks(&mut sim, move |ctx, rank| {
            let partitions = 2usize;
            let n = partitions * 128;
            let buf = rank.gpu().alloc_global(n * 8);
            let root = 1usize;
            if rank.rank() == root {
                buf.write_f64_slice(0, &(0..n).map(|i| i as f64 * 0.5).collect::<Vec<_>>());
            }
            let stream = rank.gpu().create_stream();
            let coll = pbcast_init(ctx, rank, &buf, partitions, &stream, root, 21).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            for u in 0..partitions {
                coll.pready(ctx, u).expect("pready");
            }
            coll.wait(ctx).expect("wait");
            let out = buf.read_f64_slice(0, n);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f64 * 0.5, "nodes={nodes} rank={} elem {i}", rank.rank());
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn pbcast_has_no_reduction_steps() {
    for r in 0..8 {
        let s = Schedule::tree_bcast(r, 8, 0);
        assert!(s.steps.iter().all(|st| st.op == StepOp::Nop));
    }
}

#[test]
fn allreduce_schedule_pipelines_vs_traditional() {
    // The partitioned allreduce (device-initiated, partition-pipelined)
    // must beat the traditional model (kernel + streamSync + host-staged
    // MPI_Allreduce) at the paper's large-message regime (Fig. 6 uses
    // 1K-32K grids ≈ 8-256 MB buffers; small buffers are overhead-bound
    // for both and not part of the paper's collective evaluation).
    let part = timed(true);
    let trad = timed(false);
    assert!(
        part < trad,
        "partitioned allreduce ({part} µs) must beat traditional ({trad} µs)"
    );
}

fn timed(partitioned: bool) -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    let elapsed = Arc::new(Mutex::new(0.0));
    let e2 = elapsed.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * p * 65536; // 8 MB of f64 payload
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let grid = (n as u32).div_ceil(1024).max(1);
        if partitioned {
            let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 31).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            rank.barrier(ctx);
            let t0 = ctx.now();
            let coll2 = coll.clone();
            let buf2 = buf.clone();
            stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| {
                buf2.write_f64_slice(0, &vec![1.0; n]);
                coll2.pready_device_all(d);
            });
            coll.wait(ctx).expect("wait");
            if rank.rank() == 0 {
                *e2.lock() = ctx.now().since(t0).as_micros_f64();
            }
        } else {
            rank.barrier(ctx);
            let t0 = ctx.now();
            let buf2 = buf.clone();
            stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |_d| {
                buf2.write_f64_slice(0, &vec![1.0; n]);
            });
            stream.synchronize(ctx);
            rank.allreduce_hoststaged_f64(ctx, &buf, 0, n, &stream);
            if rank.rank() == 0 {
                *e2.lock() = ctx.now().since(t0).as_micros_f64();
            }
        }
    });
    sim.run().unwrap();
    let v = *elapsed.lock();
    v
}
