//! Determinism and metamorphic tests for the partitioned collectives,
//! via the `parcomm-testkit` trace-digest and seed-sweep APIs.

use std::sync::Arc;

use parcomm_coll::pallreduce_init;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{CopyMechanism, MpiWorld, WorldConfig};
use parcomm_sim::{Mutex, Simulation};
use parcomm_testkit::{digest, sweep};

/// Run the partitioned allreduce with `partitions` user partitions and
/// return (trace digest, reduced values on rank 0).
fn run_allreduce(seed: u64, partitions: usize) -> (u64, Vec<u64>) {
    run_allreduce_mech(seed, partitions, CopyMechanism::ProgressionEngine)
}

/// [`run_allreduce`] with the world's copy mechanism selected, so the
/// collective engine's per-peer channels negotiate it end to end.
fn run_allreduce_mech(
    seed: u64,
    partitions: usize,
    mechanism: CopyMechanism,
) -> (u64, Vec<u64>) {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::new(&sim, WorldConfig { mechanism, ..WorldConfig::gh200(1) });
    let p = world.size();
    // Element count divisible by every partition count under test and by
    // the communicator size, so all variants reduce the same payload.
    let n = 16 * p * 12;
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(n * 8);
        let vals: Vec<f64> = (0..n).map(|i| ((rank.rank() * 17 + i * 3) % 29) as f64).collect();
        buf.write_f64_slice(0, &vals);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 91).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(2, 128), move |d| c2.pready_device_all(d));
        coll.wait(ctx).expect("wait");
        if rank.rank() == 0 {
            *o2.lock() = buf.read_f64_slice(0, n);
        }
    });
    let report = sim.run().expect("allreduce sim");
    let values: Vec<u64> = out.lock().iter().map(|v| v.to_bits()).collect();
    (digest::run_digest(&report, &trace), values)
}

#[test]
fn allreduce_digest_is_seed_deterministic() {
    sweep::assert_deterministic_and_seed_sensitive(&[11, 22, 33], |seed| {
        run_allreduce(seed, 4).0
    });
}

#[test]
fn allreduce_values_are_partition_count_invariant() {
    // Metamorphic invariant: splitting the same buffer into 1, 2, 4, or 8
    // user partitions must not change the reduced values (only the
    // communication schedule granularity).
    let values = |partitions: usize| run_allreduce(0xD1CE, partitions).1;
    sweep::assert_all_equal([
        ("1 partition", values(1)),
        ("2 partitions", values(2)),
        ("4 partitions", values(4)),
        ("8 partitions", values(8)),
    ]);
}

#[test]
fn allreduce_over_shmem_channels_is_deterministic_and_value_identical() {
    // The engine's intra-node ring channels negotiate the symmetric-heap
    // mechanism when it is the world default; the schedule must stay
    // deterministic and the numerics identical to the PE run.
    sweep::assert_deterministic_and_seed_sensitive(&[11, 22, 33], |seed| {
        run_allreduce_mech(seed, 4, CopyMechanism::Shmem).0
    });
    sweep::assert_all_equal([
        ("progression engine", run_allreduce_mech(0xD1CE, 4, CopyMechanism::ProgressionEngine).1),
        ("shmem", run_allreduce_mech(0xD1CE, 4, CopyMechanism::Shmem).1),
    ]);
}

#[test]
fn allreduce_values_are_seed_invariant() {
    // Timing jitter must never leak into the numerics.
    sweep::assert_all_equal([
        ("seed 5", run_allreduce(5, 4).1),
        ("seed 6", run_allreduce(6, 4).1),
        ("seed 7", run_allreduce(7, 4).1),
    ]);
}
