//! Correctness tests for the additional schedule-engine collectives:
//! allgather, reduce-scatter, gather, scatter — on one and two nodes,
//! with epoch reuse.

use parcomm_coll::{
    pallgather_init, pgather_init, preduce_scatter_init, pscatter_init, PreduceScatter, Schedule,
};
use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, Simulation};

/// Rank r's marker value for chunk-content checks.
fn mark(r: usize, extra: usize) -> f64 {
    (r * 100 + extra + 1) as f64
}

#[test]
fn pallgather_distributes_every_chunk() {
    for nodes in [1u16, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, nodes);
        let p = world.size();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let partitions = 2usize;
            let elems_per_chunk = 32usize;
            let n = partitions * p * elems_per_chunk;
            let buf = rank.gpu().alloc_global(n * 8);
            // Fill only this rank's chunk of each partition region.
            for u in 0..partitions {
                let region = u * p * elems_per_chunk;
                let own = region + rank.rank() * elems_per_chunk;
                buf.write_f64_slice(own * 8, &vec![mark(rank.rank(), u); elems_per_chunk]);
            }
            let stream = rank.gpu().create_stream();
            let coll = pallgather_init(ctx, rank, &buf, partitions, &stream, 40).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            for u in 0..partitions {
                coll.pready(ctx, u).expect("pready");
            }
            coll.wait(ctx).expect("wait");
            for u in 0..partitions {
                for src in 0..p {
                    let region = u * p * elems_per_chunk;
                    let off = (region + src * elems_per_chunk) * 8;
                    assert_eq!(
                        buf.read_f64(off),
                        mark(src, u),
                        "nodes={nodes} rank={} partition={u} chunk from {src}",
                        rank.rank()
                    );
                }
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn preduce_scatter_owns_reduced_chunk() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 2usize;
        let elems_per_chunk = 16usize;
        let n = partitions * p * elems_per_chunk;
        let buf = rank.gpu().alloc_global(n * 8);
        buf.write_f64_slice(0, &vec![(rank.rank() + 1) as f64; n]);
        let stream = rank.gpu().create_stream();
        let coll = preduce_scatter_init(ctx, rank, &buf, partitions, &stream, 41).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        for u in 0..partitions {
            coll.pready(ctx, u).expect("pready");
        }
        coll.wait(ctx).expect("wait");
        // The owned chunk of every partition region is fully reduced.
        let owned = PreduceScatter::owned_chunk(rank.rank(), p);
        let expect = (p * (p + 1)) as f64 / 2.0;
        for u in 0..partitions {
            let region = u * p * elems_per_chunk;
            let off = (region + owned * elems_per_chunk) * 8;
            let got = buf.read_f64_slice(off, elems_per_chunk);
            assert!(
                got.iter().all(|v| (*v - expect).abs() < 1e-9),
                "rank {} partition {u}: {:?} != {expect}",
                rank.rank(),
                &got[..2]
            );
        }
    });
    sim.run().unwrap();
}

#[test]
fn pgather_collects_all_chunks_at_root() {
    for root in [0usize, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 1);
        let p = world.size();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let partitions = 2usize;
            let elems_per_chunk = 8usize;
            let n = partitions * p * elems_per_chunk;
            let buf = rank.gpu().alloc_global(n * 8);
            for u in 0..partitions {
                let region = u * p * elems_per_chunk;
                let own = region + rank.rank() * elems_per_chunk;
                buf.write_f64_slice(own * 8, &vec![mark(rank.rank(), u); elems_per_chunk]);
            }
            let stream = rank.gpu().create_stream();
            let coll = pgather_init(ctx, rank, &buf, partitions, &stream, root, 42).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            for u in 0..partitions {
                coll.pready(ctx, u).expect("pready");
            }
            coll.wait(ctx).expect("wait");
            if rank.rank() == root {
                for u in 0..partitions {
                    for src in 0..p {
                        let region = u * p * elems_per_chunk;
                        let off = (region + src * elems_per_chunk) * 8;
                        assert_eq!(
                            buf.read_f64(off),
                            mark(src, u),
                            "root={root} partition={u} chunk from {src}"
                        );
                    }
                }
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn pscatter_delivers_each_ranks_chunk() {
    for root in [0usize, 3] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 1);
        let p = world.size();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let partitions = 2usize;
            let elems_per_chunk = 8usize;
            let n = partitions * p * elems_per_chunk;
            let buf = rank.gpu().alloc_global(n * 8);
            if rank.rank() == root {
                // Root fills chunk `dst` with that destination's marker.
                for u in 0..partitions {
                    for dst in 0..p {
                        let region = u * p * elems_per_chunk;
                        let off = (region + dst * elems_per_chunk) * 8;
                        buf.write_f64_slice(off, &vec![mark(dst, u); elems_per_chunk]);
                    }
                }
            }
            let stream = rank.gpu().create_stream();
            let coll = pscatter_init(ctx, rank, &buf, partitions, &stream, root, 43).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            for u in 0..partitions {
                coll.pready(ctx, u).expect("pready");
            }
            coll.wait(ctx).expect("wait");
            for u in 0..partitions {
                let region = u * p * elems_per_chunk;
                let off = (region + rank.rank() * elems_per_chunk) * 8;
                assert_eq!(
                    buf.read_f64(off),
                    mark(rank.rank(), u),
                    "root={root} rank={} partition={u}",
                    rank.rank()
                );
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn allgather_reuse_across_epochs() {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let elems = 8usize;
        let n = p * elems;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let coll = pallgather_init(ctx, rank, &buf, 1, &stream, 44).expect("init");
        for epoch in 1..=2u64 {
            let own = rank.rank() * elems;
            buf.write_f64_slice(own * 8, &vec![epoch as f64 * mark(rank.rank(), 0); elems]);
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            coll.pready(ctx, 0).expect("pready");
            coll.wait(ctx).expect("wait");
            for src in 0..p {
                assert_eq!(
                    buf.read_f64(src * elems * 8),
                    epoch as f64 * mark(src, 0),
                    "epoch {epoch} chunk {src}"
                );
            }
        }
    });
    sim.run().unwrap();
}

#[test]
fn schedule_builders_are_consistent() {
    // Allgather offsets chain between neighbors like the allreduce's
    // second phase.
    let p = 8;
    for r in 0..p {
        let s = Schedule::ring_allgather(r, p);
        let next = Schedule::ring_allgather((r + 1) % p, p);
        assert_eq!(s.len(), p - 1);
        for i in 0..p - 1 {
            assert_eq!(s.steps[i].ready_offset, next.steps[i].arrived_offset);
        }
    }
    // Chain gather: total sends across ranks = P-1 chunks reaching the
    // root... every rank at distance d sends P-d chunks.
    for root in [0usize, 5] {
        let mut total_sends = 0;
        for r in 0..p {
            let s = Schedule::chain_gather(r, p, root);
            total_sends += s.steps.iter().filter(|st| !st.outgoing.is_empty()).count();
        }
        // Sum over d=1..P-1 of (P-d) = P(P-1)/2.
        assert_eq!(total_sends, p * (p - 1) / 2, "root={root}");
    }
    // Chain scatter mirrors gather's send count.
    for root in [0usize, 5] {
        let mut total_sends = 0;
        for r in 0..p {
            let s = Schedule::chain_scatter(r, p, root);
            total_sends += s.steps.iter().filter(|st| !st.outgoing.is_empty()).count();
        }
        assert_eq!(total_sends, p * (p - 1) / 2, "root={root}");
    }
}

#[test]
fn single_rank_collectives_complete_trivially() {
    // A one-GPU world: every schedule is empty and the collective is a
    // local no-op, but the control flow must still work end to end.
    use parcomm_coll::pallreduce_init;
    use parcomm_mpi::WorldConfig;
    use parcomm_net::ClusterSpec;

    let mut sim = Simulation::new(SimConfig::default());
    let mut config = WorldConfig::gh200(1);
    config.cluster = ClusterSpec { gpus_per_node: 1, nics_per_node: 1, ..ClusterSpec::gh200(1) };
    let world = MpiWorld::new(&sim, config);
    assert_eq!(world.size(), 1);
    world.run_ranks(&mut sim, |ctx, rank| {
        let n = 64usize;
        let buf = rank.gpu().alloc_global(n * 8);
        buf.write_f64_slice(0, &vec![3.5; n]);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, 2, &stream, 45).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        coll.pready(ctx, 0).expect("pready");
        coll.pready(ctx, 1).expect("pready");
        coll.wait(ctx).expect("wait");
        // Sum over one rank = identity.
        assert_eq!(buf.read_f64_slice(0, n), vec![3.5; n]);
        assert!(coll.parrived(0) && coll.parrived(1));
    });
    sim.run().unwrap();
}

#[test]
fn collective_device_pready_partial_ranges() {
    // Device bindings may mark partition subsets from separate kernels.
    use parcomm_coll::pallreduce_init;
    use parcomm_gpu::KernelSpec;

    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, 1);
    let p = world.size();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * p * 16;
        let buf = rank.gpu().alloc_global(n * 8);
        buf.write_f64_slice(0, &vec![1.0; n]);
        let stream = rank.gpu().create_stream();
        let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 46).expect("init");
        coll.start(ctx).expect("start");
        coll.pbuf_prepare(ctx).expect("pbuf_prepare");
        // Two kernels, each readying half the partitions.
        let c1 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(1, 1024), move |d| {
            c1.pready_device(d, 0..2);
        });
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(1, 1024), move |d| {
            c2.pready_device(d, 2..4);
        });
        coll.wait(ctx).expect("wait");
        assert!(buf.read_f64_slice(0, n).iter().all(|v| (*v - p as f64).abs() < 1e-9));
    });
    sim.run().unwrap();
}

#[test]
fn palltoall_exchanges_every_pair() {
    use parcomm_coll::palltoall_init;
    for nodes in [1u16, 2] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, nodes);
        let p = world.size();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let partitions = 2usize;
            let elems_per_chunk = 8usize;
            let n = partitions * p * elems_per_chunk;
            let buf = rank.gpu().alloc_global(n * 8);
            // Chunk d of partition u carries marker (sender, dest, u).
            for u in 0..partitions {
                for dst in 0..p {
                    let region = u * p * elems_per_chunk;
                    let off = (region + dst * elems_per_chunk) * 8;
                    let val = (rank.rank() * 1000 + dst * 10 + u) as f64;
                    buf.write_f64_slice(off, &vec![val; elems_per_chunk]);
                }
            }
            let stream = rank.gpu().create_stream();
            let coll = palltoall_init(ctx, rank, &buf, partitions, &stream, 47).expect("init");
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            for u in 0..partitions {
                coll.pready(ctx, u).expect("pready");
            }
            coll.wait(ctx).expect("wait");
            // Chunk s now holds what rank s sent to us.
            for u in 0..partitions {
                for src in 0..p {
                    let region = u * p * elems_per_chunk;
                    let off = (region + src * elems_per_chunk) * 8;
                    let expect = (src * 1000 + rank.rank() * 10 + u) as f64;
                    assert_eq!(
                        buf.read_f64(off),
                        expect,
                        "nodes={nodes} rank={} partition={u} chunk from {src}",
                        rank.rank()
                    );
                }
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn pairwise_alltoall_schedule_is_symmetric() {
    let p = 8;
    for r in 0..p {
        let s = Schedule::pairwise_alltoall(r, p);
        assert_eq!(s.len(), p - 1);
        for (idx, step) in s.steps.iter().enumerate() {
            let i = idx + 1;
            let to = step.outgoing[0];
            // The peer's step i must receive from us, and file the arriving
            // chunk under the *sender's* index (alltoall semantics: R ≠ A).
            let peer = Schedule::pairwise_alltoall(to, p);
            assert_eq!(peer.steps[idx].incoming[0], r, "step {i}");
            assert_eq!(peer.steps[idx].arrived_offset, r, "step {i}");
            assert_eq!(step.ready_offset, to, "step {i}");
        }
    }
}
