//! `MPIX_Pallreduce`: the partitioned allreduce (and friends) built on the
//! generic schedule engine.
//!
//! The control flow matches partitioned point-to-point: `*_init` once, then
//! per iteration `start → pbuf_prepare → Pready per partition (host or
//! device) → wait`. The ring reduce-scatter-allgather algorithm is used, as
//! in the paper's evaluation (§VI-B: "the Ring algorithm is used in all
//! cases, as this algorithm is important in Machine Learning contexts").

use std::ops::Range;

use parcomm_gpu::{Buffer, DeviceCtx, Stream};
use parcomm_mpi::{MpiError, Rank};
use parcomm_sim::Ctx;

use crate::engine::CollectiveEngine;
use crate::schedule::Schedule;

/// A persistent partitioned allreduce (`MPIX_Pallreduce_init` result).
///
/// Sum-reduces `user_partitions × chunks` f64 elements in place across all
/// ranks of the world, pipelined per user partition.
#[derive(Clone)]
pub struct Pallreduce {
    engine: CollectiveEngine,
}

/// `MPIX_Pallreduce_init`: build the ring schedule and its channels.
///
/// `buffer` holds f64 payload; its byte length must divide into
/// `user_partitions × world_size` equal chunks. The reduction kernels run
/// on `stream`.
pub fn pallreduce_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    tag: u64,
) -> Result<Pallreduce, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::ring_allreduce(rank.rank(), rank.size());
    let engine = CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?;
    Ok(Pallreduce { engine })
}

/// `MPIX_Pallreduce_init` with the node-aware hierarchical ring schedule
/// ([`Schedule::hierarchical_ring_allreduce`]): intra-node NVLink
/// reduce-scatter → inter-node rail-ring allreduce → intra-node allgather.
/// Identical surface and chunking contract to [`pallreduce_init`] (the
/// buffer divides into `user_partitions × world_size` chunks); on one node
/// the schedule — and therefore the run — is identical to the flat ring.
pub fn pallreduce_init_hierarchical(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    tag: u64,
) -> Result<Pallreduce, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let topo = rank.topology();
    let schedule = Schedule::hierarchical_ring_allreduce(rank.rank(), &topo);
    let engine = CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?;
    Ok(Pallreduce { engine })
}

impl Pallreduce {
    /// Number of user partitions.
    pub fn user_partitions(&self) -> usize {
        self.engine.user_partitions()
    }

    /// `MPI_Start` for the collective.
    pub fn start(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.engine.start(ctx)
    }

    /// `MPIX_Pbuf_prepare` for the collective: synchronizes the processes
    /// associated with the collective.
    pub fn pbuf_prepare(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.engine.pbuf_prepare(ctx)
    }

    /// Host `MPI_Pready`: partition `u`'s local contribution is complete.
    pub fn pready(&self, ctx: &mut Ctx, u: usize) -> Result<(), MpiError> {
        self.engine.pready(ctx, u)
    }

    /// Device `MPIX_Pready` for a range of user partitions, callable from
    /// a kernel body.
    pub fn pready_device(&self, d: &mut DeviceCtx<'_>, users: Range<usize>) {
        self.engine.pready_device(d, users);
    }

    /// Device `MPIX_Pready` for all partitions.
    pub fn pready_device_all(&self, d: &mut DeviceCtx<'_>) {
        self.engine.pready_device(d, 0..self.engine.user_partitions());
    }

    /// `MPI_Parrived`: is the allreduce complete for partition `u`?
    pub fn parrived(&self, u: usize) -> bool {
        self.engine.parrived(u)
    }

    /// Channel-table lookups the engine performed on its completion path so
    /// far. Test support for the O(1)-per-event contract: the conformance
    /// suite asserts this grows linearly with arrivals, never with an
    /// O(channels) rescan factor.
    #[doc(hidden)]
    pub fn completion_lookup_ops(&self) -> u64 {
        self.engine.completion_lookup_ops()
    }

    /// `MPI_Wait`: progress the schedule (Algorithm 2) to completion.
    ///
    /// With `WorldConfig::wait_watchdog_us` armed, a stalled schedule
    /// surfaces [`MpiError::CollectiveTimeout`] instead of hanging.
    pub fn wait(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.engine.wait(ctx)
    }

    /// Number of schedule steps (diagnostics).
    pub fn steps(&self) -> usize {
        self.engine.schedule().len()
    }
}

/// A persistent partitioned broadcast (`MPIX_Pbcast_init` result), using a
/// binomial tree of NOP steps — demonstrating the schedule's algorithm
/// independence (a bcast has no reduction, hence no in-collective stream
/// synchronization).
#[derive(Clone)]
pub struct Pbcast {
    engine: CollectiveEngine,
    root: usize,
}

/// `MPIX_Pbcast_init`: build the binomial-tree schedule rooted at `root`.
pub fn pbcast_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    root: usize,
    tag: u64,
) -> Result<Pbcast, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::tree_bcast(rank.rank(), rank.size(), root);
    let engine = CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?;
    Ok(Pbcast { engine, root })
}

impl Pbcast {
    /// The broadcast root.
    pub fn root(&self) -> usize {
        self.root
    }

    /// `MPI_Start`.
    pub fn start(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.engine.start(ctx)
    }

    /// `MPIX_Pbuf_prepare`.
    pub fn pbuf_prepare(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.engine.pbuf_prepare(ctx)
    }

    /// `MPI_Pready`: on the root, the partition's payload is complete; on
    /// other ranks this activates the partition's forwarding schedule.
    pub fn pready(&self, ctx: &mut Ctx, u: usize) -> Result<(), MpiError> {
        self.engine.pready(ctx, u)
    }

    /// `MPI_Parrived`.
    pub fn parrived(&self, u: usize) -> bool {
        self.engine.parrived(u)
    }

    /// `MPI_Wait`.
    pub fn wait(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        self.engine.wait(ctx)
    }
}
