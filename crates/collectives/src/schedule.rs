//! The generic partitioned-collective schedule (paper §IV-B1).
//!
//! A collective is compiled at init time into a series of steps
//! `S_i = (I, R, ⊕, O, A)`:
//!
//! - `I` — incoming neighbor ranks for the step,
//! - `R` — the `MPI_Pready` chunk offset (which chunk of the buffer this
//!   rank forwards during the step),
//! - `⊕` — the reduction operation to apply to arriving data (or NOP),
//! - `O` — outgoing neighbor ranks,
//! - `A` — the `MPI_Parrived` chunk offset (which chunk arrives).
//!
//! One schedule is built per rank; every partition executes the schedule
//! independently, carrying its own per-partition state (paper: "while a
//! single schedule is created, each partition independently executes that
//! schedule"). The builders below generate ring reduce-scatter-allgather
//! (Algorithm 1), binomial-tree broadcast, and ring reduce-scatter — all on
//! the same executor.

/// The reduction op for a step.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StepOp {
    /// No computation this step (pure forwarding, e.g. allgather phase or
    /// any broadcast step).
    Nop,
    /// Sum-reduce arriving data into the local buffer (`MPI_SUM`; the only
    /// `MPI_Op` the evaluation uses, as in the paper's DL workloads).
    Sum,
}

/// One schedule step `S_i = (I, R, ⊕, O, A)`.
#[derive(Clone, Debug)]
pub struct Step {
    /// Incoming neighbors (ranks this step receives from).
    pub incoming: Vec<usize>,
    /// `MPI_Pready` offset: the chunk index this rank sends this step.
    pub ready_offset: usize,
    /// The operation applied to arriving data.
    pub op: StepOp,
    /// Outgoing neighbors (ranks this step sends to).
    pub outgoing: Vec<usize>,
    /// `MPI_Parrived` offset: the chunk index that arrives this step.
    pub arrived_offset: usize,
    /// Stage-and-send at partition activation instead of step entry. Valid
    /// only when the outgoing chunk carries *epoch-original* data (no
    /// dependency on earlier arrivals): pipelining algorithms (rings,
    /// trees) forward received data and must stage on entry, while
    /// alltoall-style direct exchanges send original chunks that in-place
    /// arrivals would otherwise clobber.
    pub early_stage: bool,
}

/// A full schedule for one rank.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The steps, executed in order (independently per partition).
    pub steps: Vec<Step>,
    /// Number of buffer chunks the offsets index into (== communicator
    /// size for the ring algorithms).
    pub chunks: usize,
}

impl Schedule {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the schedule has no steps (single-rank collectives).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Algorithm 1: ring-based reduce-scatter-allgather allreduce schedule
    /// for `rank` of `p` ranks. `2(P-1)` steps: the first `P-1` carry the
    /// reduction op (reduce-scatter), the rest are NOPs (allgather).
    pub fn ring_allreduce(rank: usize, p: usize) -> Schedule {
        assert!(p >= 1 && rank < p);
        let mut steps = Vec::new();
        if p > 1 {
            for i in 0..2 * (p - 1) {
                let incoming = vec![(rank + p - 1) % p];
                let outgoing = vec![(rank + 1) % p];
                let ready_offset = (rank + 2 * p - i) % p;
                let arrived_offset = (rank + 2 * p - i - 1) % p;
                let op = if i < p - 1 { StepOp::Sum } else { StepOp::Nop };
                steps.push(Step { incoming, ready_offset, op, outgoing, arrived_offset, early_stage: false });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Binomial-tree broadcast schedule rooted at `root`: all NOP steps.
    /// Step `i` has rank pairs at distance `2^(ceil(log2 p) - 1 - i)`.
    /// Every rank gets the same number of steps (idle steps have empty
    /// neighbor sets) so partitions progress uniformly.
    pub fn tree_bcast(rank: usize, p: usize, root: usize) -> Schedule {
        assert!(p >= 1 && rank < p && root < p);
        // Work in the rotated space where the root is rank 0.
        let vrank = (rank + p - root) % p;
        let rounds = (p as u64).next_power_of_two().trailing_zeros() as usize;
        let mut steps = Vec::new();
        for i in 0..rounds {
            // Round i doubles the informed set: ranks 0..2^i send to
            // ranks 2^i..2^(i+1) (virtual-rank space).
            let dist = 1usize << i;
            let mut incoming = Vec::new();
            let mut outgoing = Vec::new();
            if vrank < dist {
                // A sender this round, if the partner exists.
                let partner = vrank + dist;
                if partner < p {
                    outgoing.push((partner + root) % p);
                }
            } else if vrank < 2 * dist {
                let partner = vrank - dist;
                incoming.push((partner + root) % p);
            }
            steps.push(Step {
                incoming,
                ready_offset: 0,
                op: StepOp::Nop,
                outgoing,
                arrived_offset: 0,
                early_stage: false,
            });
        }
        Schedule { steps, chunks: 1 }
    }

    /// Ring reduce-scatter schedule: the first half of Algorithm 1. After
    /// completion, rank `r` owns the fully reduced chunk `(r + 1) mod p`.
    pub fn ring_reduce_scatter(rank: usize, p: usize) -> Schedule {
        let full = Schedule::ring_allreduce(rank, p);
        let keep = p.saturating_sub(1);
        Schedule { steps: full.steps.into_iter().take(keep).collect(), chunks: p }
    }

    /// Ring allgather schedule: the second half of Algorithm 1 on its own.
    /// Rank `r` starts owning chunk `r`; after `P−1` NOP steps every rank
    /// holds every chunk.
    pub fn ring_allgather(rank: usize, p: usize) -> Schedule {
        assert!(p >= 1 && rank < p);
        let mut steps = Vec::new();
        if p > 1 {
            for i in 0..p - 1 {
                steps.push(Step {
                    incoming: vec![(rank + p - 1) % p],
                    ready_offset: (rank + p - i) % p,
                    op: StepOp::Nop,
                    outgoing: vec![(rank + 1) % p],
                    arrived_offset: (rank + 2 * p - i - 1) % p,
                    early_stage: false,
                });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Chain gather toward `root`: every rank forwards chunks one hop
    /// closer to the root along the ring (rank `r` sends to `r − 1`);
    /// after `P−1` steps the root holds every rank's chunk. Only the
    /// root's buffer is meaningful afterwards, matching `MPI_Gather`
    /// semantics with in-place chunked buffers.
    pub fn chain_gather(rank: usize, p: usize, root: usize) -> Schedule {
        assert!(p >= 1 && rank < p && root < p);
        let mut steps = Vec::new();
        if p > 1 {
            // Distance from the root along the chain (root = 0).
            let d = (rank + p - root) % p;
            let left = (rank + p - 1) % p;
            let right = (rank + 1) % p;
            for i in 0..p - 1 {
                // Rank at distance d forwards its own chunk (step 0) and
                // the P−1−d chunks arriving from its right neighbor.
                let sends = d != 0 && i < p - d;
                let receives = (d != 0 && i < p - 1 - d) || (d == 0 && i < p - 1);
                steps.push(Step {
                    incoming: if receives { vec![right] } else { Vec::new() },
                    ready_offset: (rank + i) % p,
                    op: StepOp::Nop,
                    outgoing: if sends { vec![left] } else { Vec::new() },
                    arrived_offset: (rank + 1 + i) % p,
                    early_stage: false,
                });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Pairwise-exchange alltoall: at step `i` (1-based), rank `r` sends
    /// its chunk for rank `(r + i) mod p` directly to that rank and
    /// receives its own chunk from `(r − i) mod p` — every step uses a
    /// *different* neighbor pair, exercising the schedule's generality.
    /// After `p − 1` steps, chunk `s` of the buffer holds what rank `s`
    /// sent to this rank (chunk `r` is the local contribution, untouched).
    pub fn pairwise_alltoall(rank: usize, p: usize) -> Schedule {
        assert!(p >= 1 && rank < p);
        let mut steps = Vec::new();
        if p > 1 {
            for i in 1..p {
                let to = (rank + i) % p;
                let from = (rank + p - i) % p;
                steps.push(Step {
                    incoming: vec![from],
                    ready_offset: to,
                    op: StepOp::Nop,
                    outgoing: vec![to],
                    arrived_offset: from,
                    // Direct exchange of original chunks: stage at
                    // activation, before in-place arrivals clobber them.
                    early_stage: true,
                });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Chain scatter from `root`: the mirror of [`Schedule::chain_gather`] — the
    /// root emits the chunk for the most distant rank first; every rank
    /// keeps its own chunk and forwards the rest one hop onward.
    pub fn chain_scatter(rank: usize, p: usize, root: usize) -> Schedule {
        assert!(p >= 1 && rank < p && root < p);
        let mut steps: Vec<Step> = Vec::new();
        if p > 1 {
            let d = (rank + p - root) % p;
            let left = (rank + p - 1) % p;
            let right = (rank + 1) % p;
            for i in 0..p - 1 {
                steps.push(Step {
                    incoming: Vec::new(),
                    ready_offset: 0,
                    op: StepOp::Nop,
                    outgoing: Vec::new(),
                    arrived_offset: 0,
                    early_stage: false,
                });
                let _ = i;
            }
            if d == 0 {
                // Root sends the chunk for distance t = P−1−i at step i.
                for (i, step) in steps.iter_mut().enumerate() {
                    let t = p - 1 - i;
                    step.outgoing = vec![right];
                    step.ready_offset = (root + t) % p;
                }
            } else {
                // Chunk for distance t (t ≥ d) arrives at this rank at
                // step P−1−t+d−1, and is forwarded one step later when
                // t > d.
                for t in (d..p).rev() {
                    let s_a = p + d - t - 2;
                    steps[s_a].incoming = vec![left];
                    steps[s_a].arrived_offset = (root + t) % p;
                    if t > d {
                        let s_f = s_a + 1;
                        steps[s_f].outgoing = vec![right];
                        steps[s_f].ready_offset = (root + t) % p;
                    }
                }
            }
        }
        Schedule { steps, chunks: p }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_step_count_and_ops() {
        for p in [2usize, 4, 8] {
            for r in 0..p {
                let s = Schedule::ring_allreduce(r, p);
                assert_eq!(s.len(), 2 * (p - 1));
                for (i, step) in s.steps.iter().enumerate() {
                    assert_eq!(step.op == StepOp::Sum, i < p - 1, "p={p} r={r} i={i}");
                    assert_eq!(step.incoming, vec![(r + p - 1) % p]);
                    assert_eq!(step.outgoing, vec![(r + 1) % p]);
                }
            }
        }
    }

    #[test]
    fn ring_offsets_chain_between_neighbors() {
        // What rank r sends at step i (ready_offset) must be what rank r+1
        // sees arrive at step i (arrived_offset).
        let p = 8;
        for i in 0..2 * (p - 1) {
            for r in 0..p {
                let s_r = Schedule::ring_allreduce(r, p);
                let s_next = Schedule::ring_allreduce((r + 1) % p, p);
                assert_eq!(
                    s_r.steps[i].ready_offset, s_next.steps[i].arrived_offset,
                    "p={p} r={r} i={i}"
                );
            }
        }
    }

    #[test]
    fn ring_reduce_scatter_accumulates_every_chunk_once_per_step() {
        // In each reduce-scatter step, the arriving chunk indices across
        // ranks form a permutation (each chunk is being reduced somewhere).
        let p = 4;
        for i in 0..p - 1 {
            let mut seen: Vec<usize> =
                (0..p).map(|r| Schedule::ring_allreduce(r, p).steps[i].arrived_offset).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..p).collect::<Vec<_>>(), "step {i}");
        }
    }

    #[test]
    fn single_rank_schedules_are_empty() {
        assert!(Schedule::ring_allreduce(0, 1).is_empty());
        assert_eq!(Schedule::tree_bcast(0, 1, 0).len(), 0);
    }

    #[test]
    fn tree_bcast_reaches_everyone_exactly_once() {
        for p in [2usize, 3, 4, 7, 8] {
            for root in [0usize, p / 2] {
                let schedules: Vec<Schedule> =
                    (0..p).map(|r| Schedule::tree_bcast(r, p, root)).collect();
                let mut have: Vec<bool> = (0..p).map(|r| r == root).collect();
                let rounds = schedules[0].len();
                for i in 0..rounds {
                    let mut new_have = have.clone();
                    for r in 0..p {
                        for &dst in &schedules[r].steps[i].outgoing {
                            assert!(have[r], "p={p} root={root}: rank {r} sends before it has data");
                            assert!(!have[dst] || dst == root, "duplicate delivery to {dst}");
                            new_have[dst] = true;
                        }
                        for &src in &schedules[r].steps[i].incoming {
                            // Symmetry: src must list us as outgoing.
                            assert!(schedules[src].steps[i].outgoing.contains(&r));
                        }
                    }
                    have = new_have;
                }
                assert!(have.iter().all(|&b| b), "p={p} root={root}: all ranks reached");
            }
        }
    }

    #[test]
    fn reduce_scatter_is_allreduce_prefix() {
        let full = Schedule::ring_allreduce(2, 4);
        let rs = Schedule::ring_reduce_scatter(2, 4);
        assert_eq!(rs.len(), 3);
        for i in 0..3 {
            assert_eq!(rs.steps[i].ready_offset, full.steps[i].ready_offset);
        }
    }
}
