//! The generic partitioned-collective schedule (paper §IV-B1).
//!
//! A collective is compiled at init time into a series of steps
//! `S_i = (I, R, ⊕, O, A)`:
//!
//! - `I` — incoming neighbor ranks for the step,
//! - `R` — the `MPI_Pready` chunk offset (which chunk of the buffer this
//!   rank forwards during the step),
//! - `⊕` — the reduction operation to apply to arriving data (or NOP),
//! - `O` — outgoing neighbor ranks,
//! - `A` — the `MPI_Parrived` chunk offset (which chunk arrives).
//!
//! One schedule is built per rank; every partition executes the schedule
//! independently, carrying its own per-partition state (paper: "while a
//! single schedule is created, each partition independently executes that
//! schedule"). The builders below generate ring reduce-scatter-allgather
//! (Algorithm 1), binomial-tree broadcast, and ring reduce-scatter — all on
//! the same executor.

use parcomm_mpi::MpiError;
use parcomm_net::Topology;

/// The reduction op for a step.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StepOp {
    /// No computation this step (pure forwarding, e.g. allgather phase or
    /// any broadcast step).
    Nop,
    /// Sum-reduce arriving data into the local buffer (`MPI_SUM`; the only
    /// `MPI_Op` the evaluation uses, as in the paper's DL workloads).
    Sum,
}

/// One schedule step `S_i = (I, R, ⊕, O, A)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Incoming neighbors (ranks this step receives from).
    pub incoming: Vec<usize>,
    /// `MPI_Pready` offset: the chunk index this rank sends this step.
    pub ready_offset: usize,
    /// The operation applied to arriving data.
    pub op: StepOp,
    /// Outgoing neighbors (ranks this step sends to).
    pub outgoing: Vec<usize>,
    /// `MPI_Parrived` offset: the chunk index that arrives this step.
    pub arrived_offset: usize,
    /// Stage-and-send at partition activation instead of step entry. Valid
    /// only when the outgoing chunk carries *epoch-original* data (no
    /// dependency on earlier arrivals): pipelining algorithms (rings,
    /// trees) forward received data and must stage on entry, while
    /// alltoall-style direct exchanges send original chunks that in-place
    /// arrivals would otherwise clobber.
    pub early_stage: bool,
}

/// A full schedule for one rank.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The steps, executed in order (independently per partition).
    pub steps: Vec<Step>,
    /// Number of buffer chunks the offsets index into (== communicator
    /// size for the ring algorithms).
    pub chunks: usize,
}

impl Schedule {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the schedule has no steps (single-rank collectives).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Algorithm 1: ring-based reduce-scatter-allgather allreduce schedule
    /// for `rank` of `p` ranks. `2(P-1)` steps: the first `P-1` carry the
    /// reduction op (reduce-scatter), the rest are NOPs (allgather).
    pub fn ring_allreduce(rank: usize, p: usize) -> Schedule {
        assert!(p >= 1 && rank < p);
        let mut steps = Vec::new();
        if p > 1 {
            for i in 0..2 * (p - 1) {
                let incoming = vec![(rank + p - 1) % p];
                let outgoing = vec![(rank + 1) % p];
                let ready_offset = (rank + 2 * p - i) % p;
                let arrived_offset = (rank + 2 * p - i - 1) % p;
                let op = if i < p - 1 { StepOp::Sum } else { StepOp::Nop };
                steps.push(Step { incoming, ready_offset, op, outgoing, arrived_offset, early_stage: false });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Node-aware hierarchical ring allreduce for `rank` in `topo`'s world:
    /// intra-node ring reduce-scatter over NVLink → inter-node ring
    /// allreduce over the NIC-rail-aligned rings → intra-node ring
    /// allgather. Same algebra, same executor as the flat ring — only the
    /// step list differs.
    ///
    /// The core ring width is `S = min_local_size()` — on uniform shapes
    /// the full per-node rank count `G·o`, on ragged shapes the smallest
    /// node's. The buffer is cut into `chunks = N·S` pieces indexed
    /// `c = shard·N + sub_chunk`: shard `s ∈ [0, S)` is the slice the
    /// node-local ring scatters to core local rank `(s − 1) mod S`, and
    /// its `N` sub-chunks are what the inter-node ring pipelines. Core
    /// local rank `l` ends phase A owning shard `(l + 1) mod S`
    /// node-reduced; phase B allreduces that shard across nodes on the
    /// ring of same-local-index ranks — `S` concurrent rings spread over
    /// the NIC rails, so only `2(N−1)` (vs the flat ring's `2(N·S−1)`)
    /// steps cross the IB boundary; phase C allgathers shards back over
    /// NVLink.
    ///
    /// **Ragged degradation.** Nodes wider than `S` carry *surplus* local
    /// ranks (`l ≥ S`). Each folds onto core partner `l mod S` on its own
    /// node: a pre-phase streams every chunk of the surplus rank into the
    /// partner's buffer (summed), and a mirrored post-phase streams the
    /// finished results back. Inter-node rail rings therefore run only
    /// over local indices every node owns, and surplus ranks never cross
    /// the IB boundary. Uniform shapes have no surplus, so their step
    /// lists are bit-identical to the pre-ragged builder — the frozen
    /// digests pin this.
    ///
    /// Degenerates to exactly [`Schedule::ring_allreduce`] at `N == 1`,
    /// and to a flat inter-node ring at `S == 1` on uniform 1-GPU nodes.
    pub fn hierarchical_ring_allreduce(rank: usize, topo: &Topology) -> Schedule {
        let p = topo.num_ranks();
        assert!(rank < p);
        let n = topo.nodes() as usize;
        let s_core = topo.min_local_size();
        let chunks = s_core * n;
        let l = topo.local_rank(rank);
        let node = topo.node_of(rank);
        let base = topo.node_leader(node);
        let node = node as usize;
        let my_width = topo.local_size(node as u16);
        // True when any node carries surplus ranks (p == chunks iff the
        // shape is uniform in local width).
        let folded = p > chunks;
        let mut steps = Vec::new();
        if p > 1 {
            let idle = |steps: &mut Vec<Step>, count: usize| {
                for _ in 0..count {
                    steps.push(Step {
                        incoming: Vec::new(),
                        ready_offset: 0,
                        op: StepOp::Nop,
                        outgoing: Vec::new(),
                        arrived_offset: 0,
                        early_stage: false,
                    });
                }
            };
            // Surplus ranks folding onto this rank (core side), ascending.
            let my_surplus: Vec<usize> = if l < s_core {
                (s_core..my_width).filter(|j| j % s_core == l).map(|j| base + j).collect()
            } else {
                Vec::new()
            };
            // Fold pre-phase — surplus ranks stream every chunk into their
            // core partner, summed, before the core phases read it.
            if folded {
                for c in 0..chunks {
                    if l >= s_core {
                        steps.push(Step {
                            incoming: Vec::new(),
                            ready_offset: c,
                            op: StepOp::Sum,
                            outgoing: vec![base + l % s_core],
                            arrived_offset: c,
                            early_stage: false,
                        });
                    } else if !my_surplus.is_empty() {
                        steps.push(Step {
                            incoming: my_surplus.clone(),
                            ready_offset: c,
                            op: StepOp::Sum,
                            outgoing: Vec::new(),
                            arrived_offset: c,
                            early_stage: false,
                        });
                    } else {
                        idle(&mut steps, 1);
                    }
                }
            }
            if l < s_core {
                // Core ring neighbors: over the first S local ranks of the
                // node (the full node width on uniform shapes, where this
                // is exactly `local_next`/`local_prev`).
                let core_prev = base + (l + s_core - 1) % s_core;
                let core_next = base + (l + 1) % s_core;
                // Phase A — intra-node ring reduce-scatter over shards,
                // each round expanded to the shard's N sub-chunks so phase
                // B can pipeline them without re-chunking.
                for i in 0..s_core.saturating_sub(1) {
                    let send_shard = (l + 2 * s_core - i) % s_core;
                    let recv_shard = (l + 2 * s_core - i - 1) % s_core;
                    for m in 0..n {
                        steps.push(Step {
                            incoming: vec![core_prev],
                            ready_offset: send_shard * n + m,
                            op: StepOp::Sum,
                            outgoing: vec![core_next],
                            arrived_offset: recv_shard * n + m,
                            early_stage: false,
                        });
                    }
                }
                // Phase B — inter-node ring allreduce of the owned shard
                // over the rail ring (same local index on every node; all
                // nodes own indices below S).
                let shard = (l + 1) % s_core;
                let rail_prev = topo.rail_prev(rank);
                let rail_next = topo.rail_next(rank);
                for i in 0..2 * n.saturating_sub(1) {
                    let send_m = (node + 2 * n - i) % n;
                    let recv_m = (node + 2 * n - i - 1) % n;
                    let op = if i < n - 1 { StepOp::Sum } else { StepOp::Nop };
                    steps.push(Step {
                        incoming: vec![rail_prev],
                        ready_offset: shard * n + send_m,
                        op,
                        outgoing: vec![rail_next],
                        arrived_offset: shard * n + recv_m,
                        early_stage: false,
                    });
                }
                // Phase C — intra-node ring allgather of the now globally
                // reduced shards (the flat ring's NOP half, shard-expanded).
                for i in s_core.saturating_sub(1)..2 * s_core.saturating_sub(1) {
                    let send_shard = (l + 2 * s_core - i) % s_core;
                    let recv_shard = (l + 2 * s_core - i - 1) % s_core;
                    for m in 0..n {
                        steps.push(Step {
                            incoming: vec![core_prev],
                            ready_offset: send_shard * n + m,
                            op: StepOp::Nop,
                            outgoing: vec![core_next],
                            arrived_offset: recv_shard * n + m,
                            early_stage: false,
                        });
                    }
                }
            } else {
                // Surplus ranks idle through the core phases.
                idle(
                    &mut steps,
                    2 * s_core.saturating_sub(1) * n + 2 * n.saturating_sub(1),
                );
            }
            // Unfold post-phase — core partners stream the finished chunks
            // back to their surplus ranks.
            if folded {
                for c in 0..chunks {
                    if l >= s_core {
                        steps.push(Step {
                            incoming: vec![base + l % s_core],
                            ready_offset: c,
                            op: StepOp::Nop,
                            outgoing: Vec::new(),
                            arrived_offset: c,
                            early_stage: false,
                        });
                    } else if !my_surplus.is_empty() {
                        steps.push(Step {
                            incoming: Vec::new(),
                            ready_offset: c,
                            op: StepOp::Nop,
                            outgoing: my_surplus.clone(),
                            arrived_offset: c,
                            early_stage: false,
                        });
                    } else {
                        idle(&mut steps, 1);
                    }
                }
            }
        }
        Schedule { steps, chunks }
    }

    /// Quarantine repair: the hierarchical ring allreduce recomputed over
    /// the surviving nodes of `topo`, routing around every node in
    /// `quarantined` (the recovery ladder's final rung — a node whose ranks
    /// crashed unrecoverably is excised and the collective re-formed for
    /// the next epoch over the survivors).
    ///
    /// The repaired schedule is the hierarchical schedule of the *virtual*
    /// sub-topology formed by the surviving nodes in ascending order, with
    /// neighbor indices mapped back to real ranks — so the rail rings skip
    /// quarantined nodes and the intra-node phases are untouched. Its
    /// `chunks` equals the surviving communicator size: the repaired
    /// collective reduces over survivors only (crashed contributions are
    /// lost by definition).
    ///
    /// Typed failure when repair is impossible: `rank`'s own node is
    /// quarantined (it cannot route around itself) surfaces
    /// [`MpiError::Unrecoverable`].
    pub fn repair_hierarchical_ring(
        rank: usize,
        topo: &Topology,
        quarantined: &[u16],
    ) -> Result<Schedule, MpiError> {
        let node = topo.node_of(rank);
        if quarantined.contains(&node) {
            return Err(MpiError::Unrecoverable {
                rank,
                context: format!(
                    "schedule repair: own node {node} is quarantined — no route around self"
                ),
                attempts: 0,
            });
        }
        let survivors: Vec<u16> =
            (0..topo.nodes()).filter(|nd| !quarantined.contains(nd)).collect();
        // Own node survives, so survivors is non-empty. The virtual
        // sub-topology keeps each survivor's own GPU/NIC width, so ragged
        // shapes repair into (possibly still ragged) smaller shapes.
        let vtopo = Topology::ragged(
            survivors.iter().map(|&nd| topo.gpus_on(nd)).collect(),
            survivors.iter().map(|&nd| topo.nics_on(nd)).collect(),
            topo.ranks_per_gpu(),
        )
        .map_err(MpiError::InvalidTopology)?;
        let vnode = survivors
            .iter()
            .position(|&nd| nd == node)
            .expect("own node is a survivor");
        let vrank = vtopo.node_leader(vnode as u16) + topo.local_rank(rank);
        let vsched = Schedule::hierarchical_ring_allreduce(vrank, &vtopo);
        let chunks = vsched.chunks;
        let map = |v: usize| {
            let vn = vtopo.node_of(v);
            topo.node_leader(survivors[vn as usize]) + vtopo.local_rank(v)
        };
        let steps = vsched
            .steps
            .into_iter()
            .map(|mut s| {
                s.incoming = s.incoming.into_iter().map(map).collect();
                s.outgoing = s.outgoing.into_iter().map(map).collect();
                s
            })
            .collect();
        Ok(Schedule { steps, chunks })
    }

    /// Binomial-tree broadcast schedule rooted at `root`: all NOP steps.
    /// Step `i` has rank pairs at distance `2^(ceil(log2 p) - 1 - i)`.
    /// Every rank gets the same number of steps (idle steps have empty
    /// neighbor sets) so partitions progress uniformly.
    pub fn tree_bcast(rank: usize, p: usize, root: usize) -> Schedule {
        assert!(p >= 1 && rank < p && root < p);
        // Work in the rotated space where the root is rank 0.
        let vrank = (rank + p - root) % p;
        let rounds = (p as u64).next_power_of_two().trailing_zeros() as usize;
        let mut steps = Vec::new();
        for i in 0..rounds {
            // Round i doubles the informed set: ranks 0..2^i send to
            // ranks 2^i..2^(i+1) (virtual-rank space).
            let dist = 1usize << i;
            let mut incoming = Vec::new();
            let mut outgoing = Vec::new();
            if vrank < dist {
                // A sender this round, if the partner exists.
                let partner = vrank + dist;
                if partner < p {
                    outgoing.push((partner + root) % p);
                }
            } else if vrank < 2 * dist {
                let partner = vrank - dist;
                incoming.push((partner + root) % p);
            }
            steps.push(Step {
                incoming,
                ready_offset: 0,
                op: StepOp::Nop,
                outgoing,
                arrived_offset: 0,
                early_stage: false,
            });
        }
        Schedule { steps, chunks: 1 }
    }

    /// Ring reduce-scatter schedule: the first half of Algorithm 1. After
    /// completion, rank `r` owns the fully reduced chunk `(r + 1) mod p`.
    pub fn ring_reduce_scatter(rank: usize, p: usize) -> Schedule {
        let full = Schedule::ring_allreduce(rank, p);
        let keep = p.saturating_sub(1);
        Schedule { steps: full.steps.into_iter().take(keep).collect(), chunks: p }
    }

    /// Ring allgather schedule: the second half of Algorithm 1 on its own.
    /// Rank `r` starts owning chunk `r`; after `P−1` NOP steps every rank
    /// holds every chunk.
    pub fn ring_allgather(rank: usize, p: usize) -> Schedule {
        assert!(p >= 1 && rank < p);
        let mut steps = Vec::new();
        if p > 1 {
            for i in 0..p - 1 {
                steps.push(Step {
                    incoming: vec![(rank + p - 1) % p],
                    ready_offset: (rank + p - i) % p,
                    op: StepOp::Nop,
                    outgoing: vec![(rank + 1) % p],
                    arrived_offset: (rank + 2 * p - i - 1) % p,
                    early_stage: false,
                });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Chain gather toward `root`: every rank forwards chunks one hop
    /// closer to the root along the ring (rank `r` sends to `r − 1`);
    /// after `P−1` steps the root holds every rank's chunk. Only the
    /// root's buffer is meaningful afterwards, matching `MPI_Gather`
    /// semantics with in-place chunked buffers.
    pub fn chain_gather(rank: usize, p: usize, root: usize) -> Schedule {
        assert!(p >= 1 && rank < p && root < p);
        let mut steps = Vec::new();
        if p > 1 {
            // Distance from the root along the chain (root = 0).
            let d = (rank + p - root) % p;
            let left = (rank + p - 1) % p;
            let right = (rank + 1) % p;
            for i in 0..p - 1 {
                // Rank at distance d forwards its own chunk (step 0) and
                // the P−1−d chunks arriving from its right neighbor.
                let sends = d != 0 && i < p - d;
                let receives = (d != 0 && i < p - 1 - d) || (d == 0 && i < p - 1);
                steps.push(Step {
                    incoming: if receives { vec![right] } else { Vec::new() },
                    ready_offset: (rank + i) % p,
                    op: StepOp::Nop,
                    outgoing: if sends { vec![left] } else { Vec::new() },
                    arrived_offset: (rank + 1 + i) % p,
                    early_stage: false,
                });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Pairwise-exchange alltoall: at step `i` (1-based), rank `r` sends
    /// its chunk for rank `(r + i) mod p` directly to that rank and
    /// receives its own chunk from `(r − i) mod p` — every step uses a
    /// *different* neighbor pair, exercising the schedule's generality.
    /// After `p − 1` steps, chunk `s` of the buffer holds what rank `s`
    /// sent to this rank (chunk `r` is the local contribution, untouched).
    pub fn pairwise_alltoall(rank: usize, p: usize) -> Schedule {
        assert!(p >= 1 && rank < p);
        let mut steps = Vec::new();
        if p > 1 {
            for i in 1..p {
                let to = (rank + i) % p;
                let from = (rank + p - i) % p;
                steps.push(Step {
                    incoming: vec![from],
                    ready_offset: to,
                    op: StepOp::Nop,
                    outgoing: vec![to],
                    arrived_offset: from,
                    // Direct exchange of original chunks: stage at
                    // activation, before in-place arrivals clobber them.
                    early_stage: true,
                });
            }
        }
        Schedule { steps, chunks: p }
    }

    /// Chain scatter from `root`: the mirror of [`Schedule::chain_gather`] — the
    /// root emits the chunk for the most distant rank first; every rank
    /// keeps its own chunk and forwards the rest one hop onward.
    pub fn chain_scatter(rank: usize, p: usize, root: usize) -> Schedule {
        assert!(p >= 1 && rank < p && root < p);
        let mut steps: Vec<Step> = Vec::new();
        if p > 1 {
            let d = (rank + p - root) % p;
            let left = (rank + p - 1) % p;
            let right = (rank + 1) % p;
            for i in 0..p - 1 {
                steps.push(Step {
                    incoming: Vec::new(),
                    ready_offset: 0,
                    op: StepOp::Nop,
                    outgoing: Vec::new(),
                    arrived_offset: 0,
                    early_stage: false,
                });
                let _ = i;
            }
            if d == 0 {
                // Root sends the chunk for distance t = P−1−i at step i.
                for (i, step) in steps.iter_mut().enumerate() {
                    let t = p - 1 - i;
                    step.outgoing = vec![right];
                    step.ready_offset = (root + t) % p;
                }
            } else {
                // Chunk for distance t (t ≥ d) arrives at this rank at
                // step P−1−t+d−1, and is forwarded one step later when
                // t > d.
                for t in (d..p).rev() {
                    let s_a = p + d - t - 2;
                    steps[s_a].incoming = vec![left];
                    steps[s_a].arrived_offset = (root + t) % p;
                    if t > d {
                        let s_f = s_a + 1;
                        steps[s_f].outgoing = vec![right];
                        steps[s_f].ready_offset = (root + t) % p;
                    }
                }
            }
        }
        Schedule { steps, chunks: p }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_step_count_and_ops() {
        for p in [2usize, 4, 8] {
            for r in 0..p {
                let s = Schedule::ring_allreduce(r, p);
                assert_eq!(s.len(), 2 * (p - 1));
                for (i, step) in s.steps.iter().enumerate() {
                    assert_eq!(step.op == StepOp::Sum, i < p - 1, "p={p} r={r} i={i}");
                    assert_eq!(step.incoming, vec![(r + p - 1) % p]);
                    assert_eq!(step.outgoing, vec![(r + 1) % p]);
                }
            }
        }
    }

    #[test]
    fn ring_offsets_chain_between_neighbors() {
        // What rank r sends at step i (ready_offset) must be what rank r+1
        // sees arrive at step i (arrived_offset).
        let p = 8;
        for i in 0..2 * (p - 1) {
            for r in 0..p {
                let s_r = Schedule::ring_allreduce(r, p);
                let s_next = Schedule::ring_allreduce((r + 1) % p, p);
                assert_eq!(
                    s_r.steps[i].ready_offset, s_next.steps[i].arrived_offset,
                    "p={p} r={r} i={i}"
                );
            }
        }
    }

    #[test]
    fn ring_reduce_scatter_accumulates_every_chunk_once_per_step() {
        // In each reduce-scatter step, the arriving chunk indices across
        // ranks form a permutation (each chunk is being reduced somewhere).
        let p = 4;
        for i in 0..p - 1 {
            let mut seen: Vec<usize> =
                (0..p).map(|r| Schedule::ring_allreduce(r, p).steps[i].arrived_offset).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..p).collect::<Vec<_>>(), "step {i}");
        }
    }

    #[test]
    fn single_rank_schedules_are_empty() {
        assert!(Schedule::ring_allreduce(0, 1).is_empty());
        assert_eq!(Schedule::tree_bcast(0, 1, 0).len(), 0);
    }

    #[test]
    fn tree_bcast_reaches_everyone_exactly_once() {
        for p in [2usize, 3, 4, 7, 8] {
            for root in [0usize, p / 2] {
                let schedules: Vec<Schedule> =
                    (0..p).map(|r| Schedule::tree_bcast(r, p, root)).collect();
                let mut have: Vec<bool> = (0..p).map(|r| r == root).collect();
                let rounds = schedules[0].len();
                for i in 0..rounds {
                    let mut new_have = have.clone();
                    for r in 0..p {
                        for &dst in &schedules[r].steps[i].outgoing {
                            assert!(have[r], "p={p} root={root}: rank {r} sends before it has data");
                            assert!(!have[dst] || dst == root, "duplicate delivery to {dst}");
                            new_have[dst] = true;
                        }
                        for &src in &schedules[r].steps[i].incoming {
                            // Symmetry: src must list us as outgoing.
                            assert!(schedules[src].steps[i].outgoing.contains(&r));
                        }
                    }
                    have = new_have;
                }
                assert!(have.iter().all(|&b| b), "p={p} root={root}: all ranks reached");
            }
        }
    }

    fn topo(n: u16, g: u8) -> Topology {
        Topology::new(n, g, g.min(4)).expect("valid topology")
    }

    /// Interpret a set of per-rank schedules synchronously on integer chunk
    /// values and check every rank ends with the full sum of every chunk.
    fn simulate_allreduce(schedules: &[Schedule]) {
        let p = schedules.len();
        let chunks = schedules[0].chunks;
        assert!(schedules.iter().all(|s| s.chunks == chunks), "chunks must agree across ranks");
        let steps = schedules[0].len();
        assert!(schedules.iter().all(|s| s.len() == steps), "step counts must agree");
        // vals[r][c] starts as a distinct power-of-primes-free token; use
        // (r+1)*(c+1) so sums are distinguishable from overwrites.
        let mut vals: Vec<Vec<u64>> =
            (0..p).map(|r| (0..chunks).map(|c| ((r + 1) * (c + 1)) as u64).collect()).collect();
        for i in 0..steps {
            // Stage every rank's outgoing chunk before applying arrivals
            // (the engine stages at step entry, then the put lands).
            let staged: Vec<u64> = (0..p).map(|r| vals[r][schedules[r].steps[i].ready_offset]).collect();
            for r in 0..p {
                let step = &schedules[r].steps[i];
                for &src in &step.incoming {
                    // The sender must list us as its outgoing neighbor with
                    // a matching chunk offset (channel slot alignment).
                    let s_step = &schedules[src].steps[i];
                    assert!(s_step.outgoing.contains(&r), "step {i}: {src} must send to {r}");
                    assert_eq!(s_step.ready_offset, step.arrived_offset, "step {i} rank {r}");
                    match step.op {
                        StepOp::Sum => vals[r][step.arrived_offset] += staged[src],
                        StepOp::Nop => vals[r][step.arrived_offset] = staged[src],
                    }
                }
            }
        }
        for (r, v) in vals.iter().enumerate() {
            assert_eq!(v.len(), chunks);
            for (c, &got) in v.iter().enumerate() {
                let want: u64 = (0..p).map(|rr| ((rr + 1) * (c + 1)) as u64).sum();
                assert_eq!(got, want, "rank {r} chunk {c}");
            }
        }
    }

    #[test]
    fn flat_ring_allreduce_simulates_correctly() {
        for p in [2usize, 3, 4, 8] {
            let s: Vec<Schedule> = (0..p).map(|r| Schedule::ring_allreduce(r, p)).collect();
            simulate_allreduce(&s);
        }
    }

    #[test]
    fn hierarchical_ring_allreduce_simulates_correctly() {
        for (n, g) in [(1u16, 4u8), (2, 4), (2, 2), (4, 2), (4, 4), (3, 3), (2, 1), (8, 4), (16, 4)] {
            let t = topo(n, g);
            let s: Vec<Schedule> =
                (0..t.num_ranks()).map(|r| Schedule::hierarchical_ring_allreduce(r, &t)).collect();
            simulate_allreduce(&s);
        }
    }

    fn hierarchical_schedules(t: &Topology) -> Vec<Schedule> {
        (0..t.num_ranks()).map(|r| Schedule::hierarchical_ring_allreduce(r, t)).collect()
    }

    #[test]
    fn ragged_hierarchical_simulates_correctly() {
        for (gpus, nics, o) in [
            (vec![4u8, 2, 4, 1], vec![2u8, 1, 2, 1], 1u8),
            (vec![4, 2, 4, 1], vec![2, 1, 2, 1], 2),
            (vec![2, 1], vec![1, 1], 1),
            (vec![3, 3, 1], vec![2, 1, 1], 2),
            (vec![1, 4], vec![1, 2], 3),
            (vec![5], vec![2], 2),
        ] {
            let t = Topology::ragged(gpus.clone(), nics.clone(), o).expect("valid ragged");
            simulate_allreduce(&hierarchical_schedules(&t));
        }
    }

    #[test]
    fn ragged_surplus_ranks_never_cross_nodes() {
        let t = Topology::ragged(vec![4, 2, 4, 1], vec![2, 1, 2, 1], 2).expect("ragged");
        let s_core = t.min_local_size();
        for r in 0..t.num_ranks() {
            if t.local_rank(r) < s_core {
                continue;
            }
            let sched = Schedule::hierarchical_ring_allreduce(r, &t);
            for (i, step) in sched.steps.iter().enumerate() {
                for &peer in step.outgoing.iter().chain(&step.incoming) {
                    assert!(
                        t.same_node(r, peer),
                        "surplus rank {r} touches off-node peer {peer} at step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_oversubscription_matches_equal_width_uniform_shape() {
        // 2 nodes × 2 GPUs × 2 ranks/GPU has the same rank layout and
        // local widths as 2 nodes × 4 GPUs — the step lists must agree
        // exactly (oversubscription is invisible to the schedule algebra
        // when it stays uniform).
        let over = Topology::ragged(vec![2, 2], vec![2, 2], 2).expect("oversubscribed");
        let wide = Topology::new(2, 4, 2).expect("uniform");
        assert_eq!(over.num_ranks(), wide.num_ranks());
        for r in 0..over.num_ranks() {
            let a = Schedule::hierarchical_ring_allreduce(r, &over);
            let b = Schedule::hierarchical_ring_allreduce(r, &wide);
            assert_eq!(a.chunks, b.chunks, "rank {r}");
            assert_eq!(a.steps, b.steps, "rank {r}");
        }
    }

    /// Final per-chunk values of a schedule set under the synchronous
    /// interpreter (the flat ring's output is the reference semantics).
    fn interpret(schedules: &[Schedule]) -> Vec<Vec<u64>> {
        let p = schedules.len();
        let chunks = schedules[0].chunks;
        let mut vals: Vec<Vec<u64>> =
            (0..p).map(|r| (0..chunks).map(|c| ((r + 1) * (c + 1)) as u64).collect()).collect();
        let steps = schedules[0].len();
        for i in 0..steps {
            let staged: Vec<u64> =
                (0..p).map(|r| vals[r][schedules[r].steps[i].ready_offset]).collect();
            for r in 0..p {
                let step = &schedules[r].steps[i];
                for &src in &step.incoming {
                    match step.op {
                        StepOp::Sum => vals[r][step.arrived_offset] += staged[src],
                        StepOp::Nop => vals[r][step.arrived_offset] = staged[src],
                    }
                }
            }
        }
        vals
    }

    /// Seeded property test with shrinking: over random ragged and
    /// oversubscribed specs, the hierarchical schedule's interpreted
    /// output is bit-identical to the flat-ring reference run with the
    /// same chunk count. On failure the spec is greedily shrunk (drop a
    /// node, thin a node, drop oversubscription) to a minimal
    /// counterexample before panicking.
    #[test]
    fn ragged_hierarchical_matches_flat_ring_reference_seeded() {
        let mut state = 0x5EED_7A66u64;
        let mut next = move |bound: u64| {
            // SplitMix64 — deterministic across platforms.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % bound
        };
        let check = |gpus: &[u8], nics: &[u8], o: u8| -> bool {
            let t = match Topology::ragged(gpus.to_vec(), nics.to_vec(), o) {
                Ok(t) => t,
                Err(_) => return true, // degenerate shrink candidate: skip
            };
            if t.num_ranks() < 2 {
                return true;
            }
            let p = t.num_ranks();
            let hier = interpret(&hierarchical_schedules(&t));
            let chunks = hier[0].len();
            let flat: Vec<Schedule> = (0..p).map(|r| Schedule::ring_allreduce(r, p)).collect();
            let reference = interpret(&flat);
            // Same world size, same `(r+1)(c+1)` tokens: the flat ring's
            // chunk `c` result is the reference full sum, and every
            // hierarchical rank must match it bit for bit on the chunks
            // the hierarchical schedule defines (u64 tokens — exact
            // equality, not epsilon).
            hier.iter().all(|v| v[..] == reference[0][..chunks])
        };
        for case in 0..40 {
            let nodes = 1 + next(4) as usize;
            let gpus: Vec<u8> = (0..nodes).map(|_| 1 + next(4) as u8).collect();
            let nics: Vec<u8> = gpus.iter().map(|&g| 1 + next(g as u64) as u8).collect();
            let o = 1 + next(3) as u8;
            if check(&gpus, &nics, o) {
                continue;
            }
            // Shrink: drop nodes, then thin GPU counts, then drop
            // oversubscription — keep any mutation that still fails.
            let (mut gpus, mut nics, mut o) = (gpus, nics, o);
            let mut shrunk = true;
            while shrunk {
                shrunk = false;
                for i in 0..gpus.len() {
                    if gpus.len() > 1 {
                        let (mut g2, mut n2) = (gpus.clone(), nics.clone());
                        g2.remove(i);
                        n2.remove(i);
                        if !check(&g2, &n2, o) {
                            gpus = g2;
                            nics = n2;
                            shrunk = true;
                            break;
                        }
                    }
                }
                for i in 0..gpus.len() {
                    if gpus[i] > 1 {
                        let mut g2 = gpus.clone();
                        g2[i] -= 1;
                        let mut n2 = nics.clone();
                        n2[i] = n2[i].min(g2[i]);
                        if !check(&g2, &n2, o) {
                            gpus = g2;
                            nics = n2;
                            shrunk = true;
                        }
                    }
                }
                if o > 1 && !check(&gpus, &nics, o - 1) {
                    o -= 1;
                    shrunk = true;
                }
            }
            panic!(
                "case {case}: hierarchical != flat-ring reference; \
                 minimal counterexample gpus={gpus:?} nics={nics:?} ranks_per_gpu={o}"
            );
        }
    }

    #[test]
    fn hierarchical_degenerates_to_flat_ring_on_one_node() {
        let t = topo(1, 4);
        for r in 0..4 {
            let h = Schedule::hierarchical_ring_allreduce(r, &t);
            let f = Schedule::ring_allreduce(r, 4);
            assert_eq!(h.chunks, f.chunks);
            assert_eq!(h.len(), f.len());
            for (hs, fs) in h.steps.iter().zip(&f.steps) {
                assert_eq!(hs.incoming, fs.incoming);
                assert_eq!(hs.outgoing, fs.outgoing);
                assert_eq!(hs.ready_offset, fs.ready_offset);
                assert_eq!(hs.arrived_offset, fs.arrived_offset);
                assert_eq!(hs.op, fs.op);
            }
        }
        // Single-rank worlds have empty schedules, as with the flat ring.
        assert!(Schedule::hierarchical_ring_allreduce(0, &topo(1, 1)).is_empty());
    }

    #[test]
    fn hierarchical_crosses_nodes_only_in_phase_b() {
        let t = topo(4, 4);
        let per_rank_cross: Vec<usize> = (0..t.num_ranks())
            .map(|r| {
                Schedule::hierarchical_ring_allreduce(r, &t)
                    .steps
                    .iter()
                    .filter(|s| s.outgoing.iter().any(|&d| !t.same_node(r, d)))
                    .count()
            })
            .collect();
        // Every rank crosses the IB boundary exactly 2(N−1) times…
        assert!(per_rank_cross.iter().all(|&c| c == 2 * (4 - 1)));
        // …while the flat ring's node-crossing pairs cross 2(NG−1) times.
        let flat_cross: usize = {
            let p = t.num_ranks();
            let s = Schedule::ring_allreduce(3, p); // rank 3 → rank 4 crosses
            s.steps.iter().filter(|st| st.outgoing.iter().any(|&d| !t.same_node(3, d))).count()
        };
        assert_eq!(flat_cross, 2 * (16 - 1));
    }

    #[test]
    fn hierarchical_phase_b_spreads_over_all_rails() {
        // The G inter-node rings run at fixed local index, so with G == K
        // NICs every rail carries exactly one ring.
        let t = Topology::new(4, 4, 4).expect("topo");
        let rails: Vec<u8> = (0..4).map(|l| t.nic_of_rank(l)).collect();
        let mut sorted = rails.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reduce_scatter_is_allreduce_prefix() {
        let full = Schedule::ring_allreduce(2, 4);
        let rs = Schedule::ring_reduce_scatter(2, 4);
        assert_eq!(rs.len(), 3);
        for i in 0..3 {
            assert_eq!(rs.steps[i].ready_offset, full.steps[i].ready_offset);
        }
    }
}
