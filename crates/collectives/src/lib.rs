//! # parcomm-coll — MPI Partitioned collectives
//!
//! The first partitioned-collective schedule design (paper §IV-B): a
//! generic, algorithm-independent step schedule `S_i = (I, R, ⊕, O, A)`
//! built on the partitioned point-to-point library, instantiated as a
//! ring reduce-scatter-allgather allreduce (Algorithm 1) and a
//! binomial-tree broadcast, progressed by the Algorithm 2 state machine in
//! `MPI_Wait`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod allreduce;
mod engine;
mod more_colls;
mod schedule;

pub use allreduce::{
    pallreduce_init, pallreduce_init_hierarchical, pbcast_init, Pallreduce, Pbcast,
};
pub use more_colls::{
    pallgather_init, palltoall_init, pgather_init, preduce_scatter_init, pscatter_init,
    Pallgather, Palltoall, Pgather, PreduceScatter, Pscatter,
};
pub use schedule::{Schedule, Step, StepOp};

use parcomm_sim::Ctx;

/// Charge the extra `MPIX_P<collective>_init` cost on top of the
/// constituent point-to-point inits (Table I).
pub(crate) fn charge_pcoll_init_extra(ctx: &mut Ctx) {
    let o = parcomm_core::ApiOverheads::default().pcoll_init_extra;
    ctx.advance(ctx.jitter_us(o.mean_us, o.sd_us));
}
