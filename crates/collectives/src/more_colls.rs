//! Additional partitioned collectives on the generic schedule engine.
//!
//! The MPI Forum proposals list 21+ collectives that libraries would have
//! to implement; the paper's answer is the generic schedule (§IV-B1).
//! These wrappers demonstrate that breadth: allgather and reduce-scatter
//! reuse the ring machinery of Algorithm 1, gather and scatter use chain
//! schedules toward/from a root — all progressed by the same Algorithm 2
//! executor, with the same `init → start → pbuf_prepare → pready → wait`
//! control flow and device bindings.

use std::ops::Range;

use parcomm_gpu::{Buffer, DeviceCtx, Stream};
use parcomm_mpi::{MpiError, Rank};
use parcomm_sim::Ctx;

use crate::engine::CollectiveEngine;
use crate::schedule::Schedule;

macro_rules! collective_common {
    () => {
        /// Number of user partitions.
        pub fn user_partitions(&self) -> usize {
            self.engine.user_partitions()
        }

        /// `MPI_Start` for the collective.
        pub fn start(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
            self.engine.start(ctx)
        }

        /// `MPIX_Pbuf_prepare`: synchronize the collective's processes.
        pub fn pbuf_prepare(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
            self.engine.pbuf_prepare(ctx)
        }

        /// Host `MPI_Pready` for user partition `u`.
        pub fn pready(&self, ctx: &mut Ctx, u: usize) -> Result<(), MpiError> {
            self.engine.pready(ctx, u)
        }

        /// Device `MPIX_Pready` for a range of user partitions.
        pub fn pready_device(&self, d: &mut DeviceCtx<'_>, users: Range<usize>) {
            self.engine.pready_device(d, users);
        }

        /// `MPI_Parrived`: is the collective complete for partition `u`?
        pub fn parrived(&self, u: usize) -> bool {
            self.engine.parrived(u)
        }

        /// `MPI_Wait`: run Algorithm 2 to completion.
        pub fn wait(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
            self.engine.wait(ctx)
        }
    };
}

/// Partitioned ring allgather: rank `r` contributes chunk `r` of each
/// user partition region; after the collective every rank holds all `P`
/// chunks.
#[derive(Clone)]
pub struct Pallgather {
    engine: CollectiveEngine,
}

/// `MPIX_Pallgather_init`.
pub fn pallgather_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    tag: u64,
) -> Result<Pallgather, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::ring_allgather(rank.rank(), rank.size());
    Ok(Pallgather {
        engine: CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?,
    })
}

impl Pallgather {
    collective_common!();
}

/// Partitioned ring reduce-scatter: the reduce-scatter half of
/// Algorithm 1. After completion rank `r` owns the fully reduced chunk
/// `(r + 1) mod P` of each user partition region (other chunks hold
/// intermediate partial sums, as with in-place ring implementations).
#[derive(Clone)]
pub struct PreduceScatter {
    engine: CollectiveEngine,
}

/// `MPIX_Preduce_scatter_init`.
pub fn preduce_scatter_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    tag: u64,
) -> Result<PreduceScatter, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::ring_reduce_scatter(rank.rank(), rank.size());
    Ok(PreduceScatter {
        engine: CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?,
    })
}

impl PreduceScatter {
    collective_common!();

    /// The chunk index this rank owns (fully reduced) after the collective.
    pub fn owned_chunk(rank: usize, p: usize) -> usize {
        (rank + 1) % p
    }
}

/// Partitioned chain gather: after the collective the root holds chunk
/// `r` from every rank `r`. Non-root buffers are forwarding scratch.
#[derive(Clone)]
pub struct Pgather {
    engine: CollectiveEngine,
    root: usize,
}

/// `MPIX_Pgather_init`.
pub fn pgather_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    root: usize,
    tag: u64,
) -> Result<Pgather, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::chain_gather(rank.rank(), rank.size(), root);
    Ok(Pgather {
        engine: CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?,
        root,
    })
}

impl Pgather {
    collective_common!();

    /// The gather root.
    pub fn root(&self) -> usize {
        self.root
    }
}

/// Partitioned pairwise alltoall: chunk `d` of each partition region is
/// delivered to rank `d`; afterwards chunk `s` holds rank `s`'s
/// contribution for this rank.
#[derive(Clone)]
pub struct Palltoall {
    engine: CollectiveEngine,
}

/// `MPIX_Palltoall_init`.
pub fn palltoall_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    tag: u64,
) -> Result<Palltoall, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::pairwise_alltoall(rank.rank(), rank.size());
    Ok(Palltoall {
        engine: CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?,
    })
}

impl Palltoall {
    collective_common!();

    /// Debug helper (hidden): dump channel staging.
    #[doc(hidden)]
    pub fn debug_dump_stages(&self, me: usize) {
        self.engine.debug_dump_stages(me);
    }
}

/// Partitioned chain scatter: the root's chunk `r` reaches rank `r`.
#[derive(Clone)]
pub struct Pscatter {
    engine: CollectiveEngine,
    root: usize,
}

/// `MPIX_Pscatter_init`.
pub fn pscatter_init(
    ctx: &mut Ctx,
    rank: &Rank,
    buffer: &Buffer,
    user_partitions: usize,
    stream: &Stream,
    root: usize,
    tag: u64,
) -> Result<Pscatter, MpiError> {
    crate::charge_pcoll_init_extra(ctx);
    let schedule = Schedule::chain_scatter(rank.rank(), rank.size(), root);
    Ok(Pscatter {
        engine: CollectiveEngine::new(ctx, rank, schedule, buffer, user_partitions, stream, tag)?,
        root,
    })
}

impl Pscatter {
    collective_common!();

    /// The scatter root.
    pub fn root(&self) -> usize {
        self.root
    }
}
