//! The generic partitioned-collective executor.
//!
//! One engine instance per rank per collective. At init time (paper
//! §IV-B1) the engine:
//!
//! - builds this rank's [`Schedule`],
//! - creates one partitioned *send* channel per distinct outgoing neighbor
//!   and one *receive* channel per distinct incoming neighbor
//!   (`MPI_Psend_init` / `MPI_Precv_init` inside the collective init),
//! - sizes each channel with one **transport slot** per `(user partition,
//!   step served by that channel)` pair — the generalization of the paper's
//!   `transport partition = user partition · user partition size + R`
//!   mapping that avoids reusing a slot within an epoch,
//! - allocates staging buffers the slots live in.
//!
//! Execution follows Algorithm 2: each user partition carries its own step
//! state; `MPI_Wait` sweeps the states, reducing arrived chunks (launching
//! a device reduction kernel plus the mandatory `cudaStreamSynchronize` —
//! the cost the paper identifies as the NCCL gap) and issuing the next
//! step's `MPI_Pready` calls.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, psend_init, PrecvRequest, PsendRequest};
use parcomm_gpu::{Buffer, CostModel, DeviceCtx, KernelSpec, Stream};
use parcomm_mpi::{HookOutcome, MpiError, MpiInstruments, ProgressionEngine, Rank, RecoverConfig};
use parcomm_sim::{Ctx, SimDuration, SimTime, SpanId};

use crate::schedule::{Schedule, StepOp};

/// Sentinel for "this peer has no channel" / "this step is not served" in
/// the O(1) index arrays of the channel table.
const NO_ENTRY: u32 = u32::MAX;

/// A send channel to one neighbor, serving a set of schedule steps.
struct SendChannel {
    /// The neighbor rank this channel reaches.
    peer: usize,
    sreq: PsendRequest,
    stage: Buffer,
    /// Schedule steps this channel carries, in order; the slot for
    /// `(partition u, step s)` is `u * steps.len() + index_of(s)`.
    steps: Vec<usize>,
    /// Dense step → slot index (`NO_ENTRY` for steps this channel does not
    /// serve): the per-arrival lookup is one array read, not a map walk.
    slot_of_step: Vec<u32>,
}

/// A receive channel from one neighbor.
struct RecvChannel {
    peer: usize,
    rreq: PrecvRequest,
    stage: Buffer,
    steps: Vec<usize>,
    slot_of_step: Vec<u32>,
}

/// Per-user-partition progression state (Algorithm 2's `states[part]`).
#[derive(Clone, Debug)]
struct PartState {
    step: usize,
    parrived_complete: usize,
    /// Arrivals already reduced/copied this step (the paper: "ensure the
    /// reduce operation is only executed once for each incoming neighbor").
    processed: Vec<bool>,
    pready_complete: usize,
    active: bool,
}

struct EngineInner {
    schedule: Schedule,
    user_partitions: usize,
    /// Bytes of one chunk (= user partition bytes / schedule.chunks).
    chunk_bytes: usize,
    buffer: Buffer,
    stream: Stream,
    cost: CostModel,
    progression: ProgressionEngine,
    /// This rank's index (typed-error diagnostics).
    rank: usize,
    /// Armed Algorithm-2 watchdog (from the world config); `None` in
    /// fault-free runs keeps the wait loop event-identical to the seed.
    watchdog_us: Option<f64>,
    /// Epoch-recovery policy (from the world config). When armed, a stall
    /// escalates through lease check → host drain → channel replay before
    /// the fatal timeout; `None` keeps the pre-recovery wait loop exactly.
    recover: Option<RecoverConfig>,
    /// MPI-layer instruments (watchdog arm/fire counters), if the world
    /// has metrics enabled.
    instruments: Option<MpiInstruments>,
    /// The channel table: channels dense in ascending-peer order (the
    /// order `start`/`pbuf_prepare` iterate, and multi-peer schedules — the
    /// hierarchical ring has up to four neighbors — need deterministic for
    /// digest stability; a `HashMap`'s per-instance seed would reorder
    /// channel starts run to run), plus peer-indexed arrays so the
    /// per-event completion path resolves a channel in O(1) instead of a
    /// map walk per flag arrival.
    send: Vec<SendChannel>,
    recv: Vec<RecvChannel>,
    /// Peer rank → index into `send` / `recv` (`NO_ENTRY` when absent).
    send_of_peer: Vec<u32>,
    recv_of_peer: Vec<u32>,
    /// Channel-table lookups performed on the completion path (arrival
    /// checks and next-step sends). Digest-neutral; the conformance suite
    /// asserts it stays linear in arrivals — no O(channels) rescans.
    completion_lookups: AtomicU64,
    states: Mutex<Vec<PartState>>,
    /// Device-initiated readiness queue (collective device binding).
    pending_device: Mutex<std::collections::VecDeque<usize>>,
    hook_active: Mutex<bool>,
}

/// The engine shared by the collective wrappers.
#[derive(Clone)]
pub(crate) struct CollectiveEngine {
    inner: Arc<EngineInner>,
}

impl CollectiveEngine {
    /// Build the engine: channels, staging, and per-partition state.
    pub(crate) fn new(
        ctx: &mut Ctx,
        rank: &Rank,
        schedule: Schedule,
        buffer: &Buffer,
        user_partitions: usize,
        stream: &Stream,
        tag: u64,
    ) -> Result<CollectiveEngine, MpiError> {
        if user_partitions == 0 {
            return Err(MpiError::InvalidArgument {
                context: "collective init: need at least one partition".into(),
            });
        }
        if !buffer.len().is_multiple_of(user_partitions * schedule.chunks) {
            return Err(MpiError::InvalidArgument {
                context: format!(
                    "collective buffer ({} B) must divide into {} partitions × {} chunks",
                    buffer.len(),
                    user_partitions,
                    schedule.chunks
                ),
            });
        }
        let part_bytes = buffer.len() / user_partitions;
        let chunk_bytes = part_bytes / schedule.chunks;

        // Group steps by neighbor.
        let mut out_steps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut in_steps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, step) in schedule.steps.iter().enumerate() {
            for &o in &step.outgoing {
                out_steps.entry(o).or_default().push(i);
            }
            for &inc in &step.incoming {
                in_steps.entry(inc).or_default().push(i);
            }
        }

        // Create the channels. Order init calls by peer rank so the two
        // sides of each channel agree (matching is on (src, dst, tag));
        // the table keeps that ascending-peer order as its dense layout.
        let total_steps = schedule.steps.len();
        let world_size = rank.size();
        let slot_index = |steps: &[usize]| {
            let mut slot_of_step = vec![NO_ENTRY; total_steps];
            for (j, &s) in steps.iter().enumerate() {
                slot_of_step[s] = j as u32;
            }
            slot_of_step
        };
        let mut send = Vec::with_capacity(out_steps.len());
        let mut send_of_peer = vec![NO_ENTRY; world_size];
        let mut peers: Vec<usize> = out_steps.keys().copied().collect();
        peers.sort_unstable();
        let stripes = rank.world().config().stripes;
        for o in peers {
            let steps = out_steps.remove(&o).expect("key exists");
            let slots = user_partitions * steps.len();
            let stage = rank.gpu().alloc_global(slots * chunk_bytes);
            let sreq = psend_init(ctx, rank, o, tag, &stage, slots)?;
            // Each (partition, step) slot travels independently: one
            // transport partition per slot.
            sreq.set_transport_partitions(slots)?;
            // Cross-node channels stripe their data puts over the NIC
            // rails when the world asks for it; intra-node hops keep the
            // dedicated NVLink pair (the hierarchical schedule already
            // saturates it, and leaving them single-path keeps stripes=1
            // worlds bit-identical to the pre-striping stack).
            if stripes > 1 && !rank.topology().same_node(rank.rank(), o) {
                sreq.set_stripes(stripes)?;
            }
            let slot_of_step = slot_index(&steps);
            send_of_peer[o] = send.len() as u32;
            send.push(SendChannel { peer: o, sreq, stage, steps, slot_of_step });
        }
        let mut recv = Vec::with_capacity(in_steps.len());
        let mut recv_of_peer = vec![NO_ENTRY; world_size];
        let mut peers: Vec<usize> = in_steps.keys().copied().collect();
        peers.sort_unstable();
        for inc in peers {
            let steps = in_steps.remove(&inc).expect("key exists");
            let slots = user_partitions * steps.len();
            let stage = rank.gpu().alloc_global(slots * chunk_bytes);
            let rreq = precv_init(ctx, rank, inc, tag, &stage, slots)?;
            let slot_of_step = slot_index(&steps);
            recv_of_peer[inc] = recv.len() as u32;
            recv.push(RecvChannel { peer: inc, rreq, stage, steps, slot_of_step });
        }

        let states = (0..user_partitions)
            .map(|_| PartState {
                step: 0,
                parrived_complete: 0,
                processed: Vec::new(),
                pready_complete: 0,
                active: false,
            })
            .collect();

        Ok(CollectiveEngine {
            inner: Arc::new(EngineInner {
                schedule,
                user_partitions,
                chunk_bytes,
                buffer: buffer.clone(),
                stream: stream.clone(),
                cost: rank.gpu().cost().clone(),
                progression: rank.progression().clone(),
                rank: rank.rank(),
                watchdog_us: rank.world().config().wait_watchdog_us,
                recover: rank.world().config().recover.clone(),
                instruments: rank.world().instruments(),
                send,
                recv,
                send_of_peer,
                recv_of_peer,
                completion_lookups: AtomicU64::new(0),
                states: Mutex::new(states),
                pending_device: Mutex::new(std::collections::VecDeque::new()),
                hook_active: Mutex::new(false),
            }),
        })
    }

    pub(crate) fn user_partitions(&self) -> usize {
        self.inner.user_partitions
    }

    pub(crate) fn schedule(&self) -> &Schedule {
        &self.inner.schedule
    }

    /// Completion-path channel-table lookups so far (test support: the
    /// conformance suite asserts this stays linear in arrivals).
    pub(crate) fn completion_lookup_ops(&self) -> u64 {
        self.inner.completion_lookups.load(Ordering::Relaxed)
    }

    /// `MPI_Start` for every underlying channel plus state reset.
    pub(crate) fn start(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        for ch in &self.inner.send {
            ch.sreq.start(ctx)?;
        }
        for ch in &self.inner.recv {
            ch.rreq.start(ctx)?;
        }
        let mut states = self.inner.states.lock();
        for st in states.iter_mut() {
            st.step = 0;
            st.parrived_complete = 0;
            st.processed.clear();
            st.pready_complete = 0;
            st.active = false;
        }
        self.inner.pending_device.lock().clear();
        Ok(())
    }

    /// `MPIX_Pbuf_prepare`: synchronize with every neighbor of the
    /// collective (the paper: "we now synchronize the processes associated
    /// with the collective rather than just two ranks" — ring neighbors
    /// transitively synchronize the whole communicator).
    pub(crate) fn pbuf_prepare(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        // Receive channels reply/RTR first so no sender can block forever
        // waiting for its peer's receive side.
        for ch in &self.inner.recv {
            ch.rreq.pbuf_prepare(ctx)?;
        }
        for ch in &self.inner.send {
            ch.sreq.pbuf_prepare(ctx)?;
        }
        Ok(())
    }

    /// Host `MPI_Pready` for one collective user partition: activates its
    /// schedule, issues the step-0 sends, and stages-and-sends every
    /// `early_stage` step's chunk (epoch-original data whose buffer slot
    /// may later be overwritten by in-place arrivals).
    pub(crate) fn pready(&self, ctx: &mut Ctx, u: usize) -> Result<(), MpiError> {
        if u >= self.inner.user_partitions {
            return Err(MpiError::InvalidArgument {
                context: format!("collective pready: partition {u} out of range"),
            });
        }
        {
            let mut states = self.inner.states.lock();
            let st = &mut states[u];
            if st.active {
                return Err(MpiError::InvalidArgument {
                    context: format!("collective partition {u} marked ready twice"),
                });
            }
            st.active = true;
        }
        self.issue_step_sends(ctx, u, 0)?;
        for s in 0..self.inner.schedule.len() {
            if s != 0 && self.inner.schedule.steps[s].early_stage {
                self.stage_and_send(ctx, u, s)?;
            }
        }
        Ok(())
    }

    /// Device binding: called from a kernel body. Extends the kernel with
    /// the block-aggregated notification cost and hands the partitions to
    /// the progression engine, which performs the step-0 staging copies and
    /// `MPI_Pready` calls on the host (paper §IV-B, Progression Engine
    /// approach — in-kernel collective execution is future work the paper
    /// advocates for).
    pub(crate) fn pready_device(&self, d: &mut DeviceCtx<'_>, users: Range<usize>) {
        assert!(!users.is_empty());
        assert!(users.end <= self.inner.user_partitions);
        let cost = d.cost();
        let writes = users.len() as u32; // one counter-crossing write per partition
        let base = d.current_end_offset();
        let sync_us = cost.syncthreads_us
            + d.spec().grid_dim as f64 * cost.device_atomic_us;
        let total = sync_us + d.flag_write_train_us(writes);
        d.extend(SimDuration::from_micros_f64(total));
        let this = self.clone();
        let at = base + SimDuration::from_micros_f64(total);
        d.at_offset(at, move |h| {
            {
                let mut q = this.inner.pending_device.lock();
                q.extend(users.clone());
            }
            let mut active = this.inner.hook_active.lock();
            if !*active {
                *active = true;
                let engine = this.clone();
                engine.clone().inner.progression.register(h, move |ctx| engine.drain_device(ctx));
            }
        });
    }

    fn drain_device(&self, ctx: &mut Ctx) -> HookOutcome {
        loop {
            let u = { self.inner.pending_device.lock().pop_front() };
            let Some(u) = u else { break };
            {
                let mut states = self.inner.states.lock();
                let st = &mut states[u];
                assert!(!st.active, "collective partition {u} marked ready twice");
                st.active = true;
            }
            // Hook context cannot surface Results; channel state was
            // validated when the collective epoch opened.
            self.issue_step_sends(ctx, u, 0).expect("validated at start");
            for s in 0..self.inner.schedule.len() {
                if s != 0 && self.inner.schedule.steps[s].early_stage {
                    self.stage_and_send(ctx, u, s).expect("validated at start");
                }
            }
        }
        let mut active = self.inner.hook_active.lock();
        *active = false;
        HookOutcome::Remove
    }

    /// `MPI_Parrived` for the collective: has partition `u` completed the
    /// whole schedule?
    pub(crate) fn parrived(&self, u: usize) -> bool {
        let states = self.inner.states.lock();
        states[u].step >= self.inner.schedule.len()
    }

    /// Byte offset of chunk `c` of user partition `u` in the main buffer.
    fn chunk_off(&self, u: usize, c: usize) -> usize {
        u * self.inner.chunk_bytes * self.inner.schedule.chunks + c * self.inner.chunk_bytes
    }

    /// Local device copy cost (cudaMemcpyD2D of one chunk).
    fn copy_cost(&self) -> SimDuration {
        SimDuration::from_micros_f64(
            self.inner.chunk_bytes as f64 / (self.inner.cost.hbm_bw_gbps * 1e3) + 0.8,
        )
    }

    /// Issue the sends of step `s` for partition `u` (Algorithm 2 lines
    /// 21–27; step 0 is triggered by the application's `MPI_Pready`).
    /// `early_stage` steps were already staged and sent at activation.
    fn issue_step_sends(&self, ctx: &mut Ctx, u: usize, s: usize) -> Result<(), MpiError> {
        if s >= self.inner.schedule.len() {
            return Ok(());
        }
        let step = &self.inner.schedule.steps[s];
        if !(s != 0 && step.early_stage) {
            self.stage_and_send(ctx, u, s)?;
        }
        let mut states = self.inner.states.lock();
        states[u].pready_complete = step.outgoing.len();
        Ok(())
    }

    /// Copy the outgoing chunk of step `s` into each serving channel's
    /// staging slot and mark it ready.
    fn stage_and_send(&self, ctx: &mut Ctx, u: usize, s: usize) -> Result<(), MpiError> {
        let step = &self.inner.schedule.steps[s];
        for &o in &step.outgoing {
            self.inner.completion_lookups.fetch_add(1, Ordering::Relaxed);
            let ci = self.inner.send_of_peer[o];
            debug_assert_ne!(ci, NO_ENTRY, "send channel exists");
            let ch = &self.inner.send[ci as usize];
            let j = ch.slot_of_step[s] as usize;
            let slot = u * ch.steps.len() + j;
            // Stage the outgoing chunk (device-local copy), then Pready.
            let src_off = self.chunk_off(u, step.ready_offset);
            ch.stage.copy_from_buffer(
                slot * self.inner.chunk_bytes,
                &self.inner.buffer,
                src_off,
                self.inner.chunk_bytes,
            );
            ctx.advance(self.copy_cost());
            ch.sreq.pready(ctx, slot)?;
        }
        Ok(())
    }

    /// One sweep of Algorithm 2 over all partition states. Returns `true`
    /// if any partition progressed.
    fn sweep(&self, ctx: &mut Ctx) -> Result<bool, MpiError> {
        let mut progressed = false;
        let total_steps = self.inner.schedule.len();
        for u in 0..self.inner.user_partitions {
            loop {
                let (s, active) = {
                    let states = self.inner.states.lock();
                    (states[u].step, states[u].active)
                };
                if !active || s >= total_steps {
                    break; // line 4: continue past finished partitions
                }
                let step = self.inner.schedule.steps[s].clone();
                let step_t0 = ctx.now();
                // Lines 5–13: check/ingest arrivals for this step.
                let mut arrived_now: Vec<(usize, usize)> = Vec::new();
                {
                    let mut states = self.inner.states.lock();
                    let st = &mut states[u];
                    if st.processed.len() != step.incoming.len() {
                        st.processed = vec![false; step.incoming.len()];
                    }
                    for (xi, &inc) in step.incoming.iter().enumerate() {
                        if st.processed[xi] {
                            continue;
                        }
                        self.inner.completion_lookups.fetch_add(1, Ordering::Relaxed);
                        let ci = self.inner.recv_of_peer[inc];
                        debug_assert_ne!(ci, NO_ENTRY, "recv channel exists");
                        let ch = &self.inner.recv[ci as usize];
                        let j = ch.slot_of_step[s] as usize;
                        let slot = u * ch.steps.len() + j;
                        if ch.rreq.parrived(slot) {
                            st.processed[xi] = true;
                            st.parrived_complete += 1;
                            arrived_now.push((inc, slot));
                        }
                    }
                }
                // Apply the op outside the state lock (reductions launch
                // kernels and synchronize the stream).
                for &(inc, slot) in &arrived_now {
                    progressed = true;
                    let ch = &self.inner.recv[self.inner.recv_of_peer[inc] as usize];
                    let dst_off = self.chunk_off(u, step.arrived_offset);
                    let stage_off = slot * self.inner.chunk_bytes;
                    match step.op {
                        StepOp::Sum => self.reduce_chunk(ctx, &ch.stage, stage_off, dst_off),
                        StepOp::Nop => {
                            self.inner.buffer.copy_from_buffer(
                                dst_off,
                                &ch.stage,
                                stage_off,
                                self.inner.chunk_bytes,
                            );
                            ctx.advance(self.copy_cost());
                        }
                    }
                }
                // Lines 14–20: step completion check.
                let advance = {
                    let mut states = self.inner.states.lock();
                    let st = &mut states[u];
                    if st.parrived_complete == step.incoming.len()
                        && st.pready_complete == step.outgoing.len()
                    {
                        st.step += 1;
                        st.parrived_complete = 0;
                        st.pready_complete = 0;
                        st.processed.clear();
                        true
                    } else {
                        false
                    }
                };
                if !advance {
                    break;
                }
                progressed = true;
                // Causal trace: the window this sweep spent completing step
                // `s` of partition `u` (arrival ingestion + reductions).
                ctx.handle().trace().record_causal(
                    "coll_step",
                    step_t0,
                    ctx.now(),
                    Some(self.inner.rank as u32),
                    Some(u as u32),
                    SpanId::NONE,
                );
                // Lines 21–27: issue the next step's sends.
                let next = s + 1;
                if next < total_steps {
                    self.issue_step_sends(ctx, u, next)?;
                } // else: final step reached — no extra data transfer.
            }
        }
        Ok(progressed)
    }

    /// Device reduction of one staged chunk into the main buffer: a kernel
    /// launch followed by `cudaStreamSynchronize` — numerically required
    /// before the chunk can be forwarded (paper §VI-B: the source of the
    /// remaining gap to NCCL).
    fn reduce_chunk(&self, ctx: &mut Ctx, stage: &Buffer, stage_off: usize, dst_off: usize) {
        let elems = self.inner.chunk_bytes / 8;
        let grid = (elems as u32).div_ceil(1024).max(1);
        let buf = self.inner.buffer.clone();
        let stage = stage.clone();
        let spec = KernelSpec::new("pcoll_reduce", grid, 1024)
            .with_memory_traffic(16, 8)
            .with_flops(1.0);
        self.inner.stream.launch(ctx, spec, move |_d| {
            buf.accumulate_f64(dst_off, &stage, stage_off, elems);
        });
        self.inner.stream.synchronize(ctx);
    }

    /// `MPI_Wait`: run Algorithm 2 until every partition finishes the
    /// schedule, then complete the underlying channel epochs.
    ///
    /// With the world's wait watchdog armed, a progression stall longer
    /// than the timeout returns [`MpiError::CollectiveTimeout`] naming the
    /// stuck partition and step instead of spinning forever — the typed
    /// surface for lost arrivals (crashed peers, lost device flag writes).
    /// With [`parcomm_mpi::WorldConfig::recover`] armed instead, a stall of
    /// `detect_us` escalates through the recovery ladder before anything is
    /// fatal: an expired progression-engine lease hands the pending device
    /// notifications to this context (host-drain takeover — the crashed
    /// rank keeps progressing its own collective), then every send
    /// channel's undelivered transports are replayed under a fresh
    /// generation. Only after `max_replays` fruitless rounds does the typed
    /// [`MpiError::Unrecoverable`] surface.
    pub(crate) fn wait(&self, ctx: &mut Ctx) -> Result<(), MpiError> {
        let total = self.inner.schedule.len();
        let mut stall_started: Option<SimTime> = None;
        let mut attempts = 0u32;
        let detect_us = self.stall_bound_us();
        if detect_us.is_some() {
            if let Some(ins) = &self.inner.instruments {
                ins.watchdog_arms.inc();
            }
        }
        loop {
            let progressed = self.sweep(ctx)?;
            let all_done = {
                let states = self.inner.states.lock();
                states.iter().all(|st| st.step >= total)
            };
            if all_done {
                break;
            }
            if progressed {
                stall_started = None;
            } else {
                if let Some(timeout_us) = detect_us {
                    let t0 = *stall_started.get_or_insert(ctx.now());
                    if ctx.now().since(t0).as_micros_f64() >= timeout_us {
                        match &self.inner.recover {
                            None => {
                                if let Some(ins) = &self.inner.instruments {
                                    ins.watchdog_fires.inc();
                                }
                                return Err(self.stall_error(timeout_us, total));
                            }
                            Some(rc) => {
                                if attempts >= rc.max_replays {
                                    if let Some(ins) = &self.inner.instruments {
                                        ins.watchdog_fires.inc();
                                    }
                                    let diag = self.stall_error(timeout_us, total);
                                    return Err(MpiError::Unrecoverable {
                                        rank: self.inner.rank,
                                        context: format!("collective epoch: {diag}"),
                                        attempts,
                                    });
                                }
                                attempts += 1;
                                if self
                                    .inner
                                    .progression
                                    .lease_expired(ctx.now(), rc.lease_us)
                                {
                                    if let Some(ins) = &self.inner.instruments {
                                        ins.recover_lease_expired.inc();
                                        ins.recover_host_drains.inc();
                                    }
                                    // Host takeover of the dead PE's queue:
                                    // activates any partitions whose device
                                    // readiness was never drained. The queue
                                    // pop is the exactly-once point.
                                    self.drain_device(ctx);
                                }
                                for ch in &self.inner.send {
                                    ch.sreq.recover_epoch(ctx);
                                }
                                stall_started = None;
                            }
                        }
                    }
                }
                // Block until any new arrival on any receive channel (or a
                // short poll if a device-side pready is still in flight).
                self.wait_any_arrival(ctx);
            }
        }
        for ch in &self.inner.send {
            ch.sreq.wait(ctx)?;
        }
        for ch in &self.inner.recv {
            ch.rreq.wait(ctx)?;
        }
        Ok(())
    }

    /// The stall-detection bound for the wait loop: the recovery policy's
    /// `detect_us` when armed (capped by the fatal watchdog, if both are
    /// set), else the watchdog alone, else unbounded.
    fn stall_bound_us(&self) -> Option<f64> {
        match (&self.inner.recover, self.inner.watchdog_us) {
            (Some(rc), w) => Some(rc.detect_us.min(w.unwrap_or(f64::INFINITY))),
            (None, w) => w,
        }
    }

    /// Build the [`MpiError::CollectiveTimeout`] for the current stall:
    /// names the first unfinished partition and the step it is parked at.
    fn stall_error(&self, timeout_us: f64, total: usize) -> MpiError {
        let states = self.inner.states.lock();
        let completed = states.iter().filter(|st| st.step >= total).count() as u64;
        let (partition, step) = states
            .iter()
            .enumerate()
            .find(|(_, st)| st.step < total)
            .map(|(u, st)| (u, st.step))
            .unwrap_or((0, 0));
        MpiError::CollectiveTimeout {
            rank: self.inner.rank,
            partition,
            step,
            completed,
            expected: self.inner.user_partitions as u64,
            timeout_us,
        }
    }

    /// Debug helper: print each channel's staging contents (first f64 per
    /// slot). Test-support only.
    #[doc(hidden)]
    pub fn debug_dump_stages(&self, me: usize) {
        for ch in &self.inner.send {
            let v: Vec<f64> =
                (0..ch.steps.len()).map(|j| ch.stage.read_f64(j * self.inner.chunk_bytes)).collect();
            println!("rank {me}: send→{} steps {:?} stage {v:?}", ch.peer, ch.steps);
        }
        for ch in &self.inner.recv {
            let v: Vec<f64> =
                (0..ch.steps.len()).map(|j| ch.stage.read_f64(j * self.inner.chunk_bytes)).collect();
            println!("rank {me}: recv←{} steps {:?} stage {v:?}", ch.peer, ch.steps);
        }
    }

    /// Block until an arrival count changes anywhere (poll-style backstop
    /// for multi-channel waiting). With the watchdog armed, the block is
    /// bounded so the stall check in [`CollectiveEngine::wait`] re-runs.
    ///
    /// Blocking on the receive channel's arrival event is only sound when
    /// every step of this rank's schedule carries an incoming chunk, so
    /// every step-advance is arrival-woken. A ragged-oversubscribed
    /// surplus rank breaks that: its fold steps are send-only and its core
    /// window is pure idle, so the sweep that advances them is woken by
    /// nothing — blocking on its sole receive channel (the final unfold
    /// step) would park the rank for a full watchdog period while its
    /// outgoing work sits unissued. Such schedules poll instead.
    fn wait_any_arrival(&self, ctx: &mut Ctx) {
        let arrival_driven =
            self.inner.schedule.steps.iter().all(|st| !st.incoming.is_empty());
        if arrival_driven && self.inner.recv.len() == 1 {
            let ch = self.inner.recv.first().expect("one");
            let current = ch.rreq.arrived_count();
            let ev = ch.rreq.arrived_event().clone();
            // Wait for at least one more than we've seen (bounded by the
            // channel's slot count).
            let target = (current + 1).min(ch.rreq.user_partitions() as u64);
            if current < target {
                match self.stall_bound_us() {
                    None => ctx.wait_count(&ev, target),
                    Some(timeout_us) => {
                        let _ = ctx.wait_count_timeout(
                            &ev,
                            target,
                            SimDuration::from_micros_f64(timeout_us),
                        );
                    }
                }
            } else {
                ctx.advance(SimDuration::from_micros_f64(self.inner.cost.progress_poll_us));
            }
        } else {
            // Multiple channels: poll at the progression interval.
            ctx.advance(SimDuration::from_micros_f64(self.inner.cost.progress_poll_us));
        }
    }
}
