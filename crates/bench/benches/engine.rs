//! Criterion benchmarks of the simulation engine itself: how fast the
//! discrete-event kernel executes process switches, timed callbacks, and
//! event fan-outs (wall-clock performance of the simulator, not virtual
//! time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parcomm_sim::{Event, SimConfig, SimDuration, Simulation};

fn bench_process_switching(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/process_switch");
    for procs in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter(|| {
                let mut sim = Simulation::new(SimConfig::default());
                for i in 0..procs {
                    sim.spawn(format!("p{i}"), move |ctx| {
                        for _ in 0..100 {
                            ctx.advance(SimDuration::from_nanos(10 + i as u64));
                        }
                    });
                }
                sim.run().expect("bench sim")
            });
        });
    }
    g.finish();
}

fn bench_callback_scheduling(c: &mut Criterion) {
    c.bench_function("engine/callbacks_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default());
            sim.spawn("scheduler", |ctx| {
                let h = ctx.handle();
                let done = Event::new();
                let done2 = done.clone();
                for i in 0..10_000u64 {
                    let done3 = done2.clone();
                    h.schedule_in(SimDuration::from_nanos(i), move |h| {
                        if i == 9_999 {
                            done3.set(h);
                        }
                    });
                }
                ctx.wait(&done);
            });
            sim.run().expect("bench sim")
        });
    });
}

fn bench_event_fanout(c: &mut Criterion) {
    c.bench_function("engine/event_fanout_64_waiters", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default());
            let ev = Event::new();
            for i in 0..64 {
                let ev2 = ev.clone();
                sim.spawn(format!("w{i}"), move |ctx| {
                    ctx.wait(&ev2);
                });
            }
            let ev3 = ev.clone();
            sim.spawn("setter", move |ctx| {
                ctx.advance(SimDuration::from_micros(1));
                ev3.set(&ctx.handle());
            });
            sim.run().expect("bench sim")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_process_switching, bench_callback_scheduling, bench_event_fanout
}
criterion_main!(benches);
