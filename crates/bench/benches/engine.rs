//! Wall-clock benchmarks of the simulation engine itself: how fast the
//! discrete-event kernel executes process switches, timed callbacks, and
//! event fan-outs (host performance of the simulator, not virtual time).
//!
//! Plain harness binary (`harness = false`) on the `parcomm-testkit` timer;
//! run with `cargo bench -p parcomm-bench --bench engine` (pass `--quick`
//! or set `PARCOMM_QUICK=1` for a reduced smoke run).

use std::hint::black_box;

use parcomm_sim::{Event, SimConfig, SimDuration, Simulation};
use parcomm_testkit::timer::{bench, BenchConfig};

fn bench_process_switching(cfg: &BenchConfig) {
    for procs in [2usize, 8, 32] {
        bench(cfg, &format!("engine/process_switch/{procs}"), || {
            let mut sim = Simulation::new(SimConfig::default());
            for i in 0..procs {
                sim.spawn(format!("p{i}"), move |ctx| {
                    for _ in 0..100 {
                        ctx.advance(SimDuration::from_nanos(10 + i as u64));
                    }
                });
            }
            black_box(sim.run().expect("bench sim"));
        });
    }
}

fn bench_callback_scheduling(cfg: &BenchConfig) {
    bench(cfg, "engine/callbacks_10k", || {
        let mut sim = Simulation::new(SimConfig::default());
        sim.spawn("scheduler", |ctx| {
            let h = ctx.handle();
            let done = Event::new();
            let done2 = done.clone();
            for i in 0..10_000u64 {
                let done3 = done2.clone();
                h.schedule_in(SimDuration::from_nanos(i), move |h| {
                    if i == 9_999 {
                        done3.set(h);
                    }
                });
            }
            ctx.wait(&done);
        });
        black_box(sim.run().expect("bench sim"));
    });
}

fn bench_event_fanout(cfg: &BenchConfig) {
    bench(cfg, "engine/event_fanout_64_waiters", || {
        let mut sim = Simulation::new(SimConfig::default());
        let ev = Event::new();
        for i in 0..64 {
            let ev2 = ev.clone();
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.wait(&ev2);
            });
        }
        let ev3 = ev.clone();
        sim.spawn("setter", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            ev3.set(&ctx.handle());
        });
        black_box(sim.run().expect("bench sim"));
    });
}

fn main() {
    let cfg = if parcomm_bench::report::quick_mode() {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    bench_process_switching(&cfg);
    bench_callback_scheduling(&cfg);
    bench_event_fanout(&cfg);
}
