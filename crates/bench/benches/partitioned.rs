//! Criterion benchmarks of complete partitioned point-to-point cycles:
//! wall-clock cost of simulating one epoch for each copy mechanism and
//! aggregation level. These double as regression guards for the simulator
//! hot paths (matching, puts, flag chains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use parcomm_bench::p2p::{measure, P2pMode, P2pParams};
use parcomm_core::CopyMechanism;
use parcomm_gpu::AggLevel;

fn params(grid: u32) -> P2pParams {
    P2pParams { nodes: 1, sender: 0, receiver: 1, grid, block: 1024, iters: 3, seed: 0xBE7C }
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioned/epoch");
    g.bench_function("traditional", |b| {
        b.iter(|| measure(params(4), P2pMode::Traditional));
    });
    g.bench_function("progression_engine", |b| {
        b.iter(|| {
            measure(
                params(4),
                P2pMode::Partitioned {
                    copy: CopyMechanism::ProgressionEngine,
                    agg: AggLevel::Block,
                    transports: 1,
                },
            )
        });
    });
    g.bench_function("kernel_copy", |b| {
        b.iter(|| {
            measure(
                params(4),
                P2pMode::Partitioned {
                    copy: CopyMechanism::KernelCopy,
                    agg: AggLevel::Block,
                    transports: 1,
                },
            )
        });
    });
    g.finish();
}

fn bench_aggregation_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioned/aggregation");
    for (name, agg) in
        [("thread", AggLevel::Thread), ("warp", AggLevel::Warp), ("block", AggLevel::Block)]
    {
        g.bench_with_input(BenchmarkId::from_parameter(name), &agg, |b, &agg| {
            b.iter(|| {
                measure(
                    params(1),
                    P2pMode::Partitioned {
                        copy: CopyMechanism::ProgressionEngine,
                        agg,
                        transports: 1,
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modes, bench_aggregation_levels
}
criterion_main!(benches);
