//! Wall-clock benchmarks of complete partitioned point-to-point cycles:
//! cost of simulating one epoch for each copy mechanism and aggregation
//! level. These double as regression guards for the simulator hot paths
//! (matching, puts, flag chains).
//!
//! Plain harness binary (`harness = false`) on the `parcomm-testkit` timer;
//! run with `cargo bench -p parcomm-bench --bench partitioned`.

use std::hint::black_box;

use parcomm_bench::p2p::{measure, P2pMode, P2pParams};
use parcomm_core::CopyMechanism;
use parcomm_gpu::AggLevel;
use parcomm_testkit::timer::{bench, BenchConfig};

fn params(grid: u32) -> P2pParams {
    P2pParams { nodes: 1, sender: 0, receiver: 1, grid, block: 1024, iters: 3, seed: 0xBE7C }
}

fn bench_modes(cfg: &BenchConfig) {
    bench(cfg, "partitioned/epoch/traditional", || {
        black_box(measure(params(4), P2pMode::Traditional));
    });
    bench(cfg, "partitioned/epoch/progression_engine", || {
        black_box(measure(
            params(4),
            P2pMode::Partitioned {
                copy: CopyMechanism::ProgressionEngine,
                agg: AggLevel::Block,
                transports: 1,
            },
        ));
    });
    bench(cfg, "partitioned/epoch/kernel_copy", || {
        black_box(measure(
            params(4),
            P2pMode::Partitioned {
                copy: CopyMechanism::KernelCopy,
                agg: AggLevel::Block,
                transports: 1,
            },
        ));
    });
}

fn bench_aggregation_levels(cfg: &BenchConfig) {
    for (name, agg) in
        [("thread", AggLevel::Thread), ("warp", AggLevel::Warp), ("block", AggLevel::Block)]
    {
        bench(cfg, &format!("partitioned/aggregation/{name}"), || {
            black_box(measure(
                params(1),
                P2pMode::Partitioned {
                    copy: CopyMechanism::ProgressionEngine,
                    agg,
                    transports: 1,
                },
            ));
        });
    }
}

fn main() {
    let cfg = if parcomm_bench::report::quick_mode() {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    bench_modes(&cfg);
    bench_aggregation_levels(&cfg);
}
