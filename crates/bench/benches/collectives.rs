//! Wall-clock benchmarks of complete collective simulations: partitioned
//! allreduce (schedule engine), the traditional host-staged baseline, and
//! the NCCL model, across world sizes.
//!
//! Plain harness binary (`harness = false`) on the `parcomm-testkit` timer;
//! run with `cargo bench -p parcomm-bench --bench collectives`.

use std::hint::black_box;
use std::sync::Arc;

use parcomm_apps::nccl_for_world;
use parcomm_coll::pallreduce_init;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::MpiWorld;
use parcomm_sim::{Mutex, Simulation};
use parcomm_testkit::timer::{bench, BenchConfig};

#[derive(Copy, Clone)]
enum Which {
    Partitioned,
    Traditional,
    Nccl,
}

fn run_once(nodes: u16, which: Which) -> f64 {
    let mut sim = Simulation::with_seed(0xC011);
    let world = MpiWorld::gh200(&sim, nodes);
    let nccl = nccl_for_world(&world);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let n = partitions * rank.size() * 256;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        match which {
            Which::Partitioned => {
                let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90).expect("init");
                coll.start(ctx).expect("start");
                coll.pbuf_prepare(ctx).expect("pbuf_prepare");
                let c2 = coll.clone();
                stream.launch(ctx, KernelSpec::vector_add(4, 1024), move |d| {
                    c2.pready_device_all(d)
                });
                coll.wait(ctx).expect("wait");
            }
            Which::Traditional => {
                stream.launch(ctx, KernelSpec::vector_add(4, 1024), |_| {});
                stream.synchronize(ctx);
                rank.allreduce_hoststaged_f64(ctx, &buf, 0, n, &stream);
            }
            Which::Nccl => {
                stream.launch(ctx, KernelSpec::vector_add(4, 1024), |_| {});
                let done = nccl.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
                ctx.wait(&done);
            }
        }
        if rank.rank() == 0 {
            *o2.lock() = ctx.now().as_micros_f64();
        }
    });
    sim.run().expect("bench run");
    let v = *out.lock();
    v
}

fn main() {
    let cfg = if parcomm_bench::report::quick_mode() {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    for nodes in [1u16, 2] {
        for (name, which) in [
            ("partitioned", Which::Partitioned),
            ("traditional", Which::Traditional),
            ("nccl", Which::Nccl),
        ] {
            bench(&cfg, &format!("collectives/allreduce_sim/{name}/{nodes}node"), || {
                black_box(run_once(nodes, which));
            });
        }
    }
}
