//! Multi-tenant mux bench: goodput and tail latency as a function of live
//! channel count, copy mechanism, and tenant weight.
//!
//! Every rank of a 4-GPU GH200 node submits `channels` partitioned
//! channels (half sends, half receives, paired ring-wise across ranks) to
//! a [`parcomm_mux::MuxService`] and drains them through batched admission
//! ticks, so a 4096-channel cell coalesces sixteen `tick_batch`-sized
//! `MPIX_Pbuf_prepare` rounds instead of 4096 individual first-call
//! handshakes. Steady-state epochs then apportion drain slots across the
//! eight tenants by smooth weighted round-robin — tenant 0 carries weight
//! 8 against seven weight-1 tenants, so its goodput must come out 8× the
//! others (the fairness verdict the CI `mux` job greps).
//!
//! The grant schedule is a pure function of (weights, channel grid), so
//! every rank computes the identical sequence and the all-to-all pairs up
//! without negotiation; within a sub-round every receive epoch is begun
//! (non-blocking RTR) before any send blocks, the same reply-before-block
//! order the mux tick uses. Each cell is a deterministic simulation
//! digested end to end; output is byte-identical at any `--threads` count.

use std::sync::Arc;

use parcomm_core::{prequest_create, CopyMechanism, PrequestConfig};
use parcomm_gpu::{AggLevel, KernelSpec};
use parcomm_mpi::{MpiWorld, WorldConfig};
use parcomm_mux::{
    ChannelSpec, Direction, MuxChannelId, MuxConfig, MuxService, TenantReport, WeightedFair,
};
use parcomm_obs::attach_jsonl_spill;
use parcomm_sim::{Mutex, Simulation};
use parcomm_sweep::SweepSpec;
use parcomm_testkit::digest;

use crate::report::Experiment;

/// Sim seed for every mux cell.
pub const MUX_SEED: u64 = 0x00B0_55ED;

/// One cell of the sweep grid.
#[derive(Clone, Debug)]
pub struct MuxCellCfg {
    /// Live channels per rank (half sends, half receives). Must be even.
    pub channels: usize,
    /// Tenants sharing the mux; tenant 0 gets weight 8, the rest 1.
    pub tenants: usize,
    /// Copy mechanism for the world's channels (kc adds a device-driven
    /// `pready_all` sweep per sub-round).
    pub mechanism: CopyMechanism,
    /// Steady-state drain rounds after admission (each grants
    /// `channels/2` weighted-fair epoch slots).
    pub rounds: usize,
}

impl MuxCellCfg {
    /// The 8:1 weight vector the fairness verdict is stated against.
    pub fn weights(&self) -> Vec<u64> {
        (0..self.tenants).map(|t| if t == 0 { 8 } else { 1 }).collect()
    }
}

/// What one cell run produces: rank 0's per-tenant reports, the end-to-end
/// run digest, and the virtual time spent in the drain loop.
pub struct MuxCellStats {
    /// Rank 0's per-tenant goodput/epoch/latency totals.
    pub reports: Vec<TenantReport>,
    /// Digest over the full event trace plus per-tenant goodput.
    pub digest: u64,
    /// Virtual µs from the post-admission barrier to the last drain.
    pub elapsed_us: f64,
    /// Channels admitted per rank (sanity: equals `cfg.channels`).
    pub admitted: usize,
    /// Spans spilled to the JSONL sink, when one was attached.
    pub spilled_spans: u64,
}

/// Default channel grid: `--quick` keeps the two small points.
pub fn default_channels(quick: bool) -> Vec<usize> {
    if quick {
        vec![16, 256]
    } else {
        vec![16, 256, 1024, 4096]
    }
}

/// Drain rounds for a channel count: smaller grids run more rounds so
/// every tenant accumulates enough epochs for a stable p99; the 4096-point
/// runs one round (2048 weighted grants) to bound wall-clock. The scaling
/// is logged as an experiment note — never a silent cap.
pub fn rounds_for(channels: usize, quick: bool) -> usize {
    let r = (4096 / channels.max(1)).clamp(1, 6);
    if quick {
        r.min(2)
    } else {
        r
    }
}

/// Channel counts from `--channels 16,256,...` or `PARCOMM_CHANNELS`.
pub fn channels_arg() -> Option<Vec<usize>> {
    fn parse(list: &str) -> Option<Vec<usize>> {
        let channels: Vec<usize> =
            list.split(',').map(|s| s.trim().parse().ok()).collect::<Option<_>>()?;
        (!channels.is_empty() && channels.iter().all(|&c| c >= 2 && c % 2 == 0))
            .then_some(channels)
    }
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--channels" {
            return args.next().as_deref().and_then(parse);
        }
        if let Some(v) = a.strip_prefix("--channels=") {
            return parse(v);
        }
    }
    std::env::var("PARCOMM_CHANNELS").ok().as_deref().and_then(parse)
}

/// Tenant count from `--tenants N` or `PARCOMM_TENANTS` (default 8).
pub fn tenants_arg() -> usize {
    let mut from_cli = None;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--tenants" {
            from_cli = args.next();
        } else if let Some(v) = a.strip_prefix("--tenants=") {
            from_cli = Some(v.to_string());
        }
    }
    from_cli
        .or_else(|| std::env::var("PARCOMM_TENANTS").ok())
        .and_then(|s| s.trim().parse().ok())
        .filter(|&t: &usize| t >= 1)
        .unwrap_or(8)
}

const PARTITIONS: usize = 4;
const PARTITION_BYTES: usize = 256;

/// Run one mux cell. With `spill` set, the trace ring is bounded at 8192
/// spans and evictions stream to that JSONL path (the memory-flat tracing
/// mode for 4096-channel runs).
pub fn mux_cell(cfg: &MuxCellCfg, spill: Option<&str>) -> MuxCellStats {
    assert!(cfg.channels >= 2 && cfg.channels.is_multiple_of(2), "channels must be even");
    let mut sim = Simulation::with_seed(MUX_SEED);
    let trace = sim.trace();
    trace.enable();
    let spill_handle = spill.map(|path| {
        trace.set_capacity(Some(8192));
        attach_jsonl_spill(&trace, path).expect("create trace spill")
    });
    let world = MpiWorld::new(&sim, WorldConfig {
        mechanism: cfg.mechanism,
        shmem_heap_bytes: 32 << 20,
        ..WorldConfig::gh200(1)
    });
    let weights = cfg.weights();
    let pairs = cfg.channels / 2;
    let out: Arc<Mutex<(Vec<TenantReport>, f64, usize)>> =
        Arc::new(Mutex::new((Vec::new(), 0.0, 0)));
    let o2 = out.clone();
    let cell = cfg.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let size = rank.size();
        let me = rank.rank();
        let gpu = rank.gpu();
        let device_driven = cell.mechanism == CopyMechanism::KernelCopy;
        let stream = device_driven.then(|| gpu.create_stream());

        // ---- Admission: `pairs` ring-paired channel pairs per rank.
        // Pair i: this rank sends to (me + o) and receives the mirrored
        // channel from (me - o), both under tag 0x7000 + i — the same
        // global grid on every rank, so ticks pair up by construction.
        let mut mux = MuxService::new(rank.world(), MuxConfig {
            tenant_weights: weights.clone(),
            tick_batch: 256,
            max_in_flight: cell.channels + 8,
        });
        let tenant_of = |pair: usize| pair % cell.tenants;
        for i in 0..pairs {
            let o = 1 + (i % (size - 1));
            let spec = |peer: usize, direction: Direction| ChannelSpec {
                tenant: tenant_of(i),
                peer,
                tag: 0x7000 + i as u64,
                partitions: PARTITIONS,
                partition_bytes: PARTITION_BYTES,
                direction,
            };
            let buf = || gpu.alloc_global(PARTITIONS * PARTITION_BYTES);
            mux.submit(spec((me + o) % size, Direction::Send), buf()).expect("submit send");
            mux.submit(spec((me + size - o) % size, Direction::Recv), buf())
                .expect("submit recv");
        }
        let mut admitted: Vec<MuxChannelId> = Vec::new();
        while mux.pending() > 0 {
            admitted.extend(mux.tick(ctx, rank).expect("mux tick"));
        }
        assert_eq!(admitted.len(), cell.channels, "every submission admitted");

        // Per-pair channel ids (admitted order is deterministic but
        // tenant-sorted, so recover by tag + direction).
        let mut send_of = vec![None; pairs];
        let mut recv_of = vec![None; pairs];
        for &id in &admitted {
            let s = &mux.channel(id).expect("live").spec;
            let pair = (s.tag - 0x7000) as usize;
            match s.direction {
                Direction::Send => send_of[pair] = Some(id),
                Direction::Recv => recv_of[pair] = Some(id),
            }
        }
        let send_of: Vec<MuxChannelId> = send_of.into_iter().map(|s| s.expect("send")).collect();
        let recv_of: Vec<MuxChannelId> = recv_of.into_iter().map(|r| r.expect("recv")).collect();
        let preq_of: Vec<Option<parcomm_core::DevicePrequest>> = send_of
            .iter()
            .map(|&sid| {
                stream.is_some().then(|| {
                    let sreq = mux
                        .channel(sid)
                        .and_then(|c| c.chan.send().cloned())
                        .expect("send channel");
                    let want = PrequestConfig {
                        copy: CopyMechanism::KernelCopy,
                        agg: AggLevel::Block,
                        transport_partitions: 1,
                        multi_block_counters: true,
                    };
                    prequest_create(ctx, rank, &sreq, want).unwrap_or_else(|_| {
                        prequest_create(ctx, rank, &sreq, PrequestConfig {
                            copy: CopyMechanism::ProgressionEngine,
                            ..want
                        })
                        .expect("PE prequest always available")
                    })
                })
            })
            .collect();

        // ---- Drain rounds: every round grants `pairs` epoch slots by
        // smooth weighted round-robin over tenants (cursor rotating each
        // tenant's own pairs), so grant counts track the 8:1 weights. The
        // schedule is a pure function of (weights, grid) — identical on
        // every rank. A pair granted k times runs k epochs, one per
        // sub-round; sub-round ordering keeps receives ahead of sends.
        let pairs_of_tenant: Vec<Vec<usize>> = (0..cell.tenants)
            .map(|t| (0..pairs).filter(|&i| tenant_of(i) == t).collect())
            .collect();
        let eligible: Vec<bool> = pairs_of_tenant.iter().map(|p| !p.is_empty()).collect();
        let mut wf = WeightedFair::new(&weights);
        let mut cursor = vec![0usize; cell.tenants];
        rank.barrier(ctx);
        let t0 = ctx.now();
        for _round in 0..cell.rounds {
            let mut grants = vec![0u32; pairs];
            for _slot in 0..pairs {
                let t = wf.pick(&eligible).expect("some tenant has pairs");
                let list = &pairs_of_tenant[t];
                grants[list[cursor[t] % list.len()]] += 1;
                cursor[t] += 1;
            }
            let max_mult = grants.iter().copied().max().unwrap_or(0);
            for sub in 0..max_mult {
                let active: Vec<usize> =
                    (0..pairs).filter(|&i| grants[i] > sub).collect();
                // Receives first: non-blocking RTR for every active pair.
                let mut recv_waits = Vec::with_capacity(active.len());
                for &i in &active {
                    let chan = mux.begin_epoch(ctx, recv_of[i]).expect("recv epoch");
                    recv_waits.push(chan.recv().expect("recv channel").clone());
                }
                match &stream {
                    Some(stream) => {
                        // One kernel sweeps MPIX_Pready over every active
                        // channel's device prequest.
                        let mut waits = Vec::with_capacity(active.len());
                        let mut preqs = Vec::with_capacity(active.len());
                        for &i in &active {
                            let chan = mux.begin_epoch(ctx, send_of[i]).expect("send epoch");
                            waits.push((send_of[i], chan.send().expect("send").clone()));
                            preqs.push(preq_of[i].clone().expect("device prequest"));
                        }
                        let t0 = ctx.now().as_micros_f64();
                        let spec =
                            KernelSpec::new("mux-pready", preqs.len().max(1) as u32, 256);
                        let _ = stream.launch(ctx, spec, move |d| {
                            for preq in &preqs {
                                preq.pready_all(d);
                            }
                        });
                        for (sid, s) in waits {
                            s.wait(ctx).expect("send wait");
                            let dt = ctx.now().as_micros_f64() - t0;
                            let (tenant, bytes) = {
                                let ch = mux.channel(sid).expect("live");
                                (ch.spec.tenant, ch.spec.bytes())
                            };
                            mux.record_epoch(tenant, bytes, dt);
                        }
                    }
                    None => {
                        for &i in &active {
                            mux.run_host_send_epoch(ctx, send_of[i]).expect("send epoch");
                        }
                    }
                }
                for r in recv_waits {
                    r.wait(ctx).expect("recv wait");
                }
            }
        }
        if me == 0 {
            *o2.lock() = (
                mux.tenant_stats(),
                ctx.now().since(t0).as_micros_f64(),
                admitted.len(),
            );
        }
    });
    let report = sim.run().expect("mux cell sim");
    let (reports, elapsed_us, admitted) = {
        let locked = out.lock();
        locked.clone()
    };
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    for r in &reports {
        d.write_u64(r.goodput_bytes);
        d.write_u64(r.epochs);
    }
    let spilled_spans = spill_handle.map(|s| s.written()).unwrap_or(0);
    MuxCellStats { reports, digest: d.finish(), elapsed_us, admitted, spilled_spans }
}

/// Numeric mechanism code for the result rows (pe=0, kc=1, shmem=2).
fn mech_code(m: CopyMechanism) -> f64 {
    match m {
        CopyMechanism::ProgressionEngine => 0.0,
        CopyMechanism::KernelCopy => 1.0,
        CopyMechanism::Shmem => 2.0,
    }
}

/// Run the mux sweep with the shared CLI/env policy.
pub fn run(quick: bool) -> Experiment {
    let channels = channels_arg().unwrap_or_else(|| default_channels(quick));
    run_threaded(&channels, tenants_arg(), quick, crate::report::threads())
}

/// [`run`] with an explicit channel grid, tenant count, and worker count.
pub fn run_threaded(
    channels: &[usize],
    tenants: usize,
    quick: bool,
    threads: usize,
) -> Experiment {
    let mechanisms = [
        CopyMechanism::ProgressionEngine,
        CopyMechanism::KernelCopy,
        CopyMechanism::Shmem,
    ];
    let mut exp = Experiment::new(
        "mux",
        "Multi-tenant mux: per-tenant goodput and tail latency vs channel count \
         (4 GH200 ranks, tenant 0 at weight 8 vs weight-1 peers)",
        &[
            "channels", "mech", "tenant", "weight", "epochs", "goodput_mb", "p50_us",
            "p99_us",
        ],
    );
    let mut spec = SweepSpec::new();
    for &c in channels {
        for m in mechanisms {
            let rounds = rounds_for(c, quick);
            spec.cell(format!("channels={c},mech={}", m.short_name()), move || {
                let cfg = MuxCellCfg { channels: c, tenants, mechanism: m, rounds };
                let stats = mux_cell(&cfg, None);
                let mut rows = Vec::new();
                for r in &stats.reports {
                    rows.push(vec![
                        c as f64,
                        mech_code(m),
                        r.tenant as f64,
                        r.weight as f64,
                        r.epochs as f64,
                        r.goodput_bytes as f64 / (1024.0 * 1024.0),
                        r.latency_quantile_us(0.50),
                        r.latency_quantile_us(0.99),
                    ]);
                }
                let mut notes = vec![format!(
                    "channels={c},mech={}: {} rounds, digest 0x{:016x}, virtual {:.1} us",
                    m.short_name(),
                    rounds,
                    stats.digest,
                    stats.elapsed_us
                )];
                notes.push(fairness_note(c, m, &stats.reports, tenants));
                (rows, notes)
            });
        }
    }
    for (rows, notes) in spec.run(threads).into_values().expect("mux sweep") {
        for row in rows {
            exp.push_row(row);
        }
        for n in notes {
            exp.note(n);
        }
    }
    exp.note(format!(
        "mechanism codes: pe=0 kc=1 shmem=2; rounds scale as min(6, 4096/channels) \
         (quick caps at 2) so large grids bound wall-clock — scaling is explicit, \
         not a silent cap; tenants={tenants}"
    ));
    exp
}

/// The grep-able fairness verdict: tenant 0 (weight 8) against the mean
/// weight-1 tenant, PASS when the goodput ratio lands within 20% of 8.
fn fairness_note(
    channels: usize,
    m: CopyMechanism,
    reports: &[TenantReport],
    tenants: usize,
) -> String {
    if tenants < 2 {
        return format!(
            "mux weighted fairness verdict: SKIP (channels={channels},mech={}, \
             single tenant)",
            m.short_name()
        );
    }
    let g0 = reports[0].goodput_bytes as f64;
    let rest: f64 = reports[1..].iter().map(|r| r.goodput_bytes as f64).sum::<f64>()
        / (tenants - 1) as f64;
    let want = reports[0].weight as f64 / reports[1].weight as f64;
    let ratio = if rest > 0.0 { g0 / rest } else { f64::INFINITY };
    let verdict = if (ratio - want).abs() / want <= 0.20 { "PASS" } else { "FAIL" };
    format!(
        "mux weighted fairness verdict: {verdict} (channels={channels},mech={}, \
         tenant0/mean-rest goodput ratio {ratio:.2} vs weight ratio {want:.1})",
        m.short_name()
    )
}
