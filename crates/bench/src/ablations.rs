//! Ablation studies on the design choices DESIGN.md §7 calls out:
//!
//! - **Progression-engine poll interval**: the PE-copy path's latency is
//!   bounded below by how often the host progress thread looks at the
//!   pinned notification flags.
//! - **Transport partition count**: how many puts an epoch is split into
//!   (the paper reports one best intra-node, two best inter-node for
//!   large kernels).
//! - **Multi-block counter aggregation**: GPU-global counters collapsing
//!   per-block notifications into one host write per transport partition.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
use parcomm_gpu::{AggLevel, KernelSpec};
use parcomm_mpi::{MpiWorld, WorldConfig};
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::p2p::{goodput_gbps, measure, P2pMode, P2pParams};
use crate::report::Experiment;

/// Poll-interval sensitivity of the Progression-Engine copy path.
pub fn run_poll_interval(quick: bool) -> Experiment {
    run_poll_interval_threaded(quick, crate::report::threads())
}

/// [`run_poll_interval`] with an explicit sweep worker count.
pub fn run_poll_interval_threaded(quick: bool, threads: usize) -> Experiment {
    let polls = if quick { vec![0.5f64, 4.0] } else { vec![0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] };
    let mut exp = Experiment::new(
        "ablation_poll",
        "PE-copy single-epoch latency (µs) vs progression-engine poll interval",
        &["poll_us", "epoch_us"],
    );
    let mut spec = SweepSpec::new();
    for &poll in &polls {
        spec.cell(format!("poll={poll}"), move || vec![poll, pe_epoch_with_poll(poll)]);
    }
    for row in spec.run(threads).into_values().expect("poll sweep") {
        exp.push_row(row);
    }
    let first = exp.rows.first().map(|r| r[1]).unwrap_or(0.0);
    let last = exp.rows.last().map(|r| r[1]).unwrap_or(0.0);
    exp.note(format!(
        "epoch latency grows {:.1} µs across the sweep — roughly the added mean poll delay; \
         sub-µs polling buys little because the put-post and wire latencies dominate",
        last - first
    ));
    exp
}

fn pe_epoch_with_poll(poll_us: f64) -> f64 {
    let mut sim = Simulation::with_seed(0xAB01);
    let mut config = WorldConfig::gh200(1);
    config.progress_poll_us = poll_us;
    let world = MpiWorld::new(&sim, config);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 256usize;
        let buf = rank.gpu().alloc_global(parts * 8);
        let stream = rank.gpu().create_stream();
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 6, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig::default()).unwrap();
                let t0 = ctx.now();
                let p2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, 256), move |d| p2.pready_all(d));
                sreq.wait(ctx).expect("wait");
                *o2.lock() = ctx.now().since(t0).as_micros_f64();
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 6, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().expect("poll ablation");
    let v = *out.lock();
    v
}

/// Transport-partition sweep, intra-node and inter-node (the paper's
/// §VI-A finding: one best intra-node, two best inter-node for large
/// kernels).
pub fn run_transport_sweep(quick: bool) -> Experiment {
    run_transport_sweep_threaded(quick, crate::report::threads())
}

/// [`run_transport_sweep`] with an explicit sweep worker count.
pub fn run_transport_sweep_threaded(quick: bool, threads: usize) -> Experiment {
    run_transport_sweep_mech(quick, threads, CopyMechanism::ProgressionEngine)
}

/// [`run_transport_sweep`] over an explicit copy mechanism (the
/// `--mechanism` axis): under `Shmem` the intra-node pair rides symmetric
/// puts while the inter-node pair measures the typed PE fallback.
pub fn run_transport_sweep_mech(
    quick: bool,
    threads: usize,
    mechanism: CopyMechanism,
) -> Experiment {
    let transports = if quick { vec![1usize, 2] } else { vec![1, 2, 4, 8, 16] };
    let grid = 2048u32; // 16 MB payload: squarely in the large regime
    let mut exp = Experiment::new(
        "ablation_transport",
        "Goodput (GB/s) vs transport partition count, 2048-grid kernels",
        &["transports", "intra_gbps", "inter_gbps"],
    );
    exp.note(format!("copy mechanism: {}", mechanism.short_name()));
    let mut spec = SweepSpec::new();
    for &t in &transports {
        spec.cell(format!("transports={t}"), move || transport_row(t, grid, quick, mechanism));
    }
    for row in spec.run(threads).into_values().expect("transport sweep") {
        exp.push_row(row);
    }
    let knee_intra = knee_row(&exp, 1);
    let knee_inter = knee_row(&exp, 2);
    exp.note(format!(
        "gains knee (≥98% of best) at {knee_intra} transport partition(s) intra-node and \
         {knee_inter} inter-node — splitting beyond a couple of puts buys almost nothing, \
         consistent with the paper settling on 1 (intra) / 2 (inter); our per-put software \
         cost is small relative to the compute-overlap gain, so the curve stays weakly \
         monotone instead of peaking"
    ));
    exp
}

/// One transport-sweep row: intra- and inter-node goodput at `t` puts.
fn transport_row(t: usize, grid: u32, quick: bool, mechanism: CopyMechanism) -> Vec<f64> {
    let intra = measure(
        P2pParams {
            nodes: 1,
            sender: 0,
            receiver: 1,
            grid,
            block: 1024,
            iters: if quick { 2 } else { 8 },
            seed: 0xAB02,
        },
        P2pMode::Partitioned { copy: mechanism, agg: AggLevel::Block, transports: t },
    );
    let inter = measure(
        P2pParams {
            nodes: 2,
            sender: 0,
            receiver: 4,
            grid,
            block: 1024,
            iters: if quick { 2 } else { 8 },
            seed: 0xAB03,
        },
        P2pMode::Partitioned { copy: mechanism, agg: AggLevel::Block, transports: t },
    );
    let bytes = grid as usize * 1024 * 8;
    vec![t as f64, goodput_gbps(bytes, intra), goodput_gbps(bytes, inter)]
}

/// Smallest transport count achieving ≥ 98 % of the column's best value.
fn knee_row(exp: &Experiment, col: usize) -> usize {
    let best = exp.rows.iter().map(|r| r[col]).fold(f64::MIN, f64::max);
    exp.rows
        .iter()
        .find(|r| r[col] >= 0.98 * best)
        .map(|r| r[0] as usize)
        .unwrap_or(0)
}

/// Multi-block counter aggregation on/off across grid sizes.
pub fn run_counter_aggregation(quick: bool) -> Experiment {
    run_counter_aggregation_threaded(quick, crate::report::threads())
}

/// [`run_counter_aggregation`] with an explicit sweep worker count.
pub fn run_counter_aggregation_threaded(quick: bool, threads: usize) -> Experiment {
    let grids = if quick { vec![4u32, 64] } else { vec![2, 8, 32, 128, 512] };
    let mut exp = Experiment::new(
        "ablation_counters",
        "Device pready kernel extension (µs): per-block writes vs GPU-global counters",
        &["blocks", "per_block_us", "counters_us"],
    );
    let mut spec = SweepSpec::new();
    for &grid in &grids {
        spec.cell(format!("blocks={grid}"), move || {
            vec![grid as f64, pready_ext(grid, false), pready_ext(grid, true)]
        });
    }
    for row in spec.run(threads).into_values().expect("counter sweep") {
        exp.push_row(row);
    }
    exp.note(
        "counters keep the cost flat in the block count (one host write per transport \
         partition plus cheap global atomics) — the paper's design for multi-block kernels",
    );
    exp
}

fn pready_ext(grid: u32, counters: bool) -> f64 {
    let mut sim = Simulation::with_seed(0xAB04 ^ grid as u64);
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = grid as usize * 1024;
        let buf = rank.gpu().alloc_global(parts * 8);
        let stream = rank.gpu().create_stream();
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 8, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        copy: CopyMechanism::ProgressionEngine,
                        agg: AggLevel::Block,
                        transport_partitions: 1,
                        multi_block_counters: counters,
                    },
                )
                .unwrap();
                let plain = stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
                ctx.wait(&plain.done);
                let p2 = preq.clone();
                let with = stream
                    .launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| p2.pready_all(d));
                ctx.wait(&with.done);
                sreq.wait(ctx).expect("wait");
                *o2.lock() =
                    with.duration().as_micros_f64() - plain.duration().as_micros_f64();
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 8, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().expect("counter ablation");
    let v = *out.lock();
    v
}

/// Goodput degradation under injected fabric chaos (`parcomm-fault`).
///
/// Sweeps the chaos `rate` knob for a fixed fault seed: each row runs the
/// canonical 8-rank partitioned allreduce on two nodes under
/// `FaultPlan::chaos(seed, rate)` and reports the virtual completion time
/// and the goodput relative to the fault-free run. Survivable-by-
/// construction: the `survived` column must stay 1.0, and the numerics are
/// asserted bit-identical to fault-free before a row is reported.
pub fn run_fault_goodput(quick: bool, fault_seed: u64) -> Experiment {
    run_fault_goodput_threaded(quick, fault_seed, crate::report::threads())
}

/// [`run_fault_goodput`] with an explicit sweep worker count. The clean
/// baseline runs once up front; each rate is then an independent cell.
pub fn run_fault_goodput_threaded(quick: bool, fault_seed: u64, threads: usize) -> Experiment {
    use parcomm_fault::{chaos, FaultPlan};

    let rates: Vec<f64> =
        if quick { vec![0.0, 0.5, 1.0] } else { vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0] };
    let mut exp = Experiment::new(
        "ablation_faults",
        "partitioned allreduce (2 nodes) under injected chaos: completion time vs fault rate",
        &["fault_rate", "end_time_us", "rel_goodput", "survived"],
    );
    const SIM_SEED: u64 = 0xFA017;
    let clean = chaos::run_allreduce(SIM_SEED, &FaultPlan::none(), 2);
    let mut spec = SweepSpec::new();
    for &rate in &rates {
        let clean = clean.clone();
        spec.cell(format!("rate={rate}"), move || {
            let run = if rate == 0.0 {
                clean.clone()
            } else {
                chaos::run_allreduce(
                    SIM_SEED,
                    &FaultPlan::chaos(fault_seed, rate).expect("sweep rates are in [0, 1]"),
                    2,
                )
            };
            assert_eq!(
                run.numeric, clean.numeric,
                "chaos(rate={rate}) corrupted the reduction — fault model broken"
            );
            let survived = if run.survived() { 1.0 } else { 0.0 };
            vec![rate, run.end_time_us, clean.end_time_us / run.end_time_us, survived]
        });
    }
    for row in spec.run(threads).into_values().expect("fault sweep") {
        exp.push_row(row);
    }
    exp.note(format!(
        "fault seed {fault_seed:#x}: drops/spikes/NIC-outages degrade goodput, never numerics; \
         rerunning with the same seed reproduces this table bit for bit"
    ));
    exp
}
