//! Experiment result container and rendering: aligned text tables for the
//! terminal plus JSON for EXPERIMENTS.md bookkeeping.

/// One reproduced table or figure.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Paper label, e.g. `"fig04"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers; column 0 is the x-axis parameter.
    pub columns: Vec<String>,
    /// One row per parameter point.
    pub rows: Vec<Vec<f64>>,
    /// Free-form observations (shape checks, paper anchors).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Create an empty experiment.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Experiment {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (must match the column count).
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch in {}", self.id);
        self.rows.push(row);
    }

    /// Append an observation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let width = 14usize;
        let header: Vec<String> =
            self.columns.iter().map(|c| format!("{c:>width$}")).collect();
        out.push_str(&header.join(" "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.abs() >= 1e6 || (v.abs() < 1e-3 && *v != 0.0) {
                        format!("{v:>width$.3e}")
                    } else {
                        format!("{v:>width$.3}")
                    }
                })
                .collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        out
    }

    /// Serialize to pretty-printed JSON (hand-rolled: the workspace builds
    /// with zero external dependencies, so no `serde`). The field layout
    /// matches what `serde_json` used to emit for this struct.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!(
            "  \"columns\": [{}],\n",
            self.columns.iter().map(|c| json_str(c)).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    [{}]",
                row.iter().map(|v| json_f64(*v)).collect::<Vec<_>>().join(", ")
            ));
        }
        out.push_str(if self.rows.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str(&format!(
            "  \"notes\": [{}]\n",
            self.notes.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(", ")
        ));
        out.push('}');
        out
    }

    /// Print to stdout and, if `PARCOMM_RESULTS_DIR` is set, write
    /// `<dir>/<id>.json`.
    pub fn emit(&self) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("PARCOMM_RESULTS_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{}.json", self.id));
            if let Err(e) = std::fs::create_dir_all(&dir)
                .and_then(|_| std::fs::write(&path, self.to_json()))
            {
                eprintln!("warning: could not write {path:?}: {e}");
            }
        }
    }
}

/// JSON-escape and quote a string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity; experiment
/// data should never contain them, so encode as null if they ever appear
/// (visible in the output rather than a silent panic).
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // Match serde_json's convention: integral floats keep a ".0" suffix so
    // they read back as floats.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v}");
        s
    }
}

/// True when the harness should run a reduced sweep (CI / smoke runs):
/// either `--quick` on the command line or `PARCOMM_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("PARCOMM_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Value following `flag` on the command line, if present.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Output path for the Chrome `trace_event` export: `--trace-out <path>`
/// on the command line or `PARCOMM_TRACE_OUT=<path>`. When set, harnesses
/// that support tracing enable causal span recording and write a
/// Perfetto-loadable JSON trace there (plus folded flamegraph stacks at
/// `<path>.folded`).
pub fn trace_out() -> Option<String> {
    arg_value("--trace-out").or_else(|| std::env::var("PARCOMM_TRACE_OUT").ok())
}

/// Output path for the end-of-run metrics snapshot JSON:
/// `--metrics-out <path>` or `PARCOMM_METRICS_OUT=<path>`.
pub fn metrics_out() -> Option<String> {
    arg_value("--metrics-out").or_else(|| std::env::var("PARCOMM_METRICS_OUT").ok())
}

/// Worker-thread count for the sweep engine: `--threads N` (or
/// `--threads=N`) on the command line, then `PARCOMM_THREADS`, then
/// available parallelism. Every harness fans its parameter grid out over
/// this many workers via `parcomm_sweep::SweepSpec`; output is
/// byte-identical at any thread count.
pub fn threads() -> usize {
    parcomm_sweep::threads()
}

/// Copy mechanism selected on the command line: `--mechanism pe|kc|shmem`
/// (or `PARCOMM_MECHANISM=<short name>`). `None` when unset or
/// unparseable — callers fall back to their own default.
pub fn mechanism() -> Option<parcomm_core::CopyMechanism> {
    arg_value("--mechanism")
        .or_else(|| std::env::var("PARCOMM_MECHANISM").ok())
        .and_then(|s| parcomm_core::CopyMechanism::from_short_name(&s))
}

/// Chaos seed for the fault-injection ablation: `--faults <seed>` on the
/// command line (decimal or `0x`-prefixed hex) or `PARCOMM_FAULTS=<seed>`.
/// `None` means the caller should skip fault runs entirely.
pub fn fault_seed() -> Option<u64> {
    fn parse(s: &str) -> Option<u64> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    }
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--faults" {
            return args.next().as_deref().and_then(parse);
        }
    }
    std::env::var("PARCOMM_FAULTS").ok().as_deref().and_then(parse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_parts() {
        let mut e = Experiment::new("figX", "demo", &["grid", "a", "b"]);
        e.push_row(vec![1.0, 2.5, 3.25]);
        e.note("shape ok");
        let s = e.render();
        assert!(s.contains("figX"));
        assert!(s.contains("grid"));
        assert!(s.contains("3.25"));
        assert!(s.contains("shape ok"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut e = Experiment::new("figY", "demo", &["a", "b"]);
        e.push_row(vec![1.0]);
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut e = Experiment::new("figZ", "demo", &["a"]);
        e.push_row(vec![42.0]);
        let j = e.to_json();
        assert!(j.contains("\"id\": \"figZ\""));
        assert!(j.contains("42.0"));
    }
}
