//! Multi-tenant mux bench: per-tenant goodput and tail latency vs live
//! channel count and copy mechanism.
//!
//! Usage: `mux [--channels 16,256,1024,4096] [--tenants 8] [--quick]
//! [--threads N] [--trace-out <path>]`
//! (`PARCOMM_CHANNELS`, `PARCOMM_TENANTS`, `PARCOMM_QUICK`,
//! `PARCOMM_THREADS`, and `PARCOMM_TRACE_OUT` work too).
//!
//! Output is byte-identical at any `--threads` count — the CI `mux` job
//! diffs a serial run against a 4-worker run and greps the
//! "mux weighted fairness verdict: PASS" line. With `--trace-out` a
//! bounded-ring traced cell also runs, spilling evicted spans to the
//! given JSONL path.

use parcomm_bench as b;
use parcomm_core::CopyMechanism;

fn main() {
    let quick = b::quick_mode();
    let channels = b::mux::channels_arg().unwrap_or_else(|| b::mux::default_channels(quick));
    let tenants = b::mux::tenants_arg();
    b::mux::run_threaded(&channels, tenants, quick, b::threads()).emit();
    if let Some(path) = b::trace_out() {
        // A bounded-ring traced run of the largest requested grid: the
        // ring keeps memory flat and every evicted span streams to the
        // JSONL spill file.
        let c = channels.iter().copied().max().unwrap_or(256);
        let cfg = b::mux::MuxCellCfg {
            channels: c,
            tenants,
            mechanism: CopyMechanism::ProgressionEngine,
            rounds: b::mux::rounds_for(c, quick),
        };
        let stats = b::mux::mux_cell(&cfg, Some(&path));
        println!(
            "trace spill written to {path}: {} spans evicted through the bounded ring \
             (digest 0x{:016x})",
            stats.spilled_spans, stats.digest
        );
    }
}
