//! Regenerate Fig. 3. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig03::run(parcomm_bench::quick_mode()).emit();
}
