//! Deterministic parallel chaos campaign over the `parcomm-sweep` engine.
//!
//! Runs the CI chaos grid — eight fault seeds × two rates of the two-node
//! partitioned allreduce, each cell replayed twice — and prints one report
//! line per cell in grid order. The report is **byte-identical at any
//! worker count**: diff the stdout of a `--threads 1` run against a
//! `--threads 4` run to prove it.
//!
//! Flags:
//! - `--quick` — trim to two seeds (smoke runs);
//! - `--seeds N` — override the fault-seed count (CI uses a widened grid
//!   for the wall-clock speedup check);
//! - `--threads N` / `PARCOMM_THREADS=N` — sweep worker count (default:
//!   available parallelism);
//! - `--out <path>` — stream completed cells to a resumable JSON-lines
//!   sink; a re-run against the same file skips the cells already on disk;
//! - `PARCOMM_CHAOS_SEED` — shift the fault-seed block.
//!
//! Exits non-zero if any cell violates the fault-injection contract
//! (replay divergence, rank errors, or corrupted numerics).

use parcomm_fault::campaign::{self, CampaignConfig};
use parcomm_sweep::JsonlSink;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let mut cfg = CampaignConfig::ci(parcomm_bench::quick_mode());
    if let Some(seeds) = arg_value("--seeds").and_then(|s| s.parse().ok()) {
        cfg.seeds = seeds;
    }
    let threads = parcomm_bench::threads();
    eprintln!(
        "chaos campaign: {} seeds x {} rates x {} stripe counts on {} worker(s)",
        cfg.seeds,
        cfg.rates.len(),
        cfg.stripes.len(),
        threads
    );
    let outcomes = match arg_value("--out") {
        Some(path) => {
            let mut sink = JsonlSink::open(&path).expect("open --out sink");
            let restored = sink.len();
            if restored > 0 {
                eprintln!("resuming: {restored} cell(s) restored from {path}");
            }
            campaign::run_campaign_with_sink(&cfg, threads, &mut sink).expect("campaign sink")
        }
        None => campaign::run_campaign(&cfg, threads),
    };
    for o in &outcomes {
        println!("{}", o.render());
    }
    let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok()).collect();
    if !bad.is_empty() {
        eprintln!("chaos campaign: {} of {} cells FAILED the contract", bad.len(), outcomes.len());
        std::process::exit(1);
    }
    println!("chaos campaign: {} cells ok", outcomes.len());
}
