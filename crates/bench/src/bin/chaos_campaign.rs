//! Deterministic parallel chaos campaign over the `parcomm-sweep` engine.
//!
//! Runs the CI chaos grid — eight fault seeds × two rates of the two-node
//! partitioned allreduce, each cell replayed twice — and prints one report
//! line per cell in grid order. The report is **byte-identical at any
//! worker count**: diff the stdout of a `--threads 1` run against a
//! `--threads 4` run to prove it.
//!
//! Flags:
//! - `--quick` — trim to two seeds (smoke runs);
//! - `--seeds N` — override the fault-seed count (CI uses a widened grid
//!   for the wall-clock speedup check);
//! - `--threads N` / `PARCOMM_THREADS=N` — sweep worker count (default:
//!   available parallelism);
//! - `--out <path>` — stream completed cells to a resumable JSON-lines
//!   sink; a re-run against the same file skips the cells already on disk;
//! - `--fault-plan <file>` — skip the campaign: load one `FaultPlan` from
//!   JSON (e.g. a minimized plan from `results/`), run the two-node
//!   allreduce under it, and report survival — the reproduce-one-cell
//!   workflow;
//! - `--coverage` — run the coverage-guided search instead of the fixed
//!   grid: each round synthesizes plans toward unexplored fault-class ×
//!   layer points, and the first contract failure per cell is bisected to
//!   a minimal failing plan written as JSON under `--min-out`;
//! - `--budget N` — coverage-mode cell budget (default 36);
//! - `--recover` / `--no-recover` — arm (default) or disarm the recovery
//!   escalation ladder; the contract adapts (e.g. a PE crash is *expected*
//!   to be a typed failure when recovery is off);
//! - `--min-out <dir>` — where minimized failing plans land (default
//!   `results`);
//! - `--mechanism pe|kc|shmem` (or `PARCOMM_MECHANISM`) — the copy
//!   mechanism every cell's world negotiates, the mechanism axis of the
//!   point space; under `shmem` the coverage search additionally targets
//!   the shmem-signal fault classes (default `pe`);
//! - `--channels N` — the multiplexed-load axis (canonical values 1, 64,
//!   1024): above 1 every cell (grid or coverage) observes the
//!   mux-admitted MoE dispatch/combine workload instead of the single
//!   collective, so fault classes land on N-channel multiplexed traffic
//!   and coverage points gain a `cN:` qualifier (default 1);
//! - `--shape uniform|ragged|oversub` — the topology-shape axis of the
//!   coverage search: cells run on the classic uniform testbed, a ragged
//!   4/2-GPU 2/1-NIC world, or the same ragged world at 2:1 rank
//!   oversubscription; non-uniform points gain a `ragged:`/`oversub:`
//!   qualifier and minimized failures carry the `--topology` spec
//!   (default `uniform`);
//! - `PARCOMM_CHAOS_SEED` — shift the fault-seed block.
//!
//! Exits non-zero if any cell violates the fault-injection contract
//! (replay divergence, rank errors, or corrupted numerics).

use parcomm_fault::coverage::{self, CoverageCampaignConfig};
use parcomm_fault::campaign::{self, CampaignConfig};
use parcomm_fault::{chaos, FaultPlan};
use parcomm_recover::{RecoveryReport, run_allreduce_recovering, RecoverPolicy};
use parcomm_sweep::JsonlSink;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// `--channels N`: the multiplexed-load axis (1 = classic workloads).
fn channels_arg() -> usize {
    let n: usize = arg_value("--channels").and_then(|s| s.parse().ok()).unwrap_or(1);
    assert!(n >= 1, "--channels must be at least 1");
    n
}

/// `--fault-plan <file>`: reproduce one plan (minimized or hand-written)
/// against the canonical two-node allreduce and report what happened.
fn run_one_plan(path: &str, recover: bool) -> ! {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--fault-plan {path}: {e}");
        std::process::exit(2);
    });
    let plan = FaultPlan::from_json_str(&body).unwrap_or_else(|e| {
        eprintln!("--fault-plan {path}: invalid plan: {e}");
        std::process::exit(2);
    });
    let run = if recover {
        run_allreduce_recovering(0xFA017, &plan, 2, &RecoverPolicy::new())
    } else {
        chaos::run_allreduce(0xFA017, &plan, 2)
    };
    let report = RecoveryReport::from_metrics(&run.metrics);
    println!(
        "plan {path}: survived={} digest={:#018x} end={:.1}us recover={recover} {report:?}",
        run.survived(),
        run.digest,
        run.end_time_us
    );
    for (rank, err) in &run.errors {
        println!("  rank {rank}: {err}");
    }
    std::process::exit(if run.survived() { 0 } else { 1 });
}

/// `--coverage`: the guided campaign, plus minimized-failure emission.
fn run_coverage(threads: usize, recover: bool) -> ! {
    let mut cfg = CoverageCampaignConfig { recover, ..CoverageCampaignConfig::default() };
    if let Some(budget) = arg_value("--budget").and_then(|s| s.parse().ok()) {
        cfg.budget = budget;
    }
    if let Some(m) = parcomm_bench::mechanism() {
        cfg.mechanism = m;
    }
    cfg.channels = channels_arg();
    if let Some(s) = arg_value("--shape") {
        cfg.shape = match s.as_str() {
            "uniform" => coverage::TopologyShape::Uniform,
            "ragged" => coverage::TopologyShape::Ragged,
            "oversub" => coverage::TopologyShape::Oversubscribed,
            other => {
                eprintln!("--shape {other}: expected uniform|ragged|oversub");
                std::process::exit(2);
            }
        };
    }
    if parcomm_bench::quick_mode() {
        cfg.budget = cfg.budget.min(12);
    }
    eprintln!(
        "coverage campaign: budget {} on {} worker(s), recovery {}, mechanism {}, channels {}, shape {}",
        cfg.budget,
        threads,
        if recover { "armed" } else { "off" },
        cfg.mechanism.short_name(),
        cfg.channels,
        cfg.shape.key()
    );
    let report = coverage::run_coverage_campaign(&cfg, threads);
    print!("{}", report.render());
    if !report.failures.is_empty() {
        let dir = arg_value("--min-out").unwrap_or_else(|| "results".to_string());
        std::fs::create_dir_all(&dir).expect("create --min-out dir");
        for f in &report.failures {
            let slug: String = f
                .target
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let path = format!("{dir}/chaos_min_{slug}.json");
            std::fs::write(&path, f.to_json_string()).expect("write minimized plan");
            eprintln!("minimized failing plan ({} shrink steps) -> {path}", f.shrink_steps);
        }
        eprintln!(
            "coverage campaign: {} of {} cells FAILED the contract",
            report.failures.len(),
            report.outcomes.len()
        );
        std::process::exit(1);
    }
    println!(
        "coverage campaign: {} cells ok, {} coverage points",
        report.outcomes.len(),
        report.covered.len()
    );
    std::process::exit(0);
}

fn main() {
    let recover = !arg_flag("--no-recover");
    if let Some(path) = arg_value("--fault-plan") {
        run_one_plan(&path, recover);
    }
    if arg_flag("--coverage") {
        run_coverage(parcomm_bench::threads(), recover);
    }
    let mut cfg = CampaignConfig::ci(parcomm_bench::quick_mode());
    if let Some(seeds) = arg_value("--seeds").and_then(|s| s.parse().ok()) {
        cfg.seeds = seeds;
    }
    if let Some(m) = parcomm_bench::mechanism() {
        cfg.mechanism = m;
    }
    cfg.channels = channels_arg();
    let threads = parcomm_bench::threads();
    eprintln!(
        "chaos campaign: {} seeds x {} rates x {} stripe counts on {} worker(s), mechanism {}, channels {}",
        cfg.seeds,
        cfg.rates.len(),
        cfg.stripes.len(),
        threads,
        cfg.mechanism.short_name(),
        cfg.channels
    );
    let outcomes = match arg_value("--out") {
        Some(path) => {
            let mut sink = JsonlSink::open(&path).expect("open --out sink");
            let restored = sink.len();
            if restored > 0 {
                eprintln!("resuming: {restored} cell(s) restored from {path}");
            }
            campaign::run_campaign_with_sink(&cfg, threads, &mut sink).expect("campaign sink")
        }
        None => campaign::run_campaign(&cfg, threads),
    };
    for o in &outcomes {
        println!("{}", o.render());
    }
    let bad: Vec<_> = outcomes.iter().filter(|o| !o.ok()).collect();
    if !bad.is_empty() {
        eprintln!("chaos campaign: {} of {} cells FAILED the contract", bad.len(), outcomes.len());
        std::process::exit(1);
    }
    println!("chaos campaign: {} cells ok", outcomes.len());
}
