//! Partitioned-communication micro-benchmarks (latency, partition-count
//! overhead, overlap efficiency), in the style of the authors' ICPP'22
//! suite. Pass `--quick` for reduced sweeps.
use parcomm_bench as b;

fn main() {
    let q = b::quick_mode();
    b::pbench::run_latency(q).emit();
    b::pbench::run_partition_overhead(q).emit();
    b::pbench::run_overlap(q).emit();
}
