//! Regenerate Fig. 4. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig0405::run_fig04(parcomm_bench::quick_mode()).emit();
}
