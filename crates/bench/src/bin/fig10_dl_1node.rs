//! Regenerate Fig. 10. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig1011::run_fig10(parcomm_bench::quick_mode()).emit();
}
