//! Run every table/figure harness in paper order. Pass `--quick` for a
//! smoke run; set `PARCOMM_RESULTS_DIR` to save JSON next to the text.
//! Pass `--threads N` (or `PARCOMM_THREADS=N`) to bound the sweep-engine
//! worker count — each harness fans its parameter grid out in parallel,
//! and the output is byte-identical at any thread count (default:
//! available parallelism).
//! Pass `--faults <seed>` to additionally run the whole suite's fault
//! ablation: the canonical allreduce under seeded chaos at increasing
//! fault rates (goodput vs fault rate, deterministic per seed).
//! Pass `--trace-out <path>` / `--metrics-out <path>` to additionally run
//! the traced 1K-grid partitioned allreduce and export a Perfetto-loadable
//! Chrome trace (plus `<path>.folded` flamegraph stacks), a metrics
//! snapshot, and a critical-path report.
use parcomm_bench as b;

fn main() {
    let q = b::quick_mode();
    b::fig02::run(q).emit();
    b::fig03::run(q).emit();
    b::fig0405::run_fig04(q).emit();
    b::fig0405::run_fig05(q).emit();
    b::fig0607::run_fig06(q).emit();
    b::fig0607::run_fig07(q).emit();
    b::table1::run(q).emit();
    b::fig0809::run_fig08(q).emit();
    b::fig0809::run_fig09(q).emit();
    b::fig1011::run_fig10(q).emit();
    b::fig1011::run_fig11(q).emit();
    b::striping::run(q).emit();
    if let Some(seed) = b::fault_seed() {
        b::ablations::run_fault_goodput(q, seed).emit();
    }
    b::obsrun::emit_requested_outputs(q);
}
