//! Regenerate Fig. 6. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig0607::run_fig06(parcomm_bench::quick_mode()).emit();
}
