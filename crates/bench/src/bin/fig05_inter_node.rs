//! Regenerate Fig. 5. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig0405::run_fig05(parcomm_bench::quick_mode()).emit();
}
