//! Regenerate Fig. 8. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig0809::run_fig08(parcomm_bench::quick_mode()).emit();
}
