//! Scaling bench: flat vs hierarchical partitioned allreduce goodput
//! across a node-count grid or an explicit `--topology` shape grid.
//!
//! Usage: `scaling [--nodes 1,2,4,8,16] [--quick] [--threads N]`
//! or `scaling --topology "2x4;4,2,4,1:2,1,2,1@2"` — semicolon-separated
//! cluster specs in the `--topology` grammar (uniform `NxG[xK][@O]`,
//! ragged `G1,G2,…[:K1,K2,…][@O]`), each becoming one sweep cell.
//! (`PARCOMM_NODES`, `PARCOMM_TOPOLOGY`, `PARCOMM_QUICK`, and
//! `PARCOMM_THREADS` work too.)

use parcomm_bench as b;

fn main() {
    let quick = b::quick_mode();
    if let Some(specs) = b::scaling::topology_arg() {
        b::scaling::run_scaling_specs(&specs, quick).emit();
        return;
    }
    let nodes = b::scaling::nodes_arg().unwrap_or_else(|| b::scaling::default_nodes(quick));
    b::scaling::run_scaling(&nodes, quick).emit();
}
