//! Scaling bench: flat vs hierarchical partitioned allreduce goodput
//! across a node-count grid.
//!
//! Usage: `scaling [--nodes 1,2,4,8,16] [--quick] [--threads N]`
//! (`PARCOMM_NODES`, `PARCOMM_QUICK`, and `PARCOMM_THREADS` work too).

use parcomm_bench as b;

fn main() {
    let quick = b::quick_mode();
    let nodes = b::scaling::nodes_arg().unwrap_or_else(|| b::scaling::default_nodes(quick));
    b::scaling::run_scaling(&nodes, quick).emit();
}
