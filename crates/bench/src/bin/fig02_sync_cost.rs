//! Regenerate Fig. 2. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig02::run(parcomm_bench::quick_mode()).emit();
}
