//! Decompose the NCCL gap (paper §VI-B): where does the partitioned
//! allreduce's extra time go? The paper attributes it to the in-schedule
//! reduction kernels and their `cudaStreamSynchronize` calls; this
//! harness traces the measured interval and prints the occupancy of each
//! category for the partitioned allreduce vs NCCL (1K-grid, 4 GH200).
//!
//! Pass `--trace-out <path>` (or set `PARCOMM_TRACE_OUT`) to also export
//! the partitioned run's measured region as Chrome `trace_event` JSON with
//! causal handoff spans — the printed table filters those out, so it stays
//! byte-identical with or without the export.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_apps::nccl_for_world;
use parcomm_bench as b;
use parcomm_coll::{pallreduce_init, pallreduce_init_hierarchical};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiError, MpiWorld, Rank, WorldConfig};
use parcomm_obs::{chrome_trace_json, is_causal_category, occupancy, CriticalPath};
use parcomm_sim::{Ctx, SimTime, Simulation};

fn partitioned_body(
    ctx: &mut Ctx,
    rank: &mut Rank,
    n: usize,
) -> Result<impl FnOnce(&mut Ctx) -> Result<(), MpiError>, MpiError> {
    let buf = rank.gpu().alloc_global(n * 8);
    let stream = rank.gpu().create_stream();
    let grid = (n as u32).div_ceil(1024);
    let coll = pallreduce_init(ctx, rank, &buf, 4, &stream, 7)?;
    // Warm-up epoch: first-call pbuf_prepare and setup exchange happen
    // outside the measured region.
    coll.start(ctx)?;
    coll.pbuf_prepare(ctx)?;
    for u in 0..4 {
        coll.pready(ctx, u)?;
    }
    coll.wait(ctx)?;
    Ok(move |ctx: &mut Ctx| {
        coll.start(ctx)?;
        coll.pbuf_prepare(ctx)?;
        let c2 = coll.clone();
        stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| c2.pready_device_all(d));
        coll.wait(ctx)
    })
}

fn main() {
    let n = 1024usize * 1024; // 1K grids × 1024 threads × 8 B = 8 MB
    let trace_out = b::trace_out();
    for partitioned in [true, false] {
        let label = if partitioned { "partitioned allreduce" } else { "ncclAllReduce" };
        let causal = partitioned && trace_out.is_some();
        let mut sim = Simulation::with_seed(0xDEC0);
        let trace = sim.trace();
        let world = MpiWorld::gh200(&sim, 1);
        let nccl = nccl_for_world(&world);
        let window = Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        let errors: Arc<Mutex<Vec<(usize, MpiError)>>> = Arc::new(Mutex::new(Vec::new()));
        let (w2, e2, trace2) = (window.clone(), errors.clone(), trace.clone());
        world.run_ranks(&mut sim, move |ctx, rank| {
            let measured = if partitioned {
                match partitioned_body(ctx, rank, n) {
                    Ok(f) => Some(f),
                    Err(e) => {
                        e2.lock().push((rank.rank(), e));
                        return;
                    }
                }
            } else {
                None
            };
            rank.barrier(ctx);
            if rank.rank() == 0 {
                // Record only the measured region; causal level adds the
                // handoff spans the Chrome export needs.
                if causal {
                    trace2.enable_causal();
                } else {
                    trace2.enable();
                }
                w2.lock().0 = ctx.now();
            }
            if let Some(run_epoch) = measured {
                if let Err(e) = run_epoch(ctx) {
                    e2.lock().push((rank.rank(), e));
                    return;
                }
            } else {
                let buf = rank.gpu().alloc_global(n * 8);
                let stream = rank.gpu().create_stream();
                let grid = (n as u32).div_ceil(1024);
                stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
                let done = nccl.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
                ctx.wait(&done);
            }
            if rank.rank() == 0 {
                w2.lock().1 = ctx.now();
            }
        });
        if let Err(e) = sim.run() {
            eprintln!("error: {label} run failed: {e:?}");
            std::process::exit(1);
        }
        let errors = errors.lock().clone();
        if let Some((r, e)) = errors.first() {
            eprintln!("error: {label}: rank {r} failed: {e}");
            std::process::exit(1);
        }
        let (from, to) = *window.lock();
        let total = to.since(from);
        println!("== {label}: measured interval {total} ==");
        let spans = trace.spans();
        // Causal-only handoff spans are filtered so the table is identical
        // with and without --trace-out.
        let summary: std::collections::BTreeMap<_, _> = occupancy(&spans, from, to)
            .into_iter()
            .filter(|(cat, _)| !is_causal_category(cat))
            .collect();
        for (cat, s) in &summary {
            println!(
                "  {cat:<12} {:>6} spans   {:>12} occupancy ({:.1}% of elapsed × 4 ranks)",
                s.count,
                s.total,
                100.0 * s.total.as_micros_f64() / (4.0 * total.as_micros_f64())
            );
        }
        if partitioned {
            let sync = summary.get("stream_sync").copied().unwrap_or_default();
            println!(
                "  → {} stream synchronizations inside the schedule totalling {} across \
                 ranks: the structural cost NCCL's fused ring avoids (paper §VI-B)\n",
                sync.count, sync.total
            );
            if let Some(path) = &trace_out {
                match std::fs::write(path, chrome_trace_json(&spans)) {
                    Ok(()) => {
                        println!("trace written to {path} (load in https://ui.perfetto.dev)")
                    }
                    Err(e) => eprintln!("warning: could not write {path}: {e}"),
                }
            }
        } else {
            println!();
        }
    }
    two_node_section();
}

/// Two-node extension of the gap decomposition: where do the *cross-node*
/// bytes and the end-to-end dependency chain go once the allreduce spans
/// an IB hop? Prints, for the flat ring, the node-aware hierarchical
/// ring, and the flat ring with 4-way multi-path striping on 8 GH200
/// (2 nodes): per-NIC-rail cross-node byte counts (the
/// `net.rail<N>.bytes` fabric counters) and the critical path through the
/// measured epoch's causal span graph. Appended after the one-node tables,
/// which stay byte-identical.
fn two_node_section() {
    let n = 1024usize * 1024;
    for (hierarchical, stripes) in [(false, 1usize), (true, 1), (false, 4)] {
        let label = match (hierarchical, stripes) {
            (true, _) => "hierarchical ring, 2 nodes".to_string(),
            (false, 1) => "flat ring, 2 nodes".to_string(),
            (false, s) => format!("flat ring + {s}-stripe striping, 2 nodes"),
        };
        let mut sim = Simulation::with_seed(0xDEC02);
        let trace = sim.trace();
        let world = {
            let mut cfg = WorldConfig::gh200(2);
            cfg.stripes = stripes;
            MpiWorld::new(&sim, cfg)
        };
        let registry = world.enable_metrics();
        let topo = world.topology();
        let window = Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        let errors: Arc<Mutex<Vec<(usize, MpiError)>>> = Arc::new(Mutex::new(Vec::new()));
        let (w2, e2, trace2) = (window.clone(), errors.clone(), trace.clone());
        world.run_ranks(&mut sim, move |ctx, rank| {
            let buf = rank.gpu().alloc_global(n * 8);
            let stream = rank.gpu().create_stream();
            let grid = (n as u32).div_ceil(1024);
            let init = if hierarchical {
                pallreduce_init_hierarchical(ctx, rank, &buf, 4, &stream, 7)
            } else {
                pallreduce_init(ctx, rank, &buf, 4, &stream, 7)
            };
            let coll = match init {
                Ok(c) => c,
                Err(e) => {
                    e2.lock().push((rank.rank(), e));
                    return;
                }
            };
            let epoch = |ctx: &mut Ctx| -> Result<(), MpiError> {
                coll.start(ctx)?;
                coll.pbuf_prepare(ctx)?;
                let c2 = coll.clone();
                stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| {
                    c2.pready_device_all(d)
                });
                coll.wait(ctx)
            };
            // Warm-up epoch outside the traced window, as in the one-node
            // decomposition.
            if let Err(e) = epoch(ctx) {
                e2.lock().push((rank.rank(), e));
                return;
            }
            rank.barrier(ctx);
            if rank.rank() == 0 {
                trace2.enable_causal();
                w2.lock().0 = ctx.now();
            }
            if let Err(e) = epoch(ctx) {
                e2.lock().push((rank.rank(), e));
                return;
            }
            if rank.rank() == 0 {
                w2.lock().1 = ctx.now();
            }
        });
        if let Err(e) = sim.run() {
            eprintln!("error: {label} run failed: {e:?}");
            std::process::exit(1);
        }
        if let Some((r, e)) = errors.lock().first() {
            eprintln!("error: {label}: rank {r} failed: {e}");
            std::process::exit(1);
        }
        let (from, to) = *window.lock();
        println!("== {label}: measured epoch {} ==", to.since(from));
        // Whole-run cross-node bytes by NIC rail: the flat ring funnels
        // every boundary crossing through the boundary rank's NIC, the
        // hierarchical ring runs one inter-node ring per local GPU index.
        let snap = registry.snapshot();
        let rail: Vec<u64> = (0..topo.nics_per_node())
            .map(|r| snap.counter(&format!("net.rail{r}.bytes")).unwrap_or(0))
            .collect();
        let total: u64 = rail.iter().sum();
        for (r, bytes) in rail.iter().enumerate() {
            println!(
                "  ib rail {r}: {bytes:>12} B cross-node ({:5.1}% of {total} B)",
                100.0 * *bytes as f64 / total.max(1) as f64
            );
        }
        let max_share =
            100.0 * rail.iter().copied().max().unwrap_or(0) as f64 / total.max(1) as f64;
        println!(
            "  max rail share: {max_share:.1}% of cross-node bytes across {} rails{}",
            rail.len(),
            if max_share <= 50.0 { " — balanced (no rail above 50%)" } else { "" }
        );
        let spans = trace.spans();
        let path = CriticalPath::from_spans(&spans);
        let cross_hops = path
            .steps
            .windows(2)
            .filter(|w| match (w[0].rank, w[1].rank) {
                (Some(a), Some(b)) => topo.node_of(a as usize) != topo.node_of(b as usize),
                _ => false,
            })
            .count();
        println!(
            "  critical path: {} steps, {:.1}% coverage of the measured epoch, \
             {cross_hops} cross-node handoffs",
            path.steps.len(),
            100.0 * path.coverage_of(from, to)
        );
        for (cat, d) in path.occupancy() {
            println!("    {cat:<12} {d:>12} on the dependency chain");
        }
        println!();
    }
}
