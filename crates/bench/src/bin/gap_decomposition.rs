//! Decompose the NCCL gap (paper §VI-B): where does the partitioned
//! allreduce's extra time go? The paper attributes it to the in-schedule
//! reduction kernels and their `cudaStreamSynchronize` calls; this
//! harness traces the measured interval and prints the occupancy of each
//! category for the partitioned allreduce vs NCCL (1K-grid, 4 GH200).

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_apps::nccl_for_world;
use parcomm_coll::pallreduce_init;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimTime, Simulation};

fn main() {
    let n = 1024usize * 1024; // 1K grids × 1024 threads × 8 B = 8 MB
    for partitioned in [true, false] {
        let label = if partitioned { "partitioned allreduce" } else { "ncclAllReduce" };
        let mut sim = Simulation::with_seed(0xDEC0);
        let trace = sim.trace();
        let world = MpiWorld::gh200(&sim, 1);
        let nccl = nccl_for_world(&world);
        let window = Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        let w2 = window.clone();
        let trace2 = trace.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let buf = rank.gpu().alloc_global(n * 8);
            let stream = rank.gpu().create_stream();
            let grid = (n as u32).div_ceil(1024);
            let coll = if partitioned {
                Some(pallreduce_init(ctx, rank, &buf, 4, &stream, 7).expect("init"))
            } else {
                None
            };
            // Warm-up epoch: first-call pbuf_prepare and setup exchange
            // happen outside the measured region.
            if let Some(c) = &coll {
                c.start(ctx).expect("start");
                c.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..4 {
                    c.pready(ctx, u).expect("pready");
                }
                c.wait(ctx).expect("wait");
            }
            rank.barrier(ctx);
            if rank.rank() == 0 {
                trace2.enable(); // record only the measured region
                w2.lock().0 = ctx.now();
            }
            if let Some(c) = &coll {
                c.start(ctx).expect("start");
                c.pbuf_prepare(ctx).expect("pbuf_prepare");
                let c2 = c.clone();
                stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| {
                    c2.pready_device_all(d)
                });
                c.wait(ctx).expect("wait");
            } else {
                stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
                let done = nccl.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
                ctx.wait(&done);
            }
            if rank.rank() == 0 {
                w2.lock().1 = ctx.now();
            }
        });
        sim.run().expect("decomposition run");
        let (from, to) = *window.lock();
        let total = to.since(from);
        println!("== {label}: measured interval {total} ==");
        let summary = trace.summarize(from, to);
        for (cat, s) in &summary {
            println!(
                "  {cat:<12} {:>6} spans   {:>12} occupancy ({:.1}% of elapsed × 4 ranks)",
                s.count,
                s.total,
                100.0 * s.total.as_micros_f64() / (4.0 * total.as_micros_f64())
            );
        }
        if partitioned {
            let sync = summary.get("stream_sync").copied().unwrap_or_default();
            println!(
                "  → {} stream synchronizations inside the schedule totalling {} across \
                 ranks: the structural cost NCCL's fused ring avoids (paper §VI-B)\n",
                sync.count, sync.total
            );
        } else {
            println!();
        }
    }
}
