//! Three-mechanism head-to-head: Progression Engine vs Kernel Copy vs the
//! symmetric-heap (shmem) backend, plus the rkey-exchange invariant. Pass
//! `--quick` for the reduced sweep; `--threads N` sets sweep workers.
use parcomm_bench as b;

fn main() {
    b::mechanisms::run(b::quick_mode()).emit();
}
