//! Observability smoke check (the CI `obs` job): run the traced
//! partitioned allreduce, validate the Chrome `trace_event` export with
//! the first-party JSON parser, check the folded stacks and metrics are
//! non-empty, and require the critical path to explain at least 90% of
//! the measured interval (the acceptance bar). Exits non-zero on any
//! failure. Honors `--trace-out` / `--metrics-out` to also keep the
//! artifacts.

use parcomm_bench as b;
use parcomm_obs::json;

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let run = match b::obsrun::run_traced_allreduce(b::quick_mode()) {
        Ok(run) => run,
        Err(e) => fail(&e),
    };
    if run.spans.is_empty() {
        fail("traced run recorded no spans");
    }

    // Chrome export parses with the first-party parser and has the
    // expected shape.
    let chrome = run.chrome_json();
    let v = match json::parse(&chrome) {
        Ok(v) => v,
        Err(e) => fail(&format!("chrome trace is not valid JSON: {e:?}")),
    };
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .unwrap_or_else(|| fail("chrome trace has no traceEvents array"));
    let n_spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    let n_flows = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
        .count();
    if n_spans == 0 {
        fail("chrome trace has no duration events");
    }
    if n_flows == 0 {
        fail("chrome trace has no causal flow events");
    }
    println!("obs_smoke: chrome trace ok ({n_spans} spans, {n_flows} causal edges)");

    if run.folded().lines().count() == 0 {
        fail("folded stacks are empty");
    }
    if json::parse(&run.metrics.to_json()).is_err() {
        fail("metrics snapshot is not valid JSON");
    }
    let puts = run.metrics.counter("ucx.puts").unwrap_or(0);
    let polls = run.metrics.counter("mpi.pe.polls").unwrap_or(0);
    if puts == 0 || polls == 0 {
        fail(&format!("metrics look dead: ucx.puts={puts} mpi.pe.polls={polls}"));
    }
    println!("obs_smoke: metrics ok (ucx.puts={puts}, mpi.pe.polls={polls})");

    let cp = run.critical_path();
    if cp.steps.is_empty() {
        fail("critical path is empty");
    }
    let coverage = cp.coverage_of(run.from, run.to);
    print!("{}", run.critical_path_report());
    if coverage < 0.9 {
        fail(&format!(
            "critical path covers only {:.1}% of the measured interval (< 90%)",
            100.0 * coverage
        ));
    }
    println!("obs_smoke: PASS (critical path covers {:.1}%)", 100.0 * coverage);

    if let Some(path) = b::trace_out() {
        if let Err(e) = std::fs::write(&path, &chrome) {
            eprintln!("warning: could not write {path}: {e}");
        }
        let folded_path = format!("{path}.folded");
        if let Err(e) = std::fs::write(&folded_path, run.folded()) {
            eprintln!("warning: could not write {folded_path}: {e}");
        }
    }
    if let Some(path) = b::metrics_out() {
        if let Err(e) = std::fs::write(&path, run.metrics.to_json()) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}
