//! Run the three ablation studies (poll interval, transport partitions,
//! multi-block counters). Pass `--quick` for reduced sweeps.
use parcomm_bench as b;

fn main() {
    let q = b::quick_mode();
    b::ablations::run_poll_interval(q).emit();
    b::ablations::run_transport_sweep(q).emit();
    b::ablations::run_counter_aggregation(q).emit();
}
