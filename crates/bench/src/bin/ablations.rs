//! Run the ablation studies (poll interval, transport partitions,
//! multi-block counters, fault-rate goodput). Pass `--quick` for reduced
//! sweeps; `--faults <seed>` picks the chaos seed for the fault ablation;
//! `--mechanism pe|kc|shmem` selects the copy mechanism the transport
//! sweep measures (default: the Progression Engine).
//! `--trace-out <path>` / `--metrics-out <path>` additionally export the
//! traced allreduce's Chrome trace, flamegraph stacks, and metrics.
use parcomm_bench as b;

fn main() {
    let q = b::quick_mode();
    b::ablations::run_poll_interval(q).emit();
    match b::mechanism() {
        Some(m) => b::ablations::run_transport_sweep_mech(q, b::threads(), m).emit(),
        None => b::ablations::run_transport_sweep(q).emit(),
    }
    b::ablations::run_counter_aggregation(q).emit();
    b::striping::run(q).emit();
    b::ablations::run_fault_goodput(q, b::fault_seed().unwrap_or(0xC4A05)).emit();
    b::obsrun::emit_requested_outputs(q);
}
