//! Run the ablation studies (poll interval, transport partitions,
//! multi-block counters, fault-rate goodput). Pass `--quick` for reduced
//! sweeps; `--faults <seed>` picks the chaos seed for the fault ablation.
//! `--trace-out <path>` / `--metrics-out <path>` additionally export the
//! traced allreduce's Chrome trace, flamegraph stacks, and metrics.
use parcomm_bench as b;

fn main() {
    let q = b::quick_mode();
    b::ablations::run_poll_interval(q).emit();
    b::ablations::run_transport_sweep(q).emit();
    b::ablations::run_counter_aggregation(q).emit();
    b::striping::run(q).emit();
    b::ablations::run_fault_goodput(q, b::fault_seed().unwrap_or(0xC4A05)).emit();
    b::obsrun::emit_requested_outputs(q);
}
