//! Regenerate Fig. 11. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig1011::run_fig11(parcomm_bench::quick_mode()).emit();
}
