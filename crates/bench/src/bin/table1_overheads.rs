//! Regenerate Table I. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::table1::run(parcomm_bench::quick_mode()).emit();
}
