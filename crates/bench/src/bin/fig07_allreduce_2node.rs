//! Regenerate Fig. 7. Pass `--quick` for a reduced sweep.
fn main() {
    parcomm_bench::fig0607::run_fig07(parcomm_bench::quick_mode()).emit();
}
