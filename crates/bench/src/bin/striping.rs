//! Striping ablation: cross-node partitioned p2p goodput vs the channel's
//! multi-path stripe count.
//!
//! Usage: `striping [--stripes 1,2,4] [--quick] [--threads N]`
//! (`PARCOMM_STRIPES`, `PARCOMM_QUICK`, and `PARCOMM_THREADS` work too).
//!
//! Output is byte-identical at any `--threads` count — the CI `scale` job
//! diffs a serial run against a 4-worker run and greps the
//! "striped cross-node goodput beats single-path" verdict line.

use parcomm_bench as b;

fn main() {
    let quick = b::quick_mode();
    let stripes =
        b::striping::stripes_arg().unwrap_or_else(|| b::striping::default_stripes(quick));
    b::striping::run_threaded(&stripes, quick, b::threads()).emit();
}
