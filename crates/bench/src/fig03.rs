//! Figure 3: the cost of mapping partitions to threads, warps, and blocks
//! for an intra-node partitioned point-to-point transfer.
//!
//! For 1..=1024 threads in a single block, the measured quantity is the
//! device-side cost of the `MPIX_Pready_{thread,warp,block}` call — the
//! kernel execution-time extension relative to the identical kernel
//! without the call.

use parcomm_gpu::AggLevel;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;
use crate::stats::pow2_range;

/// Run the Fig. 3 sweep.
pub fn run(quick: bool) -> Experiment {
    run_threaded(quick, crate::report::threads())
}

/// [`run`] with an explicit sweep worker count: one sweep cell per thread
/// count, byte-identical output at any `threads`.
pub fn run_threaded(quick: bool, threads: usize) -> Experiment {
    let counts = if quick { vec![1u32, 32, 1024] } else { pow2_range(1, 1024) };
    let mut exp = Experiment::new(
        "fig03",
        "Device-side MPIX_Pready cost by aggregation level (1 block, intra-node)",
        &["threads", "thread_us", "warp_us", "block_us"],
    );
    let mut spec = SweepSpec::new();
    for &t in &counts {
        spec.cell(format!("threads={t}"), move || {
            let row = [AggLevel::Thread, AggLevel::Warp, AggLevel::Block]
                .into_iter()
                .map(|agg| pready_extension_us(t, agg))
                .collect::<Vec<_>>();
            vec![t as f64, row[0], row[1], row[2]]
        });
    }
    for row in spec.run(threads).into_values().expect("fig03 sweep") {
        exp.push_row(row);
    }
    if let Some(last) = exp.rows.last() {
        let (thread, warp, block) = (last[1], last[2], last[3]);
        exp.note(format!(
            "1024 threads: thread/block = {:.1}x (paper 271.5x), warp/block = {:.1}x \
             (paper 9.4x)",
            thread / block,
            warp / block
        ));
    }
    exp.note("single thread: all three levels cost the same within error (paper §VI-A1)");
    exp
}

/// Kernel execution-time extension caused by the pready call, measured by
/// launching the same kernel with and without it.
fn pready_extension_us(threads: u32, agg: AggLevel) -> f64 {
    use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
    use parcomm_gpu::KernelSpec;
    use parcomm_mpi::MpiWorld;
    use parcomm_sim::Mutex;
    use std::sync::Arc;

    let mut sim = Simulation::with_seed(0xF160_0300 ^ threads as u64);
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = threads as usize;
        let buf = rank.gpu().alloc_global(parts * 8);
        let stream = rank.gpu().create_stream();
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 3, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig {
                        copy: CopyMechanism::ProgressionEngine,
                        agg,
                        transport_partitions: 1,
                        multi_block_counters: false,
                    },
                )
                .expect("prequest");
                // Baseline kernel without the pready call.
                let plain =
                    stream.launch(ctx, KernelSpec::vector_add(1, threads), |_| {});
                ctx.wait(&plain.done);
                // Kernel with the device pready.
                let preq2 = preq.clone();
                let with =
                    stream.launch(ctx, KernelSpec::vector_add(1, threads), move |d| {
                        preq2.pready_all(d)
                    });
                ctx.wait(&with.done);
                sreq.wait(ctx).expect("wait");
                *out2.lock() =
                    with.duration().as_micros_f64() - plain.duration().as_micros_f64();
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 3, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().expect("fig03 point");
    let v = *out.lock();
    v
}
