//! Table I: overheads of the partitioned API calls, measured by timing
//! the calls in the simulation — 100-iteration control flow, 10 samples,
//! mean ± standard deviation, exactly as the paper reports.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_coll::pallreduce_init;
use parcomm_core::{precv_init, prequest_create, psend_init, PrequestConfig};
use parcomm_mpi::MpiWorld;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;
use crate::stats::{mean, stddev};

/// Paper values for the side-by-side note.
const PAPER: [(&str, f64, f64); 4] = [
    ("MPI_PSend/Recv_init", 17.2, 10.2),
    ("MPIX_Pallreduce_init", 62.3, 6.2),
    ("MPIX_Prequest_create", 110.7, 37.8),
    ("MPIX_Pbuf_prepare (steady)", 3.4, 1.4),
];

struct Samples {
    p2p_init: Vec<f64>,
    pallreduce_init: Vec<f64>,
    prequest_create: Vec<f64>,
    pbuf_first: Vec<f64>,
    pbuf_steady: Vec<f64>,
}

/// Run the Table I measurement.
pub fn run(quick: bool) -> Experiment {
    run_threaded(quick, crate::report::threads())
}

/// [`run`] with an explicit sweep worker count: one sweep cell per
/// sample world, merged in sample order so the table is byte-identical
/// at any `threads`.
pub fn run_threaded(quick: bool, threads: usize) -> Experiment {
    let samples = if quick { 3 } else { 10 };
    let iters = if quick { 10 } else { 100 };

    let mut spec = SweepSpec::new();
    for s in 0..samples {
        spec.cell(format!("sample={s}"), move || sample(iters, s as u64));
    }
    let mut all = Samples {
        p2p_init: Vec::new(),
        pallreduce_init: Vec::new(),
        prequest_create: Vec::new(),
        pbuf_first: Vec::new(),
        pbuf_steady: Vec::new(),
    };
    for one in spec.run(threads).into_values().expect("table1 sweep") {
        all.p2p_init.extend(one.p2p_init);
        all.pallreduce_init.extend(one.pallreduce_init);
        all.prequest_create.extend(one.prequest_create);
        all.pbuf_first.extend(one.pbuf_first);
        all.pbuf_steady.extend(one.pbuf_steady);
    }

    let mut exp = Experiment::new(
        "table1",
        "Overheads for different MPI calls (mean ± sd over samples, µs)",
        &["row", "mean_us", "sd_us", "paper_mean_us", "paper_sd_us"],
    );
    let rows: [(&str, &Vec<f64>, f64, f64); 5] = [
        ("1: PSend/Recv_init", &all.p2p_init, PAPER[0].1, PAPER[0].2),
        ("2: Pallreduce_init", &all.pallreduce_init, PAPER[1].1, PAPER[1].2),
        ("3: Prequest_create", &all.prequest_create, PAPER[2].1, PAPER[2].2),
        ("4: Pbuf_prepare first", &all.pbuf_first, 193.4, 0.0),
        ("5: Pbuf_prepare steady", &all.pbuf_steady, PAPER[3].1, PAPER[3].2),
    ];
    for (i, (name, xs, pm, psd)) in rows.iter().enumerate() {
        exp.push_row(vec![(i + 1) as f64, mean(xs), stddev(xs), *pm, *psd]);
        exp.note(format!(
            "row {}: {name} = {:.1} ± {:.1} µs (paper {:.1} ± {:.1})",
            i + 1,
            mean(xs),
            stddev(xs),
            pm,
            psd
        ));
    }
    exp
}

/// One sample world: time each call on the sender rank.
fn sample(iters: usize, seed: u64) -> Samples {
    let mut sim = Simulation::with_seed(0x7AB1 ^ seed);
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(None::<Samples>));
    let out2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 8usize;
        let buf = rank.gpu().alloc_global(parts * 1024);
        let stream = rank.gpu().create_stream();
        match rank.rank() {
            0 => {
                let mut s = Samples {
                    p2p_init: Vec::new(),
                    pallreduce_init: Vec::new(),
                    prequest_create: Vec::new(),
                    pbuf_first: Vec::new(),
                    pbuf_steady: Vec::new(),
                };
                // Timed MPI_Psend_init.
                let t0 = ctx.now();
                let sreq = psend_init(ctx, rank, 1, 9, &buf, parts).expect("init");
                s.p2p_init.push(ctx.now().since(t0).as_micros_f64());

                // Timed MPIX_Pallreduce_init (all ranks participate below).
                let t0 = ctx.now();
                let coll = pallreduce_init(ctx, rank, &buf, 4, &stream, 19).expect("init");
                s.pallreduce_init.push(ctx.now().since(t0).as_micros_f64());
                let _ = coll;

                // First Pbuf_prepare (includes deferred setup).
                sreq.start(ctx).expect("start");
                let t0 = ctx.now();
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                s.pbuf_first.push(ctx.now().since(t0).as_micros_f64());

                // Timed MPIX_Prequest_create.
                let t0 = ctx.now();
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig::default())
                    .expect("prequest");
                s.prequest_create.push(ctx.now().since(t0).as_micros_f64());
                let _ = preq;

                // Steady-state Pbuf_prepare over `iters` epochs: complete
                // each epoch with host pready + wait.
                for _ in 0..iters {
                    for u in 0..parts {
                        sreq.pready(ctx, u).expect("pready");
                    }
                    sreq.wait(ctx).expect("wait");
                    sreq.start(ctx).expect("start");
                    let t0 = ctx.now();
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    s.pbuf_steady.push(ctx.now().since(t0).as_micros_f64());
                }
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
                *out2.lock() = Some(s);
            }
            1 => {
                let t0 = ctx.now();
                let rreq = precv_init(ctx, rank, 0, 9, &buf, parts).expect("init");
                let init_us = ctx.now().since(t0).as_micros_f64();
                let coll = pallreduce_init(ctx, rank, &buf, 4, &stream, 19).expect("init");
                let _ = (coll, init_us);
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for _ in 0..iters {
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rreq.wait(ctx).expect("wait");
                }
            }
            _ => {
                // Other ranks only participate in the collective init.
                let coll = pallreduce_init(ctx, rank, &buf, 4, &stream, 19).expect("init");
                let _ = coll;
            }
        }
    });
    sim.run().expect("table1 sample");
    let guard = out.lock();
    guard.as_ref().map(clone_samples).expect("sender produced samples")
}

fn clone_samples(s: &Samples) -> Samples {
    Samples {
        p2p_init: s.p2p_init.clone(),
        pallreduce_init: s.pallreduce_init.clone(),
        prequest_create: s.prequest_create.clone(),
        pbuf_first: s.pbuf_first.clone(),
        pbuf_steady: s.pbuf_steady.clone(),
    }
}
