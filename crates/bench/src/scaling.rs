//! Scaling study: flat ring vs node-aware hierarchical ring partitioned
//! allreduce as the cluster grows past the paper's 2×4 GH200 testbed.
//!
//! The flat ring (Algorithm 1) sends every one of its `2(p-1)` steps
//! around the global rank ring, so the ranks that sit on a node boundary
//! pay InfiniBand latency and serialization on *every* step and (below
//! the rail-striping threshold) funnel all cross-node bytes through one
//! NIC. The hierarchical schedule
//! ([`parcomm_coll::pallreduce_init_hierarchical`]) runs the same number
//! of steps but crosses nodes only during its inter-node phase —
//! `2(N-1)` IB-paced steps per rank instead of `2(NG-1)` — with one
//! inter-node ring per local GPU index, spreading those bytes evenly
//! over all NIC rails.
//!
//! Both schedules move the same `≈2n` bytes across every node cut (a
//! ring allreduce is bandwidth-optimal either way), so the measured gap
//! is the removed IB serialization on the dependency chain. In the
//! paper-calibrated cost model the per-step stream synchronization
//! dominates (§VI-B), so the win is a steady one — and above the
//! [`parcomm_net::Fabric::STRIPE_THRESHOLD`] a *single* boundary message
//! already stripes over every rail, which is why this bench measures the
//! sub-threshold regime where rail assignment is schedule-determined.
//!
//! Every cell is a deterministic simulation: alongside the timings the
//! harness digests each run (event report + level-1 trace + the reduced
//! rank-0 buffer) so regressions in either variant are a one-line diff.
//! `crates/bench/tests/scaling.rs` freezes the digests at 1 and 4 nodes.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_coll::{pallreduce_init, pallreduce_init_hierarchical};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiWorld, WorldConfig};
use parcomm_net::ClusterSpec;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;
use parcomm_testkit::digest;

use crate::report::Experiment;

/// Sim seed for every scaling cell; frozen by `tests/scaling.rs`.
pub const SCALING_SEED: u64 = 0x5CA1_E0F0;

/// Default node-count grid: the paper's 1- and 2-node points plus the
/// extrapolation the topology layer exists for.
pub fn default_nodes(quick: bool) -> Vec<u16> {
    if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    }
}

/// Node counts from `--nodes 1,2,4,8,16` or `PARCOMM_NODES`, if given.
pub fn nodes_arg() -> Option<Vec<u16>> {
    fn parse(list: &str) -> Option<Vec<u16>> {
        let nodes: Vec<u16> =
            list.split(',').map(|s| s.trim().parse().ok()).collect::<Option<_>>()?;
        (!nodes.is_empty()).then_some(nodes)
    }
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--nodes" {
            return args.next().as_deref().and_then(parse);
        }
        if let Some(v) = a.strip_prefix("--nodes=") {
            return parse(v);
        }
    }
    std::env::var("PARCOMM_NODES").ok().as_deref().and_then(parse)
}

/// Cluster shapes from `--topology` or `PARCOMM_TOPOLOGY`, if given:
/// semicolon-separated `--topology` grammar specs (the ragged grammar
/// already uses commas), e.g. `--topology "2x4;4,2,4,1:2,1,2,1@2"`.
/// Each spec becomes one sweep cell, replacing the uniform `--nodes`
/// grid. Panics with the grammar error on a malformed spec — a bench
/// invocation problem, not a run outcome.
pub fn topology_arg() -> Option<Vec<ClusterSpec>> {
    fn parse(list: &str) -> Option<Vec<ClusterSpec>> {
        let specs: Vec<ClusterSpec> = list
            .split(';')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                let spec = ClusterSpec::parse(s).unwrap_or_else(|e| panic!("--topology: {e}"));
                // Surface shape validation (typed TopologyError) up front,
                // before any sweep cell spins up.
                spec.topology().unwrap_or_else(|e| panic!("--topology {}: {e}", s.trim()));
                spec
            })
            .collect();
        (!specs.is_empty()).then_some(specs)
    }
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--topology" {
            return args.next().as_deref().and_then(parse);
        }
        if let Some(v) = a.strip_prefix("--topology=") {
            return parse(v);
        }
    }
    std::env::var("PARCOMM_TOPOLOGY").ok().as_deref().and_then(parse)
}

/// One timed + digested run: a warm-up epoch, then one measured epoch of
/// a `4 × p × chunk_elems`-element f64 allreduce on `nodes` GH200 nodes.
/// Returns `(measured µs, run digest)`. The reduced buffer is verified
/// against the closed-form expected sums before digesting, so a wrong
/// schedule fails loudly rather than producing a fast-but-broken number.
pub fn allreduce_cell(nodes: u16, hierarchical: bool, chunk_elems: usize) -> (f64, u64) {
    allreduce_cell_on(ClusterSpec::gh200(nodes), hierarchical, chunk_elems)
}

/// [`allreduce_cell`] on an arbitrary cluster shape — ragged and
/// oversubscribed `--topology` specs run the same verified, digested
/// epoch pair; the uniform spec is bit-identical to the classic cell.
pub fn allreduce_cell_on(cluster: ClusterSpec, hierarchical: bool, chunk_elems: usize) -> (f64, u64) {
    let nodes = cluster.nodes;
    let mut sim = Simulation::with_seed(SCALING_SEED);
    let trace = sim.trace();
    trace.enable();
    let world =
        MpiWorld::new(&sim, WorldConfig { cluster, ..WorldConfig::gh200(nodes) });
    let out = Arc::new(Mutex::new((0.0f64, Vec::new())));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let p = rank.size();
        let n = partitions * p * chunk_elems;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let grid = (n as u32).div_ceil(1024).max(1);
        let coll = if hierarchical {
            pallreduce_init_hierarchical(ctx, rank, &buf, partitions, &stream, 42)
        } else {
            pallreduce_init(ctx, rank, &buf, partitions, &stream, 42)
        }
        .expect("pallreduce init");
        // Warm-up epoch: first-call pbuf_prepare setup exchange happens
        // outside the measured window.
        let epoch = |ctx: &mut parcomm_sim::Ctx, rank_id: usize| {
            let vals: Vec<f64> = (0..n).map(|i| (rank_id * 31 + i) as f64).collect();
            buf.write_f64_slice(0, &vals);
            coll.start(ctx).expect("start");
            coll.pbuf_prepare(ctx).expect("pbuf_prepare");
            let c2 = coll.clone();
            stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| {
                c2.pready_device_all(d)
            });
            coll.wait(ctx).expect("wait");
        };
        epoch(ctx, rank.rank());
        rank.barrier(ctx);
        let t0 = ctx.now();
        epoch(ctx, rank.rank());
        if rank.rank() == 0 {
            let us = ctx.now().since(t0).as_micros_f64();
            let got = buf.read_f64_slice(0, n);
            for (i, v) in got.iter().enumerate() {
                let expect = (31 * p * (p - 1) / 2 + p * i) as f64;
                assert_eq!(*v, expect, "allreduce sum mismatch at element {i}");
            }
            *o2.lock() = (us, got);
        }
    });
    let report = sim.run().expect("scaling cell sim");
    let (us, vals) = {
        let guard = out.lock();
        (guard.0, guard.1.clone())
    };
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&vals);
    (us, d.finish())
}

/// Run the scaling grid with the shared thread-count policy.
pub fn run_scaling(nodes: &[u16], quick: bool) -> Experiment {
    run_scaling_threaded(nodes, quick, crate::report::threads())
}

/// [`run_scaling`] with an explicit sweep worker count.
pub fn run_scaling_threaded(nodes: &[u16], quick: bool, threads: usize) -> Experiment {
    let chunk_elems = if quick { 256 } else { 4096 };
    let mut exp = Experiment::new(
        "scaling",
        "Partitioned allreduce scaling: flat vs hierarchical ring goodput (4 GPUs/node)",
        &["nodes", "ranks", "flat_us", "hier_us", "flat_gbps", "hier_gbps", "hier_speedup"],
    );
    let mut spec = SweepSpec::new();
    for &n in nodes {
        spec.cell(format!("nodes={n}"), move || {
            let ranks = n as usize * 4;
            let bytes = (4 * ranks * chunk_elems * 8) as f64;
            let (flat_us, flat_digest) = allreduce_cell(n, false, chunk_elems);
            let (hier_us, hier_digest) = allreduce_cell(n, true, chunk_elems);
            let row = vec![
                n as f64,
                ranks as f64,
                flat_us,
                hier_us,
                bytes / (flat_us * 1e3),
                bytes / (hier_us * 1e3),
                flat_us / hier_us,
            ];
            let note =
                format!("nodes={n}: flat digest 0x{flat_digest:016x}, hier digest 0x{hier_digest:016x}");
            (row, note)
        });
    }
    for (row, note) in spec.run(threads).into_values().expect("scaling sweep") {
        exp.push_row(row);
        exp.note(note);
    }
    let multi: Vec<&Vec<f64>> = exp.rows.iter().filter(|r| r[0] >= 4.0).collect();
    if !multi.is_empty() && multi.iter().all(|r| r[6] > 1.0) {
        exp.note(
            "hierarchical ring beats the flat ring at every ≥4-node point: \
             2(N-1) IB-paced steps per rank instead of 2(NG-1)",
        );
    }
    exp.note("digests are frozen in crates/bench/tests/scaling.rs (seed 0x5CA1E0F0)");
    exp
}

/// The `--topology` grid: one flat + hierarchical cell per cluster spec,
/// uniform or ragged or oversubscribed, labeled by the spec rendered back
/// into the grammar. The hierarchical schedule degrades per shape
/// (truncated local rings, fold/unfold for surplus ranks) and every cell
/// still verifies the reduced buffer against the closed-form sums.
pub fn run_scaling_specs(specs: &[ClusterSpec], quick: bool) -> Experiment {
    run_scaling_specs_threaded(specs, quick, crate::report::threads())
}

/// [`run_scaling_specs`] with an explicit sweep worker count.
pub fn run_scaling_specs_threaded(specs: &[ClusterSpec], quick: bool, threads: usize) -> Experiment {
    let chunk_elems = if quick { 256 } else { 4096 };
    let mut exp = Experiment::new(
        "scaling-topology",
        "Partitioned allreduce over --topology shapes: flat vs hierarchical ring goodput",
        &["nodes", "ranks", "flat_us", "hier_us", "flat_gbps", "hier_gbps", "hier_speedup"],
    );
    let mut spec = SweepSpec::new();
    for cluster in specs {
        let cluster = cluster.clone();
        let label = cluster.render();
        spec.cell(format!("topology={label}"), move || {
            let ranks = cluster
                .topology()
                .unwrap_or_else(|e| panic!("--topology {label}: {e}"))
                .num_ranks();
            let bytes = (4 * ranks * chunk_elems * 8) as f64;
            let (flat_us, flat_digest) = allreduce_cell_on(cluster.clone(), false, chunk_elems);
            let (hier_us, hier_digest) = allreduce_cell_on(cluster.clone(), true, chunk_elems);
            let row = vec![
                cluster.nodes as f64,
                ranks as f64,
                flat_us,
                hier_us,
                bytes / (flat_us * 1e3),
                bytes / (hier_us * 1e3),
                flat_us / hier_us,
            ];
            let note = format!(
                "topology={label}: flat digest 0x{flat_digest:016x}, hier digest 0x{hier_digest:016x}"
            );
            (row, note)
        });
    }
    for (row, note) in spec.run(threads).into_values().expect("topology sweep") {
        exp.push_row(row);
        exp.note(note);
    }
    exp
}
