//! Figures 4 and 5: Goodput of the GPU-initiated partitioned designs
//! versus the traditional kernel + sync + `MPI_Send`/`Recv` model.
//!
//! - Fig. 4 (intra-node, two GH200 on one node): Kernel Copy vs
//!   Progression Engine vs traditional, with the NVLink unidirectional
//!   bandwidth as the Goodput upper bound.
//! - Fig. 5 (inter-node, two GH200 on two nodes): Progression Engine vs
//!   traditional (Kernel Copy is intra-node only); the paper found two
//!   transport partitions best for large kernels, which the harness uses.

use parcomm_core::CopyMechanism;
use parcomm_gpu::AggLevel;
use parcomm_sweep::SweepSpec;

use crate::p2p::{goodput_gbps, measure, P2pMode, P2pParams};
use crate::report::Experiment;
use crate::stats::pow2_range;

fn iters_for(grid: u32, quick: bool) -> usize {
    if quick {
        3
    } else if grid >= 4096 {
        10
    } else {
        50
    }
}

/// Fig. 4: intra-node Goodput sweep.
pub fn run_fig04(quick: bool) -> Experiment {
    run_fig04_threaded(quick, crate::report::threads())
}

/// [`run_fig04`] with an explicit sweep worker count: one sweep cell per
/// grid size, byte-identical output at any `threads`.
pub fn run_fig04_threaded(quick: bool, threads: usize) -> Experiment {
    let max_grid = if quick { 256 } else { 32 * 1024 };
    let grids = pow2_range(1, max_grid);
    let mut exp = Experiment::new(
        "fig04",
        "Intra-node Goodput (GB/s): traditional vs Progression Engine vs Kernel Copy",
        &["grid", "trad_gbps", "pe_gbps", "kc_gbps", "pe_speedup", "kc_speedup"],
    );
    let mut spec = SweepSpec::new();
    for &grid in &grids {
        spec.cell(format!("grid={grid}"), move || {
            let params = P2pParams {
                nodes: 1,
                sender: 0,
                receiver: 1,
                grid,
                block: 1024,
                iters: iters_for(grid, quick),
                seed: 0x0404 ^ grid as u64,
            };
            let bytes = params.bytes();
            let trad = measure(params, P2pMode::Traditional);
            let pe = measure(
                params,
                P2pMode::Partitioned {
                    copy: CopyMechanism::ProgressionEngine,
                    agg: AggLevel::Block,
                    transports: 1,
                },
            );
            let kc = measure(
                params,
                P2pMode::Partitioned {
                    copy: CopyMechanism::KernelCopy,
                    agg: AggLevel::Block,
                    transports: 1,
                },
            );
            vec![
                grid as f64,
                goodput_gbps(bytes, trad),
                goodput_gbps(bytes, pe),
                goodput_gbps(bytes, kc),
                trad / pe,
                trad / kc,
            ]
        });
    }
    for row in spec.run(threads).into_values().expect("fig04 sweep") {
        exp.push_row(row);
    }
    summarize(&mut exp, 4, 5);
    exp.note("NVLink unidirectional bound: 150 GB/s (paper Fig. 4 reference line)");
    exp.note(
        "paper anchors: KC up to 2.34x (small) shrinking to 1.06x (32K); PE up to 1.28x, \
         ~1.0x for large grids",
    );
    exp
}

/// Fig. 5: inter-node Goodput sweep.
pub fn run_fig05(quick: bool) -> Experiment {
    run_fig05_threaded(quick, crate::report::threads())
}

/// [`run_fig05`] with an explicit sweep worker count: one sweep cell per
/// grid size, byte-identical output at any `threads`.
pub fn run_fig05_threaded(quick: bool, threads: usize) -> Experiment {
    let max_grid = if quick { 256 } else { 32 * 1024 };
    let grids = pow2_range(1, max_grid);
    let mut exp = Experiment::new(
        "fig05",
        "Inter-node Goodput (GB/s): traditional vs Progression Engine (2 transport partitions)",
        &["grid", "trad_gbps", "pe_gbps", "pe_speedup"],
    );
    let mut spec = SweepSpec::new();
    for &grid in &grids {
        spec.cell(format!("grid={grid}"), move || {
            let params = P2pParams {
                nodes: 2,
                sender: 0,
                receiver: 4,
                grid,
                block: 1024,
                iters: iters_for(grid, quick),
                seed: 0x0505 ^ grid as u64,
            };
            let bytes = params.bytes();
            let trad = measure(params, P2pMode::Traditional);
            // Two transport partitions for large kernels (paper §VI-A2), one
            // otherwise — splitting only pays once each put is still large
            // enough to drive the multi-rail wire at full rate.
            let transports = if bytes as u64 / 2 >= parcomm_net::Fabric::STRIPE_THRESHOLD {
                2
            } else {
                1
            };
            let pe = measure(
                params,
                P2pMode::Partitioned {
                    copy: CopyMechanism::ProgressionEngine,
                    agg: AggLevel::Block,
                    transports,
                },
            );
            vec![grid as f64, goodput_gbps(bytes, trad), goodput_gbps(bytes, pe), trad / pe]
        });
    }
    for row in spec.run(threads).into_values().expect("fig05 sweep") {
        exp.push_row(row);
    }
    summarize(&mut exp, 3, 3);
    exp.note("paper anchors: 2.80x at one grid, 1.17x at the largest grid");
    exp
}

fn summarize(exp: &mut Experiment, first_speedup_col: usize, last_speedup_col: usize) {
    if exp.rows.is_empty() {
        return;
    }
    for col in first_speedup_col..=last_speedup_col {
        let name = exp.columns[col].clone();
        let small = exp.rows[0][col];
        let large = exp.rows[exp.rows.len() - 1][col];
        let max = exp.rows.iter().map(|r| r[col]).fold(f64::MIN, f64::max);
        exp.notes.push(format!(
            "{name}: smallest grid {small:.2}x, largest {large:.2}x, max {max:.2}x"
        ));
    }
}
