//! Traced-run harness behind `--trace-out` / `--metrics-out`.
//!
//! Runs the paper's §VI-B configuration — a 1K-grid partitioned allreduce
//! on 4 GH200 ranks with device-side `MPIX_Pready` — with **causal** span
//! tracing and the metrics registry enabled, then exports:
//!
//! - a Chrome `trace_event` JSON trace (Perfetto-loadable, one track per
//!   rank × layer, causal edges as flow arrows),
//! - folded flamegraph stacks built from the causal chains,
//! - the end-of-run metrics snapshot (PE polls, puts, bytes per rail,
//!   retransmits, watchdog arms/fires) as JSON,
//! - a critical-path report walking the causal graph backward from the
//!   last completion.

use std::sync::Arc;

use parcomm_coll::pallreduce_init;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiError, MpiWorld, Rank};
use parcomm_obs::{
    chrome_trace_json_with_counters, folded_stacks, CriticalPath, MetricsRegistry,
    MetricsSnapshot,
};
use parcomm_sim::{Ctx, Mutex, SimTime, Simulation, Trace, TraceSpan};

/// The artifacts of one traced allreduce run.
pub struct ObsRun {
    /// Every span recorded inside the measured epoch (causal level).
    pub spans: Vec<TraceSpan>,
    /// End-of-run metrics snapshot across every layer.
    pub metrics: MetricsSnapshot,
    /// Timestamped metrics snapshots at the measured-epoch boundaries
    /// (pure atomic reads at deterministic points — digest-neutral),
    /// rendered as Perfetto counter tracks by [`ObsRun::chrome_json`].
    pub counter_samples: Vec<(SimTime, MetricsSnapshot)>,
    /// Start of the measured interval (rank 0).
    pub from: SimTime,
    /// End of the measured interval (rank 0).
    pub to: SimTime,
}

impl ObsRun {
    /// The Chrome `trace_event` JSON export, including `"C"` counter
    /// events for the boundary metrics samples.
    pub fn chrome_json(&self) -> String {
        chrome_trace_json_with_counters(&self.spans, &self.counter_samples)
    }

    /// Folded flamegraph stacks (`rankN;cat;...;cat weight_us` lines).
    pub fn folded(&self) -> String {
        folded_stacks(&self.spans)
    }

    /// The critical path through the causal span graph.
    pub fn critical_path(&self) -> CriticalPath {
        CriticalPath::from_spans(&self.spans)
    }

    /// Human-readable critical-path report including interval coverage.
    pub fn critical_path_report(&self) -> String {
        let cp = self.critical_path();
        format!(
            "{}  coverage of measured interval: {:.1}%\n",
            cp.render(),
            100.0 * cp.coverage_of(self.from, self.to)
        )
    }
}

fn rank_body(
    ctx: &mut Ctx,
    rank: &mut Rank,
    n: usize,
    trace: &Trace,
    window: &Mutex<(SimTime, SimTime)>,
    registry: &MetricsRegistry,
    samples: &Mutex<Vec<(SimTime, MetricsSnapshot)>>,
) -> Result<(), MpiError> {
    let buf = rank.gpu().alloc_global(n * 8);
    let stream = rank.gpu().create_stream();
    let grid = (n as u32).div_ceil(1024);
    let coll = pallreduce_init(ctx, rank, &buf, 4, &stream, 7)?;
    // Warm-up epoch: setup exchange and first-call pbuf_prepare stay
    // outside the measured (and traced) region.
    coll.start(ctx)?;
    coll.pbuf_prepare(ctx)?;
    for u in 0..4 {
        coll.pready(ctx, u)?;
    }
    coll.wait(ctx)?;
    rank.barrier(ctx);
    if rank.rank() == 0 {
        trace.enable_causal(); // record the measured epoch, with handoffs
        window.lock().0 = ctx.now();
        samples.lock().push((ctx.now(), registry.snapshot()));
    }
    coll.start(ctx)?;
    coll.pbuf_prepare(ctx)?;
    let c2 = coll.clone();
    stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| c2.pready_device_all(d));
    coll.wait(ctx)?;
    if rank.rank() == 0 {
        window.lock().1 = ctx.now();
        samples.lock().push((ctx.now(), registry.snapshot()));
    }
    Ok(())
}

/// Run the traced 1K-grid partitioned allreduce (quick mode shrinks the
/// buffer, not the topology). Returns the spans, metrics, and measured
/// window; any rank-level [`MpiError`] or simulation failure is rendered
/// into the error string.
pub fn run_traced_allreduce(quick: bool) -> Result<ObsRun, String> {
    let n = if quick { 64 * 1024 } else { 1024 * 1024 };
    let mut sim = Simulation::with_seed(0x0B5);
    let trace = sim.trace();
    let world = MpiWorld::gh200(&sim, 1);
    let registry = world.enable_metrics();
    let window = Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
    let samples: Arc<Mutex<Vec<(SimTime, MetricsSnapshot)>>> = Arc::new(Mutex::new(Vec::new()));
    let errors: Arc<Mutex<Vec<(usize, MpiError)>>> = Arc::new(Mutex::new(Vec::new()));
    let (t2, w2, e2) = (trace.clone(), window.clone(), errors.clone());
    let (r2, s2) = (registry.clone(), samples.clone());
    world.run_ranks(&mut sim, move |ctx, rank| {
        if let Err(e) = rank_body(ctx, rank, n, &t2, &w2, &r2, &s2) {
            e2.lock().push((rank.rank(), e));
        }
    });
    sim.run().map_err(|e| format!("traced allreduce simulation failed: {e:?}"))?;
    let errors = errors.lock().clone();
    if let Some((r, e)) = errors.first() {
        return Err(format!("traced allreduce: rank {r} failed: {e}"));
    }
    let (from, to) = *window.lock();
    let counter_samples = samples.lock().clone();
    Ok(ObsRun { spans: trace.spans(), metrics: registry.snapshot(), counter_samples, from, to })
}

/// Honor `--trace-out` / `--metrics-out` for a harness: when either is
/// set, run the traced allreduce and write the requested artifacts,
/// printing the critical-path report alongside. Failures are warnings —
/// observability must never fail the benchmark run itself.
pub fn emit_requested_outputs(quick: bool) {
    let trace_path = crate::report::trace_out();
    let metrics_path = crate::report::metrics_out();
    if trace_path.is_none() && metrics_path.is_none() {
        return;
    }
    let run = match run_traced_allreduce(quick) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("warning: {e}");
            return;
        }
    };
    if let Some(path) = &trace_path {
        match std::fs::write(path, run.chrome_json()) {
            Ok(()) => println!("trace written to {path} (load in https://ui.perfetto.dev)"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        let folded = format!("{path}.folded");
        match std::fs::write(&folded, run.folded()) {
            Ok(()) => println!("folded flamegraph stacks written to {folded}"),
            Err(e) => eprintln!("warning: could not write {folded}: {e}"),
        }
    }
    if let Some(path) = &metrics_path {
        match std::fs::write(path, run.metrics.to_json()) {
            Ok(()) => println!("metrics snapshot written to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    print!("{}", run.critical_path_report());
}
