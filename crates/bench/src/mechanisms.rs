//! Three-mechanism head-to-head (DESIGN.md §14): Progression Engine vs
//! Kernel Copy vs the symmetric-heap (shmem) backend on the intra-node
//! device-initiated p2p epoch, across partition sizes.
//!
//! The paper's motivation for a one-sided symmetric backend is the small-
//! partition regime: the PE path pays a host hop (device flag write → PE
//! poll → put post) per transport partition, while a shmem channel's
//! device threads put straight into the peer's symmetric heap and signal
//! completion — no host in the loop, no per-epoch rkey exchange. This
//! harness measures single-epoch latency for all three mechanisms at each
//! partition size and prints a grep-able verdict note, plus the
//! rkey-exchange invariant checked against live counters.

use std::sync::Arc;

use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiWorld, WorldConfig};
use parcomm_sim::{Mutex, Simulation};
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;

/// Run the three-mechanism sweep on the default worker count.
pub fn run(quick: bool) -> Experiment {
    run_threaded(quick, crate::report::threads())
}

/// [`run`] with an explicit sweep worker count.
pub fn run_threaded(quick: bool, threads: usize) -> Experiment {
    let sizes: Vec<usize> = if quick {
        vec![256, 4_096, 65_536]
    } else {
        vec![256, 1_024, 4_096, 16_384, 65_536, 262_144]
    };
    let mut exp = Experiment::new(
        "mechanisms",
        "single-epoch latency (µs) per copy mechanism vs partition size, intra-node device p2p",
        &["partition_bytes", "pe_us", "kc_us", "shmem_us"],
    );
    let mut spec = SweepSpec::new();
    for &bytes in &sizes {
        spec.cell(format!("bytes={bytes}"), move || {
            vec![
                bytes as f64,
                epoch_us(bytes, CopyMechanism::ProgressionEngine),
                epoch_us(bytes, CopyMechanism::KernelCopy),
                epoch_us(bytes, CopyMechanism::Shmem),
            ]
        });
    }
    for row in spec.run(threads).into_values().expect("mechanism sweep") {
        exp.push_row(row);
    }
    let small = exp.rows.first().expect("non-empty sweep").clone();
    let (pe, kc, shmem) = (small[1], small[2], small[3]);
    if shmem < pe {
        exp.note(format!(
            "verdict: shmem beats PE on small partitions ({shmem:.2} µs vs {pe:.2} µs at \
             {} B; kernel copy {kc:.2} µs) — no host hop on the completion path",
            small[0] as usize
        ));
    } else {
        exp.note(format!(
            "verdict: shmem does NOT beat PE on small partitions \
             ({shmem:.2} µs vs {pe:.2} µs at {} B)",
            small[0] as usize
        ));
    }
    let (exchanges, avoided) = shmem_rkey_counters(4_096);
    assert_eq!(exchanges, 0, "shmem epoch packed an rkey");
    assert!(avoided > 0, "shmem epoch avoided no rkey exchanges");
    exp.note(format!(
        "rkey exchanges on the shmem path: {exchanges} ({avoided} avoided via symmetric offsets)"
    ));
    exp
}

/// One intra-node device-initiated epoch (4 user partitions of
/// `partition_bytes` each, 2 transport partitions) under `mechanism`;
/// returns the sender-side latency from kernel launch to `MPI_Wait`.
fn epoch_us(partition_bytes: usize, mechanism: CopyMechanism) -> f64 {
    let (world, mut sim) = build_world(partition_bytes, mechanism);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * partition_bytes);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 14, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                    copy: mechanism,
                    transport_partitions: 2,
                    ..PrequestConfig::default()
                })
                .expect("intra-node prequest negotiates every mechanism");
                rank.barrier(ctx);
                let t0 = ctx.now();
                let stream = rank.gpu().create_stream();
                stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| preq.pready_all(d));
                sreq.wait(ctx).expect("wait");
                *o2.lock() = ctx.now().since(t0).as_micros_f64();
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 14, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rank.barrier(ctx);
                rreq.wait(ctx).expect("wait");
            }
            _ => rank.barrier(ctx),
        }
    });
    sim.run().expect("mechanism epoch");
    let v = *out.lock();
    v
}

/// The rkey invariant, measured rather than asserted from structure: one
/// shmem epoch with live counters, returning
/// `(ucx.rkey_exchanges, shmem.rkey_exchanges_avoided)`.
fn shmem_rkey_counters(partition_bytes: usize) -> (u64, u64) {
    let (world, mut sim) = build_world(partition_bytes, CopyMechanism::Shmem);
    let registry = world.enable_metrics();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 4usize;
        let buf = rank.gpu().alloc_global(parts * partition_bytes);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 15, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                    copy: CopyMechanism::Shmem,
                    transport_partitions: 2,
                    ..PrequestConfig::default()
                })
                .expect("prequest");
                let stream = rank.gpu().create_stream();
                stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| preq.pready_all(d));
                sreq.wait(ctx).expect("wait");
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 15, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
            }
            _ => {}
        }
    });
    sim.run().expect("rkey invariant epoch");
    let snap = registry.snapshot();
    (
        snap.counter("ucx.rkey_exchanges").unwrap_or(0),
        snap.counter("shmem.rkey_exchanges_avoided").unwrap_or(0),
    )
}

/// A one-node world seeded per partition size; the world default mechanism
/// is set to Shmem only when measuring shmem so the classic runs keep the
/// frozen negotiation path.
fn build_world(partition_bytes: usize, mechanism: CopyMechanism) -> (MpiWorld, Simulation) {
    let sim = Simulation::with_seed(0x3EC4 ^ partition_bytes as u64);
    let mut config = WorldConfig::gh200(1);
    if mechanism == CopyMechanism::Shmem {
        config.mechanism = CopyMechanism::Shmem;
    }
    let world = MpiWorld::new(&sim, config);
    (world, sim)
}
