//! Figure 2: the cost of `cudaStreamSynchronize`, and of a vector-add
//! kernel launch + synchronization, across grid sizes.
//!
//! Columns: grid, sync-only µs (±σ), kernel launch+exec+sync total µs,
//! sync share of the total (%), and the "lost overlap" band (device time
//! the CPU spends blocked).

use parcomm_gpu::{CostModel, Gpu, GpuId, KernelSpec};
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;
use crate::stats::{mean, pow2_range, stddev};

/// Run the Fig. 2 sweep. `quick` trims the sweep for smoke runs.
pub fn run(quick: bool) -> Experiment {
    run_threaded(quick, crate::report::threads())
}

/// [`run`] with an explicit sweep worker count: one sweep cell per grid
/// size, byte-identical output at any `threads`.
pub fn run_threaded(quick: bool, threads: usize) -> Experiment {
    let max_grid = if quick { 1024 } else { 128 * 1024 };
    let grids = pow2_range(1, max_grid);
    let samples = if quick { 3 } else { 10 };
    let iters = if quick { 5 } else { 20 };

    let mut exp = Experiment::new(
        "fig02",
        "cudaStreamSynchronize cost and kernel launch+sync vs grid size (block = 1024)",
        &["grid", "sync_us", "sync_sd", "total_us", "sync_pct", "lost_overlap_us"],
    );

    let mut spec = SweepSpec::new();
    for &grid in &grids {
        spec.cell(format!("grid={grid}"), move || {
            let mut sync_only = Vec::new();
            let mut totals = Vec::new();
            for s in 0..samples {
                let (a, b) = sample(grid, iters, s as u64);
                sync_only.extend(a);
                totals.extend(b);
            }
            let sync_us = mean(&sync_only);
            let total = mean(&totals);
            let kernel_device_us = {
                let cm = CostModel::default();
                cm.kernel_duration(&KernelSpec::vector_add(grid, 1024)).as_micros_f64()
            };
            vec![
                grid as f64,
                sync_us,
                stddev(&sync_only),
                total,
                100.0 * sync_us / total,
                kernel_device_us, // CPU blocked while the device computes
            ]
        });
    }
    for row in spec.run(threads).into_values().expect("fig02 sweep") {
        exp.push_row(row);
    }

    let first = &exp.rows[0];
    exp.note(format!(
        "paper anchors: sync 7.8±0.1 µs (measured {:.2}±{:.2}); small-kernel sync share \
         71.6-78.9% (measured {:.1}%)",
        first[1], first[2], first[4]
    ));
    if let Some(last) = exp.rows.last() {
        exp.note(format!(
            "largest grid: sync share {:.2}% (paper: 0.8% at 128K), lost overlap {:.1} µs",
            last[4], last[5]
        ));
    }
    exp
}

/// One sample: `iters` sync-only costs and `iters` launch+exec+sync totals.
fn sample(grid: u32, iters: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut sim = Simulation::with_seed(0xF160_0200 ^ seed);
    let handle = sim.handle();
    let gpu = Gpu::new(GpuId { node: 0, index: 0 }, CostModel::default(), handle);
    let out = std::sync::Arc::new(parcomm_sim::Mutex::new((Vec::new(), Vec::new())));
    let out2 = out.clone();
    sim.spawn("bench", move |ctx| {
        let stream = gpu.create_stream();
        let mut syncs = Vec::with_capacity(iters);
        let mut totals = Vec::with_capacity(iters);
        for _ in 0..iters {
            // Sync-only: stream is idle.
            let t0 = ctx.now();
            stream.synchronize(ctx);
            syncs.push(ctx.now().since(t0).as_micros_f64());
            // Launch + execute + synchronize.
            let t0 = ctx.now();
            stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
            stream.synchronize(ctx);
            totals.push(ctx.now().since(t0).as_micros_f64());
        }
        *out2.lock() = (syncs, totals);
    });
    sim.run().expect("fig02 sample");
    let guard = out.lock();
    guard.clone()
}
