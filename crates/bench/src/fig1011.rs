//! Figures 10 and 11: the data-parallel deep-learning proxy — binary
//! cross-entropy kernel + gradient allreduce — comparing traditional
//! `MPI_Allreduce`, the partitioned allreduce (including per-step
//! `MPI_Start` + `MPIX_Pbuf_prepare`, as the paper measures), and NCCL.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_apps::{nccl_for_world, run_dl, DlConfig, DlModel};
use parcomm_mpi::MpiWorld;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;
use crate::stats::pow2_range;

/// Fig. 10: four GH200 on one node.
pub fn run_fig10(quick: bool) -> Experiment {
    run_fig10_threaded(quick, crate::report::threads())
}

/// [`run_fig10`] with an explicit sweep worker count.
pub fn run_fig10_threaded(quick: bool, threads: usize) -> Experiment {
    run(quick, 1, "fig10", "DL kernel per-step time (µs), 4 GH200", threads)
}

/// Fig. 11: eight GH200 on two nodes.
pub fn run_fig11(quick: bool) -> Experiment {
    run_fig11_threaded(quick, crate::report::threads())
}

/// [`run_fig11`] with an explicit sweep worker count.
pub fn run_fig11_threaded(quick: bool, threads: usize) -> Experiment {
    run(quick, 2, "fig11", "DL kernel per-step time (µs), 8 GH200", threads)
}

fn run(quick: bool, nodes: u16, id: &str, title: &str, threads: usize) -> Experiment {
    // Gradient sizes: grid × 1024 threads × 8 B, large-kernel regime
    // (capped at 4K grids to bound the simulator's staging memory).
    let grids = if quick { vec![64u32, 256] } else { pow2_range(256, 4 * 1024) };
    let mut exp = Experiment::new(
        id,
        title,
        &["grid", "mpi_allreduce_us", "partitioned_us", "nccl_us", "part_vs_mpi", "nccl_vs_part"],
    );
    let mut spec = SweepSpec::new();
    for &grid in &grids {
        spec.cell(format!("grid={grid}"), move || {
            let n = grid as usize * 1024;
            let trad = per_step(nodes, n, DlModel::Traditional, quick);
            let part = per_step(nodes, n, DlModel::Partitioned, quick);
            let nccl = per_step(nodes, n, DlModel::Nccl, quick);
            vec![grid as f64, trad, part, nccl, trad / part, part / nccl]
        });
    }
    for row in spec.run(threads).into_values().expect("fig10/11 sweep") {
        exp.push_row(row);
    }
    exp.note(
        "ordering target (paper Figs. 10/11): NCCL < partitioned << MPI_Allreduce; the \
         application is dominated by the collective, so the Fig. 6/7 gaps carry over",
    );
    exp
}

fn per_step(nodes: u16, elements: usize, model: DlModel, quick: bool) -> f64 {
    let mut sim = Simulation::with_seed(0x1011 ^ elements as u64);
    let world = MpiWorld::gh200(&sim, nodes);
    let nccl = nccl_for_world(&world);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    let steps = if quick { 1 } else { 3 };
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = DlConfig { elements, partitions: 4, steps, functional: false, model };
        let result = run_dl(ctx, rank, &cfg, Some(&nccl)).expect("run_dl");
        if rank.rank() == 0 {
            *out2.lock() = result.per_step.as_micros_f64();
        }
    });
    sim.run().expect("dl point");
    let v = *out.lock();
    v
}
