//! Shared point-to-point measurement harness for Figs. 3/4/5: a sender
//! rank and a receiver rank exchanging one partitioned (or traditional)
//! message per iteration, with the sender's elapsed time recorded.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
use parcomm_gpu::{AggLevel, KernelSpec};
use parcomm_mpi::{MpiError, MpiWorld, WorldConfig};
use parcomm_sim::Simulation;

/// A P2P experiment variant.
#[derive(Copy, Clone, Debug)]
pub enum P2pMode {
    /// Kernel → `cudaStreamSynchronize` → `MPI_Send` (Listing 1).
    Traditional,
    /// GPU-initiated partitioned with the given copy mechanism and
    /// transport partition count.
    Partitioned {
        /// Copy mechanism.
        copy: CopyMechanism,
        /// Notification aggregation level.
        agg: AggLevel,
        /// Transport partitions.
        transports: usize,
    },
}

/// Parameters of one measurement.
#[derive(Copy, Clone, Debug)]
pub struct P2pParams {
    /// Cluster nodes (1 = intra-node pair, 2 = inter-node pair).
    pub nodes: u16,
    /// Sender rank.
    pub sender: usize,
    /// Receiver rank.
    pub receiver: usize,
    /// Kernel grid (blocks of 1024 threads; each thread contributes 8 B).
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Measured iterations (averaged).
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl P2pParams {
    /// Bytes moved per iteration.
    pub fn bytes(&self) -> usize {
        self.grid as usize * self.block as usize * 8
    }
}

/// Run the measurement; returns mean sender-side elapsed µs per iteration
/// (compute + communication, per the paper's Goodput definition).
pub fn measure(params: P2pParams, mode: P2pMode) -> f64 {
    let mut sim = Simulation::with_seed(params.seed);
    // Measuring the symmetric-heap mechanism needs the world default set to
    // Shmem so the channel negotiates symmetric offsets at pbuf_prepare.
    let mut config = WorldConfig::gh200(params.nodes);
    if let P2pMode::Partitioned { copy: CopyMechanism::Shmem, .. } = mode {
        config.mechanism = CopyMechanism::Shmem;
    }
    let world = MpiWorld::new(&sim, config);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    let (sender, receiver) = (params.sender, params.receiver);
    world.run_ranks(&mut sim, move |ctx, rank| {
        let threads = (params.grid as usize * params.block as usize).max(1);
        let bytes = params.bytes().max(8);
        let buf = rank.gpu().alloc_global(bytes);
        let stream = rank.gpu().create_stream();
        // Threads map 1:1 to user partitions (each thread contributes 8 B).
        // Beyond 64K threads the per-partition bookkeeping itself would
        // dominate simulation memory, so user partitions drop to block
        // granularity — the paper's own recommendation ("MPI should
        // aggregate to the block level internally") applied at the source.
        let parts = if threads <= 65_536 { threads } else { params.grid as usize };

        if rank.rank() == sender {
            match mode {
                P2pMode::Traditional => {
                    rank.barrier(ctx);
                    let t0 = ctx.now();
                    for _ in 0..params.iters {
                        stream.launch(
                            ctx,
                            KernelSpec::vector_add(params.grid, params.block),
                            |_| {},
                        );
                        stream.synchronize(ctx);
                        rank.send(ctx, receiver, 7, &buf, 0, bytes);
                    }
                    *out2.lock() =
                        ctx.now().since(t0).as_micros_f64() / params.iters as f64;
                }
                P2pMode::Partitioned { copy, agg, transports } => {
                    let sreq = psend_init(ctx, rank, receiver, 7, &buf, parts).expect("init");
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    let want = PrequestConfig {
                        copy,
                        agg,
                        transport_partitions: transports.min(parts),
                        multi_block_counters: true,
                    };
                    let preq = match prequest_create(ctx, rank, &sreq, want) {
                        Ok(p) => p,
                        // Route-forbidden symmetric access (the inter-node
                        // pair): measure the typed Progression-Engine
                        // fallback the runtime demotes to.
                        Err(MpiError::Shmem(_)) => prequest_create(
                            ctx,
                            rank,
                            &sreq,
                            PrequestConfig {
                                copy: CopyMechanism::ProgressionEngine,
                                ..want
                            },
                        )
                        .expect("PE prequest always available"),
                        Err(e) => panic!("prequest: {e:?}"),
                    };
                    rank.barrier(ctx);
                    // Measured region per the paper: "the time to execute
                    // the equivalent of Kernel_B and MPI_Wait" — the epoch
                    // re-open (MPI_Start + MPIX_Pbuf_prepare) happens
                    // between iterations, outside the timer.
                    let mut total_us = 0.0;
                    for it in 0..params.iters {
                        let t0 = ctx.now();
                        let preq2 = preq.clone();
                        stream.launch(
                            ctx,
                            KernelSpec::vector_add(params.grid, params.block),
                            // Listing 2: each thread marks its partition as
                            // it completes — transfers overlap the kernel.
                            move |d| preq2.pready_all_progressive(d),
                        );
                        sreq.wait(ctx).expect("wait");
                        total_us += ctx.now().since(t0).as_micros_f64();
                        if it + 1 < params.iters {
                            sreq.start(ctx).expect("start");
                            sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        }
                    }
                    *out2.lock() = total_us / params.iters as f64;
                }
            }
        } else if rank.rank() == receiver {
            match mode {
                P2pMode::Traditional => {
                    rank.barrier(ctx);
                    for _ in 0..params.iters {
                        rank.recv(ctx, sender, 7, &buf, 0, bytes);
                    }
                }
                P2pMode::Partitioned { .. } => {
                    let rreq = precv_init(ctx, rank, sender, 7, &buf, parts).expect("init");
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    rank.barrier(ctx);
                    for it in 0..params.iters {
                        rreq.wait(ctx).expect("wait");
                        if it + 1 < params.iters {
                            rreq.start(ctx).expect("start");
                            rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                        }
                    }
                }
            }
        } else {
            rank.barrier(ctx);
        }
    });
    sim.run().expect("p2p measurement");
    let v = *out.lock();
    v
}

/// Goodput in GB/s for `bytes` processed in `elapsed_us`.
pub fn goodput_gbps(bytes: usize, elapsed_us: f64) -> f64 {
    bytes as f64 / (elapsed_us * 1e3)
}
