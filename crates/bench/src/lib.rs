//! # parcomm-bench — experiment harnesses
//!
//! One module per table/figure of the paper's evaluation (§VI); each has a
//! `run(quick) -> Experiment` entry point and a thin binary wrapper in
//! `src/bin/`. `reproduce_all` runs everything and `EXPERIMENTS.md`
//! records the outputs. Set `PARCOMM_RESULTS_DIR` to also write JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod fig02;
pub mod fig03;
pub mod fig0405;
pub mod fig0607;
pub mod fig0809;
pub mod fig1011;
pub mod mechanisms;
pub mod mux;
pub mod obsrun;
pub mod p2p;
pub mod pbench;
pub mod report;
pub mod scaling;
pub mod stats;
pub mod striping;
pub mod table1;

pub use report::{
    fault_seed, mechanism, metrics_out, quick_mode, threads, trace_out, Experiment,
};
