//! A partitioned-communication micro-benchmark suite in the style of the
//! authors' own ICPP'22 benchmarks (paper reference \[16\]): latency,
//! bandwidth, partition-count overhead, achievable overlap, and a halo
//! pattern — all against the partitioned API rather than plain P2P.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, prequest_create, psend_init, PrequestConfig};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::MpiWorld;
use parcomm_sim::Simulation;

use crate::report::Experiment;
use crate::stats::pow2_range;

/// Host-driven partitioned ping-pong latency across payload sizes
/// (1 partition, intra- and inter-node).
pub fn run_latency(quick: bool) -> Experiment {
    run_latency_threaded(quick, crate::report::threads())
}

/// [`run_latency`] with an explicit sweep worker count.
pub fn run_latency_threaded(quick: bool, threads: usize) -> Experiment {
    let sizes = if quick { vec![64u32, 4096] } else { pow2_range(8, 1 << 20) };
    let mut exp = Experiment::new(
        "pbench_latency",
        "Partitioned half-round-trip latency (µs) vs payload, 1 partition",
        &["bytes", "intra_us", "inter_us"],
    );
    let mut spec = parcomm_sweep::SweepSpec::new();
    for &bytes in &sizes {
        spec.cell(format!("bytes={bytes}"), move || {
            vec![
                bytes as f64,
                latency_once(1, 0, 1, bytes as usize, quick),
                latency_once(2, 0, 4, bytes as usize, quick),
            ]
        });
    }
    for row in spec.run(threads).into_values().expect("pbench latency sweep") {
        exp.push_row(row);
    }
    exp.note("half round trip: sender Pready→wait; receiver wait; averaged over iterations");
    exp
}

fn latency_once(nodes: u16, a: usize, b: usize, bytes: usize, quick: bool) -> f64 {
    let iters = if quick { 3 } else { 20 };
    let mut sim = Simulation::with_seed(0x9B01 ^ bytes as u64);
    let world = MpiWorld::gh200(&sim, nodes);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(bytes.max(8));
        if rank.rank() == a {
            let sreq = psend_init(ctx, rank, b, 1, &buf, 1).expect("init");
            sreq.start(ctx).expect("start");
            sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
            rank.barrier(ctx);
            let mut total = 0.0;
            for it in 0..iters {
                let t0 = ctx.now();
                sreq.pready(ctx, 0).expect("pready");
                sreq.wait(ctx).expect("wait");
                total += ctx.now().since(t0).as_micros_f64();
                if it + 1 < iters {
                    sreq.start(ctx).expect("start");
                    sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                }
            }
            *o2.lock() = total / iters as f64;
        } else if rank.rank() == b {
            let rreq = precv_init(ctx, rank, a, 1, &buf, 1).expect("init");
            rreq.start(ctx).expect("start");
            rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
            rank.barrier(ctx);
            for it in 0..iters {
                rreq.wait(ctx).expect("wait");
                if it + 1 < iters {
                    rreq.start(ctx).expect("start");
                    rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                }
            }
        } else {
            rank.barrier(ctx);
        }
    });
    sim.run().expect("pbench latency");
    let v = *out.lock();
    v
}

/// Per-partition overhead: fixed 8 MB payload split into 1..=256
/// partitions, each `MPI_Pready`ed individually by the host.
pub fn run_partition_overhead(quick: bool) -> Experiment {
    run_partition_overhead_threaded(quick, crate::report::threads())
}

/// [`run_partition_overhead`] with an explicit sweep worker count.
pub fn run_partition_overhead_threaded(quick: bool, threads: usize) -> Experiment {
    let parts = if quick { vec![1u32, 16] } else { pow2_range(1, 256) };
    let mut exp = Experiment::new(
        "pbench_partitions",
        "Host Pready cost vs partition count (8 MB payload, intra-node, µs/epoch)",
        &["partitions", "epoch_us", "per_partition_us"],
    );
    let mut spec = parcomm_sweep::SweepSpec::new();
    for &p in &parts {
        spec.cell(format!("partitions={p}"), move || {
            let epoch = partition_epoch(p as usize, quick);
            vec![p as f64, epoch, epoch / p as f64]
        });
    }
    for row in spec.run(threads).into_values().expect("pbench partitions sweep") {
        exp.push_row(row);
    }
    let first = exp.rows.first().map(|r| r[1]).unwrap_or(0.0);
    let last = exp.rows.last().map(|r| r[1]).unwrap_or(0.0);
    exp.note(format!(
        "epoch time {first:.1} µs at 1 partition vs {last:.1} µs at the largest split: put \
         posts pipeline behind the 8 MB wire until the per-put software cost catches up — \
         the overhead balance that motivates the paper's internal aggregation"
    ));
    exp
}

fn partition_epoch(partitions: usize, quick: bool) -> f64 {
    let iters = if quick { 2 } else { 10 };
    let bytes = 8 << 20;
    let mut sim = Simulation::with_seed(0x9B02 ^ partitions as u64);
    let world = MpiWorld::gh200(&sim, 1);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 1, 2, &buf, partitions).expect("init");
                sreq.set_transport_partitions(partitions).expect("set_transport_partitions");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let mut total = 0.0;
                for it in 0..iters {
                    let t0 = ctx.now();
                    for u in 0..partitions {
                        sreq.pready(ctx, u).expect("pready");
                    }
                    sreq.wait(ctx).expect("wait");
                    total += ctx.now().since(t0).as_micros_f64();
                    if it + 1 < iters {
                        sreq.start(ctx).expect("start");
                        sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    }
                }
                *o2.lock() = total / iters as f64;
            }
            1 => {
                let rreq = precv_init(ctx, rank, 0, 2, &buf, partitions).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for it in 0..iters {
                    rreq.wait(ctx).expect("wait");
                    if it + 1 < iters {
                        rreq.start(ctx).expect("start");
                        rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    }
                }
            }
            _ => {}
        }
    });
    sim.run().expect("pbench partitions");
    let v = *out.lock();
    v
}

/// Achievable overlap (Schonbein et al.'s early-bird potential, paper
/// reference \[37\]): fraction of the communication hidden behind the
/// kernel as the compute/transfer ratio varies.
pub fn run_overlap(quick: bool) -> Experiment {
    run_overlap_threaded(quick, crate::report::threads())
}

/// [`run_overlap`] with an explicit sweep worker count.
pub fn run_overlap_threaded(quick: bool, threads: usize) -> Experiment {
    let ratios = if quick { vec![0.5f64, 2.0] } else { vec![0.25, 0.5, 1.0, 2.0, 4.0] };
    let mut exp = Experiment::new(
        "pbench_overlap",
        "Overlap efficiency vs compute/transfer ratio (8 MB inter-node, 8 transports)",
        &["compute_over_transfer", "serial_us", "overlapped_us", "hidden_frac"],
    );
    let mut spec = parcomm_sweep::SweepSpec::new();
    for &r in &ratios {
        spec.cell(format!("ratio={r}"), move || {
            let (serial, overlapped) = overlap_once(r, quick);
            let ideal_hidden = serial - overlapped;
            let comm = serial / (1.0 + r); // transfer share of the serial time
            vec![r, serial, overlapped, (ideal_hidden / comm).clamp(0.0, 1.0)]
        });
    }
    for row in spec.run(threads).into_values().expect("pbench overlap sweep") {
        exp.push_row(row);
    }
    exp.note(
        "hidden_frac: share of the wire time buried under the kernel via progressive \
         MPIX_Pready — approaches 1 when compute dominates, as the early-bird model predicts",
    );
    exp
}

fn overlap_once(ratio: f64, quick: bool) -> (f64, f64) {
    // Fixed 8 MB payload inter-node ≈ transfer_us on the wire; scale the
    // kernel flops so compute = ratio × transfer.
    let bytes = 8 << 20;
    let transfer_us = bytes as f64 / (4.0 * 50.0 * 1e3); // striped wire estimate
    let flops_total = ratio * transfer_us * 60_000.0 * 1e3; // gflops model inverse
    let threads = 1024.0 * 1024.0;
    let flops_per_thread = flops_total / threads;
    let kernel = KernelSpec::new("overlap", 1024, 1024).with_flops(flops_per_thread);
    let serial = overlap_measure(kernel.clone(), bytes, false, quick);
    let overlapped = overlap_measure(kernel, bytes, true, quick);
    (serial, overlapped)
}

fn overlap_measure(kernel: KernelSpec, bytes: usize, progressive: bool, quick: bool) -> f64 {
    let iters = if quick { 2 } else { 5 };
    let mut sim = Simulation::with_seed(0x9B03 ^ progressive as u64);
    let world = MpiWorld::gh200(&sim, 2);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 64usize;
        let buf = rank.gpu().alloc_global(bytes);
        match rank.rank() {
            0 => {
                let sreq = psend_init(ctx, rank, 4, 3, &buf, parts).expect("init");
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig { transport_partitions: 8, ..PrequestConfig::default() },
                )
                .expect("prequest");
                let stream = rank.gpu().create_stream();
                let mut total = 0.0;
                for it in 0..iters {
                    let t0 = ctx.now();
                    let p2 = preq.clone();
                    let spec = kernel.clone();
                    stream.launch(ctx, spec, move |d| {
                        if progressive {
                            p2.pready_all_progressive(d);
                        } else {
                            p2.pready_all(d);
                        }
                    });
                    sreq.wait(ctx).expect("wait");
                    total += ctx.now().since(t0).as_micros_f64();
                    if it + 1 < iters {
                        sreq.start(ctx).expect("start");
                        sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    }
                }
                *o2.lock() = total / iters as f64;
            }
            4 => {
                let rreq = precv_init(ctx, rank, 0, 3, &buf, parts).expect("init");
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for it in 0..iters {
                    rreq.wait(ctx).expect("wait");
                    if it + 1 < iters {
                        rreq.start(ctx).expect("start");
                        rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                    }
                }
            }
            _ => {}
        }
    });
    sim.run().expect("pbench overlap");
    let v = *out.lock();
    v
}
