//! Figures 6 and 7: allreduce comparison — traditional `MPI_Allreduce`
//! vs the partitioned allreduce vs NCCL, on one node (4 GH200) and two
//! nodes (8 GH200). Large kernel grid sizes, ring algorithm everywhere.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_apps::nccl_for_world;
use parcomm_coll::pallreduce_init;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::MpiWorld;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;
use crate::stats::pow2_range;

/// Which collective implementation a measurement uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Coll {
    Traditional,
    Partitioned,
    Nccl,
}

/// Fig. 6: one node, four GH200.
pub fn run_fig06(quick: bool) -> Experiment {
    run_fig06_threaded(quick, crate::report::threads())
}

/// [`run_fig06`] with an explicit sweep worker count.
pub fn run_fig06_threaded(quick: bool, threads: usize) -> Experiment {
    run(quick, 1, "fig06", "Allreduce, 4 GH200 (one node): kernel + collective time (µs)", threads)
}

/// Fig. 7: two nodes, eight GH200.
pub fn run_fig07(quick: bool) -> Experiment {
    run_fig07_threaded(quick, crate::report::threads())
}

/// [`run_fig07`] with an explicit sweep worker count.
pub fn run_fig07_threaded(quick: bool, threads: usize) -> Experiment {
    run(quick, 2, "fig07", "Allreduce, 8 GH200 (two nodes): kernel + collective time (µs)", threads)
}

fn run(quick: bool, nodes: u16, id: &str, title: &str, threads: usize) -> Experiment {
    // Paper: large grids only (ring maximizes bandwidth for large
    // messages); 1K..32K blocks of 1024 threads → 8..256 MB buffers. The
    // full-sweep cap is 8K grids: beyond that the *simulator's* staging
    // buffers (2(P-1) chunk slots per channel) exceed the test machine's
    // RAM; the trend is flat in the bandwidth-bound regime.
    let grids = if quick { vec![64u32, 256] } else { pow2_range(1024, 8 * 1024) };
    let mut exp = Experiment::new(
        id,
        title,
        &["grid", "mpi_allreduce_us", "partitioned_us", "nccl_us", "part_vs_mpi", "nccl_gap_us"],
    );
    let mut spec = SweepSpec::new();
    for &grid in &grids {
        spec.cell(format!("grid={grid}"), move || {
            let n = grid as usize * 1024;
            let trad = timed(nodes, n, Coll::Traditional, quick);
            let part = timed(nodes, n, Coll::Partitioned, quick);
            let nccl = timed(nodes, n, Coll::Nccl, quick);
            vec![grid as f64, trad, part, nccl, trad / part, part - nccl]
        });
    }
    for row in spec.run(threads).into_values().expect("fig06/07 sweep") {
        exp.push_row(row);
    }
    if let Some(first) = exp.rows.first() {
        exp.note(format!(
            "smallest grid: partitioned {:.1}x faster than MPI_Allreduce; NCCL leads the \
             partitioned allreduce by {:.1} µs (paper: ~226 µs at 1K grids; the gap is the \
             per-step reduce kernel + cudaStreamSynchronize inside the schedule)",
            first[4], first[5]
        ));
    }
    exp.note("ordering target (paper Figs. 6/7): NCCL < partitioned << MPI_Allreduce");
    exp
}

fn timed(nodes: u16, n: usize, coll: Coll, quick: bool) -> f64 {
    let iters = if quick { 1 } else { 3 };
    let mut sim = Simulation::with_seed(0x0607 ^ n as u64 ^ (coll as u64) << 40);
    let world = MpiWorld::gh200(&sim, nodes);
    let nccl = nccl_for_world(&world);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let partitions = 4usize;
        let buf = rank.gpu().alloc_global(n * 8);
        let stream = rank.gpu().create_stream();
        let grid = (n as u32).div_ceil(1024).max(1);
        let part_coll = if coll == Coll::Partitioned {
            Some(pallreduce_init(ctx, rank, &buf, partitions, &stream, 17).expect("init"))
        } else {
            None
        };
        rank.barrier(ctx);
        let t0 = ctx.now();
        for it in 0..iters {
            match coll {
                Coll::Traditional => {
                    stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
                    stream.synchronize(ctx);
                    rank.allreduce_hoststaged_f64(ctx, &buf, 0, n, &stream);
                }
                Coll::Partitioned => {
                    let c = part_coll.as_ref().expect("initialized");
                    c.start(ctx).expect("start");
                    c.pbuf_prepare(ctx).expect("pbuf_prepare");
                    let c2 = c.clone();
                    stream.launch(ctx, KernelSpec::vector_add(grid, 1024), move |d| {
                        c2.pready_device_all(d)
                    });
                    c.wait(ctx).expect("wait");
                }
                Coll::Nccl => {
                    stream.launch(ctx, KernelSpec::vector_add(grid, 1024), |_| {});
                    let done = nccl.all_reduce_f64(ctx, rank.rank(), &buf, 0, n, &stream);
                    ctx.wait(&done);
                }
            }
            let _ = it;
        }
        if rank.rank() == 0 {
            *out2.lock() = ctx.now().since(t0).as_micros_f64() / iters as f64;
        }
    });
    sim.run().expect("fig06/07 point");
    let v = *out.lock();
    v
}
