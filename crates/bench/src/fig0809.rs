//! Figures 8 and 9: Jacobi solver GFLOP/s, traditional vs partitioned,
//! with the problem-size multiplier swept 1..=32 in powers of two
//! (2×2 decomposition on four GH200, 4×2 on eight).

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_apps::{run_jacobi, JacobiConfig, JacobiModel};
use parcomm_core::CopyMechanism;
use parcomm_mpi::MpiWorld;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;

use crate::report::Experiment;

/// Fig. 8: four GH200 on one node.
pub fn run_fig08(quick: bool) -> Experiment {
    run_fig08_threaded(quick, crate::report::threads())
}

/// [`run_fig08`] with an explicit sweep worker count.
pub fn run_fig08_threaded(quick: bool, threads: usize) -> Experiment {
    run(quick, 1, "fig08", "Jacobi solver GFLOP/s, 4 GH200 (2x2 decomposition)", threads)
}

/// Fig. 9: eight GH200 on two nodes.
pub fn run_fig09(quick: bool) -> Experiment {
    run_fig09_threaded(quick, crate::report::threads())
}

/// [`run_fig09`] with an explicit sweep worker count.
pub fn run_fig09_threaded(quick: bool, threads: usize) -> Experiment {
    run(quick, 2, "fig09", "Jacobi solver GFLOP/s, 8 GH200 (4x2 decomposition)", threads)
}

fn run(quick: bool, nodes: u16, id: &str, title: &str, threads: usize) -> Experiment {
    let multipliers: Vec<usize> =
        if quick { vec![1, 4] } else { vec![1, 2, 4, 8, 16, 32] };
    let mut exp = Experiment::new(
        id,
        title,
        &["multiplier", "trad_gflops", "part_gflops", "speedup"],
    );
    let mut spec = SweepSpec::new();
    for &m in &multipliers {
        spec.cell(format!("multiplier={m}"), move || {
            let trad = gflops(nodes, m, JacobiModel::Traditional, quick);
            // The paper evaluates one partitioned implementation across both
            // figures; the Progression Engine design works for every neighbor
            // pair (Kernel Copy is intra-node only).
            let part = gflops(
                nodes,
                m,
                JacobiModel::Partitioned(CopyMechanism::ProgressionEngine),
                quick,
            );
            vec![m as f64, trad, part, part / trad]
        });
    }
    for row in spec.run(threads).into_values().expect("fig08/09 sweep") {
        exp.push_row(row);
    }
    let max_speedup =
        exp.rows.iter().map(|r| r[3]).fold(f64::MIN, f64::max);
    exp.note(format!(
        "max speedup {max_speedup:.2}x (paper: 1.06x on one node, 1.30x on two); gains \
         concentrate at small multipliers and plateau as compute dominates"
    ));
    exp
}

fn gflops(nodes: u16, multiplier: usize, model: JacobiModel, quick: bool) -> f64 {
    let mut sim = Simulation::with_seed(0x0809 ^ multiplier as u64);
    let world = MpiWorld::gh200(&sim, nodes);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    let iterations = if quick { 5 } else { 30 };
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = JacobiConfig {
            base_h: 512,
            base_w: 512,
            multiplier,
            iterations,
            functional: false,
            model,
            stencil_gbps: 300.0,
        };
        let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
        if rank.rank() == 0 {
            *out2.lock() = result.gflops;
        }
    });
    sim.run().expect("jacobi point");
    let v = *out.lock();
    v
}
