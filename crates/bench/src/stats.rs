//! Sample statistics for experiment reporting (mean ± stddev over repeated
//! simulation samples, as the paper reports in Table I).

/// Mean of a sample set.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Geometric series of powers of two: `lo, 2lo, …, ≤ hi`.
pub fn pow2_range(lo: u32, hi: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        match x.checked_mul(2) {
            Some(n) => x = n,
            None => break,
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn pow2_ranges() {
        assert_eq!(pow2_range(1, 16), vec![1, 2, 4, 8, 16]);
        assert_eq!(pow2_range(3, 20), vec![3, 6, 12]);
        assert_eq!(pow2_range(8, 4), Vec::<u32>::new());
    }
}
