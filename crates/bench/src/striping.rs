//! Multi-path striping ablation: cross-node partitioned p2p goodput as a
//! function of the channel's stripe count.
//!
//! The sender sits on the last GPU of node 0 and the receiver on the
//! first GPU of node 1, so with stripe count 1 every transport partition
//! funnels through the sender's single NIC rail — the exact pathology the
//! gap-decomposition bench shows for flat cross-node schedules. Raising
//! `set_stripes` splits each data put into a
//! [`MultiPathPlan`](parcomm_net::MultiPathPlan): stripes hop over NVLink
//! to the GPUs fronting the other rails (partition), ride their NIC pair
//! concurrently (translate), and hop to the destination GPU on the far
//! node (assemble). Per-put payloads sit *below* the fabric's implicit
//! [`parcomm_net::Fabric::STRIPE_THRESHOLD`], so the measured regime is
//! the one only plan-driven striping can spread.
//!
//! Every cell is a deterministic simulation digested end to end;
//! `tests/striping.rs` freezes the 1-, 2-, and 4-stripe digests, and the
//! CI `scale` job diffs a serial sweep against a 4-worker sweep and greps
//! the goodput verdict line.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_core::{precv_init, psend_init};
use parcomm_mpi::MpiWorld;
use parcomm_sim::Simulation;
use parcomm_sweep::SweepSpec;
use parcomm_testkit::digest;

use crate::report::Experiment;

/// Sim seed for every striping cell; frozen by `tests/striping.rs`.
pub const STRIPING_SEED: u64 = 0x0057_12E5;

/// Default stripe-count grid: single-path baseline, half the rails, all
/// four rails of the GH200 nodes.
pub fn default_stripes(_quick: bool) -> Vec<usize> {
    vec![1, 2, 4]
}

/// Stripe counts from `--stripes 1,2,4` or `PARCOMM_STRIPES`, if given.
pub fn stripes_arg() -> Option<Vec<usize>> {
    fn parse(list: &str) -> Option<Vec<usize>> {
        let stripes: Vec<usize> =
            list.split(',').map(|s| s.trim().parse().ok()).collect::<Option<_>>()?;
        (!stripes.is_empty()).then_some(stripes)
    }
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--stripes" {
            return args.next().as_deref().and_then(parse);
        }
        if let Some(v) = a.strip_prefix("--stripes=") {
            return parse(v);
        }
    }
    std::env::var("PARCOMM_STRIPES").ok().as_deref().and_then(parse)
}

/// One timed + digested run: a warm-up epoch, then one measured epoch of
/// an 8-partition cross-node psend/precv (last GPU of node 0 → first GPU
/// of node 1) with the sender's channel set to `stripes`. Returns
/// `(measured µs, run digest)`. The receiver verifies the payload before
/// the run digests, so a mis-assembled stripe fails loudly rather than
/// producing a fast-but-wrong number. Needs `nodes >= 2`.
pub fn striped_p2p_cell(nodes: u16, stripes: usize, partition_bytes: usize) -> (f64, u64) {
    assert!(nodes >= 2, "striping cell is cross-node by construction");
    let mut sim = Simulation::with_seed(STRIPING_SEED);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, nodes);
    let gpus = world.topology().gpus_per_node() as usize;
    let (sender, receiver) = (gpus - 1, gpus);
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let parts = 8usize;
        let buf = rank.gpu().alloc_global(parts * partition_bytes);
        if rank.rank() == sender {
            let sreq = psend_init(ctx, rank, receiver, 21, &buf, parts).expect("psend init");
            sreq.set_transport_partitions(parts).expect("transports");
            sreq.set_stripes(stripes).expect("stripes");
            let epoch = |ctx: &mut parcomm_sim::Ctx| {
                for u in 0..parts {
                    buf.write_f64_slice(u * partition_bytes, &[(u + 1) as f64; 16]);
                }
                sreq.start(ctx).expect("start");
                sreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                for u in 0..parts {
                    sreq.pready(ctx, u).expect("pready");
                }
                sreq.wait(ctx).expect("wait");
            };
            epoch(ctx);
            rank.barrier(ctx);
            let t0 = ctx.now();
            epoch(ctx);
            *o2.lock() = ctx.now().since(t0).as_micros_f64();
        } else if rank.rank() == receiver {
            let rreq = precv_init(ctx, rank, sender, 21, &buf, parts).expect("precv init");
            let epoch = |ctx: &mut parcomm_sim::Ctx| {
                rreq.start(ctx).expect("start");
                rreq.pbuf_prepare(ctx).expect("pbuf_prepare");
                rreq.wait(ctx).expect("wait");
                for u in 0..parts {
                    assert_eq!(
                        buf.read_f64(u * partition_bytes),
                        (u + 1) as f64,
                        "stripe reassembly corrupted partition {u}"
                    );
                }
            };
            epoch(ctx);
            rank.barrier(ctx);
            epoch(ctx);
        } else {
            rank.barrier(ctx);
        }
    });
    let report = sim.run().expect("striping cell sim");
    let us = *out.lock();
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64(us);
    (us, d.finish())
}

/// Run the striping ablation with the shared CLI/env policy.
pub fn run(quick: bool) -> Experiment {
    let stripes = stripes_arg().unwrap_or_else(|| default_stripes(quick));
    run_threaded(&stripes, quick, crate::report::threads())
}

/// [`run`] with explicit stripe grid and sweep worker count.
pub fn run_threaded(stripes: &[usize], quick: bool, threads: usize) -> Experiment {
    let partition_bytes = if quick { 64 * 1024 } else { 256 * 1024 };
    let nodes: u16 = 2;
    let mut exp = Experiment::new(
        "striping",
        "Multi-path striping: cross-node partitioned p2p goodput vs stripe count (2 nodes)",
        &["nodes", "stripes", "epoch_us", "goodput_gbps", "speedup_vs_1stripe"],
    );
    let mut spec = SweepSpec::new();
    for &s in stripes {
        spec.cell(format!("nodes={nodes},stripes={s}"), move || {
            let (us, digest) = striped_p2p_cell(nodes, s, partition_bytes);
            let bytes = (8 * partition_bytes) as f64;
            let row = vec![nodes as f64, s as f64, us, bytes / (us * 1e3)];
            let note = format!("nodes={nodes},stripes={s}: digest 0x{digest:016x}");
            (row, note)
        });
    }
    let mut single_path_us = None;
    for (mut row, note) in spec.run(threads).into_values().expect("striping sweep") {
        if row[1] == 1.0 {
            single_path_us = Some(row[2]);
        }
        row.push(single_path_us.map(|base| base / row[2]).unwrap_or(f64::NAN));
        exp.push_row(row);
        exp.note(note);
    }
    let base = exp.rows.iter().find(|r| r[1] == 1.0).map(|r| r[3]);
    let best = exp
        .rows
        .iter()
        .filter(|r| r[1] > 1.0)
        .max_by(|a, b| a[3].total_cmp(&b[3]))
        .map(|r| (r[1], r[3]));
    if let (Some(base_gbps), Some((s, best_gbps))) = (base, best) {
        if best_gbps > base_gbps {
            exp.note(format!(
                "striped cross-node goodput beats single-path at {nodes} nodes: \
                 {best_gbps:.2} GB/s at {s} stripes vs {base_gbps:.2} GB/s on one rail"
            ));
        }
    }
    exp.note(
        "cell digests are deterministic at seed 0x005712E5; \
         tests/striping.rs freezes the cross-node stripe digests",
    );
    exp
}
