//! Frozen digests and ordering guarantees for the scaling bench.
//!
//! Every cell is a deterministic simulation at `SCALING_SEED`; these
//! digests change only when the stack's event stream changes, in which
//! case the new values must be reviewed and re-frozen deliberately.

use parcomm_bench::scaling::allreduce_cell;

/// Quick-mode chunk size (`run_scaling_threaded(_, quick=true, _)`).
const QUICK_CHUNK: usize = 256;

#[test]
fn one_node_hierarchical_is_identical_to_flat() {
    let (flat_us, flat_digest) = allreduce_cell(1, false, QUICK_CHUNK);
    let (hier_us, hier_digest) = allreduce_cell(1, true, QUICK_CHUNK);
    // On one node the hierarchical schedule degenerates to the flat ring
    // step-for-step, so the whole run — not just the result — matches.
    assert_eq!(flat_us, hier_us);
    assert_eq!(flat_digest, hier_digest);
    assert_eq!(flat_digest, 0x2bd1ad9f533d886b, "1-node scaling digest drifted");
}

#[test]
fn two_node_digests_are_frozen() {
    let (_, flat_digest) = allreduce_cell(2, false, QUICK_CHUNK);
    let (_, hier_digest) = allreduce_cell(2, true, QUICK_CHUNK);
    assert_eq!(flat_digest, 0xb214bd8b90fcc645, "2-node flat digest drifted");
    assert_eq!(hier_digest, 0x39f2f6c6b2441086, "2-node hierarchical digest drifted");
}

#[test]
fn four_node_hierarchical_beats_flat_and_digests_are_frozen() {
    let (flat_us, flat_digest) = allreduce_cell(4, false, QUICK_CHUNK);
    let (hier_us, hier_digest) = allreduce_cell(4, true, QUICK_CHUNK);
    assert_eq!(flat_digest, 0x8630c98097a980ca, "4-node flat digest drifted");
    assert_eq!(hier_digest, 0x08ab624b4d6d1b86, "4-node hierarchical digest drifted");
    // The acceptance bar: past the paper's testbed the node-aware
    // schedule strictly wins — 2(N-1)=6 IB-paced steps per rank against
    // the flat ring's 2(NG-1)=30.
    assert!(
        hier_us < flat_us,
        "hierarchical ({hier_us} µs) must beat flat ({flat_us} µs) at 4 nodes"
    );
}
