//! Self-tests of the experiment harness: measurements are deterministic
//! (same seed ⇒ identical virtual-time results), experiments are
//! well-formed, and the quick sweeps stay cheap.

use parcomm_bench::p2p::{goodput_gbps, measure, P2pMode, P2pParams};
use parcomm_bench::{fig02, fig03, stats};
use parcomm_core::CopyMechanism;
use parcomm_gpu::AggLevel;

fn params(seed: u64) -> P2pParams {
    P2pParams { nodes: 1, sender: 0, receiver: 1, grid: 8, block: 1024, iters: 5, seed }
}

#[test]
fn measurements_are_deterministic() {
    for mode in [
        P2pMode::Traditional,
        P2pMode::Partitioned {
            copy: CopyMechanism::ProgressionEngine,
            agg: AggLevel::Block,
            transports: 1,
        },
        P2pMode::Partitioned {
            copy: CopyMechanism::KernelCopy,
            agg: AggLevel::Block,
            transports: 2,
        },
    ] {
        let a = measure(params(11), mode);
        let b = measure(params(11), mode);
        assert_eq!(a, b, "same seed must give identical virtual time ({mode:?})");
    }
}

#[test]
fn different_seeds_jitter_but_agree_closely() {
    let a = measure(params(1), P2pMode::Traditional);
    let b = measure(params(2), P2pMode::Traditional);
    assert!((a - b).abs() / a < 0.1, "jitter should be small: {a} vs {b}");
}

#[test]
fn goodput_math() {
    // 1 GB in 1 s = 1 GB/s; expressed in µs.
    assert!((goodput_gbps(1_000_000_000, 1_000_000.0) - 1.0).abs() < 1e-12);
    assert!((goodput_gbps(8192, 8.192) - 1.0).abs() < 1e-12);
}

#[test]
fn quick_experiments_are_well_formed() {
    let e2 = fig02::run(true);
    assert_eq!(e2.columns.len(), 6);
    assert!(!e2.rows.is_empty());
    assert!(e2.rows.iter().all(|r| r.len() == e2.columns.len()));
    assert!(!e2.notes.is_empty());

    let e3 = fig03::run(true);
    assert_eq!(e3.columns[0], "threads");
    // Block-level cost must not exceed warp, which must not exceed thread,
    // at the full-block row.
    let last = e3.rows.last().expect("rows");
    assert!(last[3] <= last[2] && last[2] <= last[1]);
}

#[test]
fn pow2_range_drives_sweeps() {
    assert_eq!(stats::pow2_range(1, 8), vec![1, 2, 4, 8]);
}
