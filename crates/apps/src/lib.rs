//! # parcomm-apps — application kernels
//!
//! The paper's two application-level evaluations (§VI-D): a multi-GPU 2-D
//! Jacobi solver with halo exchange (traditional vs GPU-initiated
//! partitioned), and a data-parallel deep-learning proxy (binary
//! cross-entropy kernel + gradient allreduce in traditional, partitioned,
//! and NCCL variants).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod deep_learning;
mod jacobi;
mod moe;

pub use deep_learning::{nccl_for_world, run_dl, DlConfig, DlModel, DlResult};
pub use jacobi::{jacobi_reference, process_grid, run_jacobi, JacobiConfig, JacobiModel, JacobiResult};
pub use moe::{moe_reference, route, run_moe, MoeConfig, MoeResult};
