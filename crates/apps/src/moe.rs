//! Mixture-of-Experts dispatch/combine all-to-all over mux-admitted
//! partitioned channels.
//!
//! Every rank hosts one expert; every rank owns `tokens_per_rank` tokens
//! per tenant. A layer is the classic MoE exchange pair:
//!
//! - **dispatch**: each token is routed (deterministic hash router) to an
//!   expert rank and shipped there over the tenant's persistent
//!   partitioned channel for that peer — one user partition per token
//!   slot, so arrival granularity is per-token;
//! - **expert compute**: the expert transforms every token it received
//!   (`y = 2x + bias(expert)`);
//! - **combine**: results ship back over the reverse channels and land in
//!   the token's home slot.
//!
//! Channels are *not* opened by hand: every (tenant, peer, kind,
//! direction) channel is submitted to a [`parcomm_mux::MuxService`] and
//! admitted in batched ticks, so a cell with many tenants exercises
//! admission batching, the weighted-fair admission interleave, and the
//! indexed channel table on its completion path. Capacity is bounded the
//! way real MoE routers bound it: each channel carries at most
//! `capacity_factor × tokens_per_rank / size` token slots and overflow
//! tokens are *dropped* (they keep their residual value), with the drop
//! count reported.
//!
//! Every phase is **GPU-initiated**: one kernel per phase marks every
//! send channel ready in-kernel (`MPIX_Pready_all`), whatever the copy
//! mechanism — flag writes drained by the Progression Engine, rkey-mapped
//! kernel copies, or symmetric-heap puts and signals. The host never
//! calls `MPI_Pready`, matching the dispatch/combine shape of a real
//! GPU-resident MoE layer.
//!
//! With `functional = true` the router, expert arithmetic, and combine
//! unpacking really run, and [`moe_reference`] computes the identical
//! result serially for bit-for-bit comparison.

use parcomm_core::{prequest_create, CopyMechanism, PrequestConfig};
use parcomm_gpu::{AggLevel, Buffer, KernelSpec};
use parcomm_mpi::{MpiError, Rank};
use parcomm_mux::{ChannelSpec, Direction, MuxChannelId, MuxConfig, MuxService};
use parcomm_sim::{Ctx, SimDuration};

/// MoE cell configuration. All ranks must use identical values.
#[derive(Clone, Debug)]
pub struct MoeConfig {
    /// Independent model replicas (tenants) sharing the world; each runs
    /// its own dispatch/combine exchange every layer.
    pub tenants: usize,
    /// Weight per tenant (admission + drain fairness). Length must equal
    /// `tenants`.
    pub tenant_weights: Vec<u64>,
    /// Tokens homed on each rank, per tenant.
    pub tokens_per_rank: usize,
    /// Hidden dimension: each token is `hidden` f64 values.
    pub hidden: usize,
    /// MoE layers to run (one dispatch + one combine each).
    pub layers: usize,
    /// Router capacity factor ×100 (e.g. 200 = 2.0): per-channel slot
    /// budget is `cf · tokens_per_rank / (100 · size)`, minimum 1.
    pub capacity_factor_pct: usize,
    /// Copy mechanism for the expert-bound traffic. Sends are always
    /// driven from a device kernel (`MPIX_Pready` in-kernel):
    /// `ProgressionEngine` writes device flags the engine drains,
    /// `KernelCopy` issues rkey-mapped stores, `Shmem` issues
    /// symmetric-heap puts and signals — each with the usual fall back to
    /// the Progression Engine on ineligible routes.
    pub mechanism: CopyMechanism,
    /// Run the router/expert arithmetic (tests) or cost-only (sweeps).
    pub functional: bool,
    /// Routing seed.
    pub seed: u64,
}

impl MoeConfig {
    /// A small functional configuration for tests.
    pub fn functional_test(mechanism: CopyMechanism) -> Self {
        MoeConfig {
            tenants: 2,
            tenant_weights: vec![3, 1],
            tokens_per_rank: 8,
            hidden: 4,
            layers: 2,
            capacity_factor_pct: 200,
            mechanism,
            functional: true,
            seed: 0x0E0E,
        }
    }

    /// Per-channel token-slot capacity for a world of `size` ranks.
    pub fn capacity(&self, size: usize) -> usize {
        (self.capacity_factor_pct * self.tokens_per_rank / (100 * size)).max(1)
    }
}

/// Result of a cell run on one rank.
#[derive(Clone, Debug)]
pub struct MoeResult {
    /// Virtual time spent in the layer loop (admission excluded).
    pub elapsed: SimDuration,
    /// Tokens routed to a remote expert across all layers and tenants.
    pub tokens_routed: u64,
    /// Tokens dropped at capacity across all layers and tenants.
    pub tokens_dropped: u64,
    /// Sum of final token values homed on this rank (functional runs
    /// only; 0.0 otherwise).
    pub checksum: f64,
    /// Channels this rank admitted through the mux.
    pub channels: usize,
}

/// Deterministic token router (FNV-style mix): the expert rank for token
/// `i` of `tenant` homed on `rank`.
pub fn route(seed: u64, tenant: usize, rank: usize, token: usize, size: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for v in [tenant as u64, rank as u64, token as u64] {
        h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    (h % size as u64) as usize
}

/// The expert transform applied by `expert` (= rank) to token value `x`.
fn expert_transform(expert: usize, x: f64) -> f64 {
    2.0 * x + (expert + 1) as f64
}

/// Initial value of token `i` of `tenant` homed on `rank` — strictly
/// positive so 0.0 can mark padding slots.
fn token_init(tenant: usize, rank: usize, i: usize) -> f64 {
    1.0 + (tenant * 131 + rank * 17 + i) as f64 * 0.25
}

/// Dispatch/combine channel kinds (tag space).
const KIND_DISPATCH: u64 = 0;
const KIND_COMBINE: u64 = 1;

fn tag_of(tenant: usize, kind: u64) -> u64 {
    0x4000 + tenant as u64 * 2 + kind
}

/// Per-(tenant, peer) channel bundle on this rank.
struct PeerChannels {
    peer: usize,
    dispatch_send: MuxChannelId,
    dispatch_recv: MuxChannelId,
    combine_send: MuxChannelId,
    combine_recv: MuxChannelId,
    dispatch_buf_send: Buffer,
    dispatch_buf_recv: Buffer,
    combine_buf_send: Buffer,
    combine_buf_recv: Buffer,
    /// Device prequests (KernelCopy mechanism only).
    dispatch_preq: Option<parcomm_core::DevicePrequest>,
    combine_preq: Option<parcomm_core::DevicePrequest>,
}

/// Run the MoE cell on this rank. All ranks must call it with identical
/// configuration; the mux admission contract (paired ticks) is satisfied
/// by construction because every rank submits the mirrored channel set.
pub fn run_moe(ctx: &mut Ctx, rank: &Rank, cfg: &MoeConfig) -> Result<MoeResult, MpiError> {
    assert_eq!(cfg.tenant_weights.len(), cfg.tenants, "one weight per tenant");
    let size = rank.size();
    let me = rank.rank();
    let cap = cfg.capacity(size);
    let slot_bytes = cfg.hidden * 8;
    let gpu = rank.gpu();
    // Every mechanism marks readiness from a kernel: the stream is what
    // emits flag writes (PE), kernel copies (KC), or symmetric puts +
    // signals (shmem), so device-level fault schedules meet MoE traffic.
    let stream = gpu.create_stream();

    // ---- Admission: submit every channel, drain ticks until admitted.
    let mut mux = MuxService::new(rank.world(), MuxConfig {
        tenant_weights: cfg.tenant_weights.clone(),
        tick_batch: 256,
        max_in_flight: usize::MAX / 2,
    });
    // Peers in deterministic order; per peer, the four channels of each
    // tenant. Buffer slots are one user partition per token slot.
    let mut bundles: Vec<Vec<PeerChannels>> = Vec::with_capacity(cfg.tenants);
    let mut submitted: Vec<Vec<(usize, [Buffer; 4])>> = Vec::with_capacity(cfg.tenants);
    for t in 0..cfg.tenants {
        let mut per_peer = Vec::new();
        for peer in (0..size).filter(|&p| p != me) {
            let bufs = [
                gpu.alloc_global(cap * slot_bytes),
                gpu.alloc_global(cap * slot_bytes),
                gpu.alloc_global(cap * slot_bytes),
                gpu.alloc_global(cap * slot_bytes),
            ];
            let specs = [
                (tag_of(t, KIND_DISPATCH), Direction::Send),
                (tag_of(t, KIND_DISPATCH), Direction::Recv),
                (tag_of(t, KIND_COMBINE), Direction::Send),
                (tag_of(t, KIND_COMBINE), Direction::Recv),
            ];
            for (i, (tag, direction)) in specs.into_iter().enumerate() {
                mux.submit(
                    ChannelSpec {
                        tenant: t,
                        peer,
                        tag,
                        partitions: cap,
                        partition_bytes: slot_bytes,
                        direction,
                    },
                    bufs[i].clone(),
                )
                .expect("moe submission within caps");
            }
            per_peer.push((peer, bufs));
        }
        submitted.push(per_peer);
    }
    let mut admitted: Vec<MuxChannelId> = Vec::new();
    while mux.pending() > 0 {
        admitted.extend(mux.tick(ctx, rank)?);
    }
    let channels = admitted.len();

    // Recover the per-(tenant, peer) bundle from the admitted table.
    for (t, per_peer) in submitted.into_iter().enumerate() {
        let mut row = Vec::with_capacity(per_peer.len());
        for (peer, bufs) in per_peer {
            let find = |tag: u64, dir: Direction| -> MuxChannelId {
                admitted
                    .iter()
                    .copied()
                    .find(|&id| {
                        let ch = mux.channel(id).expect("admitted id is live");
                        ch.spec.tenant == t
                            && ch.spec.peer == peer
                            && ch.spec.tag == tag
                            && ch.spec.direction == dir
                    })
                    .expect("every submitted channel was admitted")
            };
            let mut pc = PeerChannels {
                peer,
                dispatch_send: find(tag_of(t, KIND_DISPATCH), Direction::Send),
                dispatch_recv: find(tag_of(t, KIND_DISPATCH), Direction::Recv),
                combine_send: find(tag_of(t, KIND_COMBINE), Direction::Send),
                combine_recv: find(tag_of(t, KIND_COMBINE), Direction::Recv),
                dispatch_buf_send: bufs[0].clone(),
                dispatch_buf_recv: bufs[1].clone(),
                combine_buf_send: bufs[2].clone(),
                combine_buf_recv: bufs[3].clone(),
                dispatch_preq: None,
                combine_preq: None,
            };
            let want = PrequestConfig {
                copy: cfg.mechanism,
                agg: AggLevel::Block,
                transport_partitions: 1,
                multi_block_counters: true,
            };
            for (slot, id) in [(0usize, pc.dispatch_send), (1usize, pc.combine_send)] {
                let sreq = mux
                    .channel(id)
                    .and_then(|c| c.chan.send().cloned())
                    .expect("send channel");
                let preq = match prequest_create(ctx, rank, &sreq, want) {
                    Ok(p) => p,
                    // Ineligible route (kernel copy across nodes, shmem on
                    // a classic-negotiated channel): progression-engine
                    // fallback, same as the Jacobi app.
                    Err(_) => prequest_create(ctx, rank, &sreq, PrequestConfig {
                        copy: CopyMechanism::ProgressionEngine,
                        ..want
                    })
                    .expect("PE prequest always available"),
                };
                if slot == 0 {
                    pc.dispatch_preq = Some(preq);
                } else {
                    pc.combine_preq = Some(preq);
                }
            }
            row.push(pc);
        }
        bundles.push(row);
    }

    // ---- Token state (functional runs): per tenant, this rank's tokens.
    let mut tokens: Vec<Vec<f64>> = (0..cfg.tenants)
        .map(|t| (0..cfg.tokens_per_rank).map(|i| token_init(t, me, i)).collect())
        .collect();
    // Routing lists are layer-invariant: token -> expert rank.
    let routes: Vec<Vec<usize>> = (0..cfg.tenants)
        .map(|t| {
            (0..cfg.tokens_per_rank).map(|i| route(cfg.seed, t, me, i, size)).collect()
        })
        .collect();
    // Per (tenant, peer-index): the token ids occupying each slot, and the
    // per-tenant overflow (dropped) token ids — both layer-invariant.
    let mut slot_tokens: Vec<Vec<Vec<usize>>> = Vec::with_capacity(cfg.tenants);
    let mut dropped_ids: Vec<Vec<usize>> = Vec::with_capacity(cfg.tenants);
    for t in 0..cfg.tenants {
        let mut per_peer: Vec<Vec<usize>> = vec![Vec::new(); bundles[t].len()];
        let mut dropped = Vec::new();
        for (i, &dest) in routes[t].iter().enumerate() {
            if dest == me {
                continue; // local expert, no wire traffic
            }
            let pi = bundles[t].iter().position(|pc| pc.peer == dest).expect("peer bundle");
            if per_peer[pi].len() < cap {
                per_peer[pi].push(i);
            } else {
                dropped.push(i);
            }
        }
        slot_tokens.push(per_peer);
        dropped_ids.push(dropped);
    }
    let tokens_routed: u64 = slot_tokens
        .iter()
        .map(|pp| pp.iter().map(|s| s.len() as u64).sum::<u64>())
        .sum::<u64>()
        * cfg.layers as u64;
    let tokens_dropped: u64 =
        dropped_ids.iter().map(|d| d.len() as u64).sum::<u64>() * cfg.layers as u64;

    rank.barrier(ctx);
    let t0 = ctx.now();

    for _layer in 0..cfg.layers {
        // Dispatch fill: routed token values into their slots, 0 padding.
        if cfg.functional {
            for t in 0..cfg.tenants {
                for (pi, pc) in bundles[t].iter().enumerate() {
                    let mut payload = vec![0.0f64; cap * cfg.hidden];
                    for (s, &tok) in slot_tokens[t][pi].iter().enumerate() {
                        for h in 0..cfg.hidden {
                            payload[s * cfg.hidden + h] = tokens[t][tok];
                        }
                    }
                    pc.dispatch_buf_send.write_f64_slice(0, &payload);
                }
            }
        }
        run_phase(ctx, &mut mux, &bundles, Phase::Dispatch, &stream)?;

        // Expert compute: transform every received token (and this rank's
        // locally-routed tokens), filling the combine send buffers.
        if cfg.functional {
            for t in 0..cfg.tenants {
                for pc in &bundles[t] {
                    let inbound = pc.dispatch_buf_recv.read_f64_slice(0, cap * cfg.hidden);
                    let mut outbound = vec![0.0f64; cap * cfg.hidden];
                    for s in 0..cap {
                        let x = inbound[s * cfg.hidden];
                        if x != 0.0 {
                            let y = expert_transform(me, x);
                            for h in 0..cfg.hidden {
                                outbound[s * cfg.hidden + h] = y;
                            }
                        }
                    }
                    pc.combine_buf_send.write_f64_slice(0, &outbound);
                }
                for (i, &dest) in routes[t].iter().enumerate() {
                    if dest == me {
                        tokens[t][i] = expert_transform(me, tokens[t][i]);
                    }
                }
            }
        }
        // The expert FFN cost (two GEMMs over the received tokens) — a
        // fixed kernel charge plus a bandwidth term, as in the Jacobi app.
        let expert_tokens = (cfg.tenants * (size - 1) * cap).max(1);
        ctx.advance(SimDuration::from_micros_f64(
            gpu.cost().kernel_fixed_us
                + (expert_tokens * cfg.hidden * 8) as f64 * 4.0 / (800.0 * 1e3),
        ));

        run_phase(ctx, &mut mux, &bundles, Phase::Combine, &stream)?;

        // Combine unpack: results land back in their home token slots.
        // Dropped tokens keep their residual value. Must complete before
        // the next layer's pbuf_prepare re-arms the channels (the
        // buffer-reuse hazard MPIX_Pbuf_prepare exists to prevent).
        if cfg.functional {
            for t in 0..cfg.tenants {
                for (pi, pc) in bundles[t].iter().enumerate() {
                    let inbound = pc.combine_buf_recv.read_f64_slice(0, cap * cfg.hidden);
                    for (s, &tok) in slot_tokens[t][pi].iter().enumerate() {
                        tokens[t][tok] = inbound[s * cfg.hidden];
                    }
                }
            }
        }
    }

    let elapsed = ctx.now().since(t0);
    let checksum = if cfg.functional {
        tokens.iter().map(|ts| ts.iter().sum::<f64>()).sum()
    } else {
        0.0
    };
    Ok(MoeResult { elapsed, tokens_routed, tokens_dropped, checksum, channels })
}

enum Phase {
    Dispatch,
    Combine,
}

/// One all-to-all epoch over the phase's channels: begin every receive
/// (non-blocking RTR), then one kernel marks every send channel ready
/// from the GPU, then wait sends, then wait receives. Receives are begun
/// first so no rank's send can stall on a peer that is itself stalled
/// sending — the same reply-before-block order the mux tick uses.
fn run_phase(
    ctx: &mut Ctx,
    mux: &mut MuxService,
    bundles: &[Vec<PeerChannels>],
    phase: Phase,
    stream: &parcomm_gpu::Stream,
) -> Result<(), MpiError> {
    let pick = |pc: &PeerChannels| match phase {
        Phase::Dispatch => (pc.dispatch_recv, pc.dispatch_send, pc.dispatch_preq.clone()),
        Phase::Combine => (pc.combine_recv, pc.combine_send, pc.combine_preq.clone()),
    };
    let mut recvs = Vec::new();
    for row in bundles {
        for pc in row {
            let (rid, _, _) = pick(pc);
            let chan = mux.begin_epoch(ctx, rid)?;
            recvs.push(chan.recv().expect("recv channel").clone());
        }
    }
    let mut preqs = Vec::new();
    let mut waits = Vec::new();
    for row in bundles {
        for pc in row {
            let (_, sid, preq) = pick(pc);
            let chan = mux.begin_epoch(ctx, sid)?;
            waits.push((sid, chan.send().expect("send channel").clone()));
            preqs.push(preq.expect("device prequest"));
        }
    }
    let t0 = ctx.now().as_micros_f64();
    let spec = KernelSpec::new("moe-pready", preqs.len().max(1) as u32, 256);
    let _ = stream.launch(ctx, spec, move |d| {
        for preq in &preqs {
            preq.pready_all(d);
        }
    });
    for (sid, s) in waits {
        s.wait(ctx)?;
        let dt = ctx.now().as_micros_f64() - t0;
        let (tenant, bytes) = {
            let ch = mux.channel(sid).expect("live channel");
            (ch.spec.tenant, ch.spec.bytes())
        };
        mux.record_epoch(tenant, bytes, dt);
    }
    for r in recvs {
        r.wait(ctx)?;
    }
    Ok(())
}

/// Serial reference: the per-rank checksums `run_moe` would produce on a
/// functional run over `size` ranks, in rank order.
pub fn moe_reference(cfg: &MoeConfig, size: usize) -> Vec<f64> {
    let cap = cfg.capacity(size);
    let mut final_tokens: Vec<Vec<Vec<f64>>> = (0..size)
        .map(|r| {
            (0..cfg.tenants)
                .map(|t| (0..cfg.tokens_per_rank).map(|i| token_init(t, r, i)).collect())
                .collect()
        })
        .collect();
    for _layer in 0..cfg.layers {
        for (r, rank_tokens) in final_tokens.iter_mut().enumerate() {
            for (t, toks) in rank_tokens.iter_mut().enumerate() {
                // Per-destination slot budget, in token order — identical
                // to the distributed router's capacity accounting.
                let mut used = vec![0usize; size];
                for (i, tok) in toks.iter_mut().enumerate() {
                    let dest = route(cfg.seed, t, r, i, size);
                    if dest == r {
                        *tok = expert_transform(dest, *tok);
                    } else if used[dest] < cap {
                        used[dest] += 1;
                        *tok = expert_transform(dest, *tok);
                    }
                    // else: dropped, keeps its residual value
                }
            }
        }
    }
    (0..size)
        .map(|r| final_tokens[r].iter().map(|ts| ts.iter().sum::<f64>()).sum())
        .collect()
}
