//! The multi-GPU 2-D Jacobi solver (paper §VI-D1), adapted from NVIDIA's
//! MPI + CUDA example: the domain is decomposed over a `px × py` process
//! grid (2×2 on four GPUs, 4×2 on eight), each rank iterates a 5-point
//! stencil on its tile and exchanges one-cell halos with its neighbors.
//!
//! Two variants:
//! - **traditional**: stencil kernel → `cudaStreamSynchronize` →
//!   `MPI_Sendrecv` halos (Listing 1 pattern);
//! - **partitioned**: persistent partitioned channels per direction; the
//!   stencil kernel packs halos and calls device-side `MPIX_Pready`; the
//!   host only calls `MPI_Wait` (Listing 2 pattern).
//!
//! The solver is *functional*: with `functional = true` the stencil really
//! runs and tests compare the distributed field against a single-rank
//! reference bit-for-bit. Large benchmark sweeps set `functional = false`
//! to skip the arithmetic while keeping every timed interaction identical.

use parcomm_core::{
    precv_init, prequest_create, psend_init, CopyMechanism, PrecvRequest, PrequestConfig,
    PsendRequest,
};
use parcomm_gpu::{AggLevel, Buffer, KernelSpec};
use parcomm_mpi::{MpiError, Rank};
use parcomm_sim::{Ctx, SimDuration};

/// Which communication model the solver uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum JacobiModel {
    /// Kernel + stream sync + `MPI_Sendrecv`.
    Traditional,
    /// GPU-initiated partitioned halo exchange with the given copy
    /// mechanism (Kernel Copy silently falls back to the Progression
    /// Engine for inter-node neighbor pairs).
    Partitioned(CopyMechanism),
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct JacobiConfig {
    /// Per-rank tile height at multiplier 1.
    pub base_h: usize,
    /// Per-rank tile width at multiplier 1.
    pub base_w: usize,
    /// The paper's problem-size multiplier (1..=32, powers of two).
    pub multiplier: usize,
    /// Jacobi iterations to run.
    pub iterations: usize,
    /// Run the stencil arithmetic (tests) or cost-only (large sweeps).
    pub functional: bool,
    /// Communication model.
    pub model: JacobiModel,
    /// Effective memory bandwidth (GB/s) the 5-point stencil sustains.
    /// Stencil kernels are far from peak HBM streaming (uncoalesced
    /// neighbors, low arithmetic intensity); 300 GB/s puts per-iteration
    /// kernel times in the regime the paper's Jacobi operates in.
    pub stencil_gbps: f64,
}

impl JacobiConfig {
    /// A small functional configuration for tests.
    pub fn functional_test(model: JacobiModel) -> Self {
        JacobiConfig {
            base_h: 16,
            base_w: 16,
            multiplier: 1,
            iterations: 4,
            functional: true,
            model,
            stencil_gbps: 300.0,
        }
    }
}

/// Result of a solver run.
#[derive(Clone, Debug)]
pub struct JacobiResult {
    /// Virtual time spent in the iteration loop.
    pub elapsed: SimDuration,
    /// Throughput in GFLOP/s (5 flops per interior point per iteration).
    pub gflops: f64,
    /// Sum of the interior field (functional runs only; 0.0 otherwise).
    pub checksum: f64,
}

/// The process grid used for `size` ranks (the paper's 2×2 and 4×2).
pub fn process_grid(size: usize) -> (usize, usize) {
    match size {
        1 => (1, 1),
        2 => (2, 1),
        4 => (2, 2),
        8 => (4, 2),
        _ => {
            // Fall back to the most square factorization.
            let mut px = (size as f64).sqrt() as usize;
            while !size.is_multiple_of(px) {
                px -= 1;
            }
            (size / px, px)
        }
    }
}

/// Direction index: 0 = north, 1 = south, 2 = west, 3 = east.
const DIRS: usize = 4;

struct Halo {
    neighbor: usize,
    send: Buffer,
    recv: Buffer,
    len: usize,
    /// Partitioned-model channels (absent in the traditional model).
    sreq: Option<PsendRequest>,
    rreq: Option<PrecvRequest>,
    preq: Option<parcomm_core::DevicePrequest>,
}

/// Tile geometry helper.
struct Tile {
    th: usize,
    tw: usize,
}

impl Tile {
    fn pitch(&self) -> usize {
        self.tw + 2
    }
}

/// Run the solver on this rank. All ranks must call it with identical
/// configuration.
///
/// Fault-free runs cannot fail; with fault injection armed (see
/// `parcomm-fault`) a disrupted halo exchange surfaces as a typed
/// [`MpiError`] instead of a hang.
pub fn run_jacobi(ctx: &mut Ctx, rank: &Rank, cfg: &JacobiConfig) -> Result<JacobiResult, MpiError> {
    let size = rank.size();
    let (px, py) = process_grid(size);
    assert_eq!(px * py, size);
    let r = rank.rank();
    let (cx, cy) = (r % px, r / px);
    let tile = Tile { th: cfg.base_h * cfg.multiplier, tw: cfg.base_w * cfg.multiplier };
    let (th, tw) = (tile.th, tile.tw);
    let pitch = tile.pitch();

    let gpu = rank.gpu();
    let stream = gpu.create_stream();
    // Cost-only sweeps never touch the field, so spare the allocation:
    // large-multiplier tiles would otherwise need gigabytes of simulated
    // HBM backing store per rank.
    let field_bytes = if cfg.functional { (th + 2) * pitch * 8 } else { 8 };
    let a = gpu.alloc_global(field_bytes);
    let a_new = gpu.alloc_global(field_bytes);

    // Initial condition: the global north edge is held at 1.0 (heated
    // plate); everything else starts at 0. Ghost rows double as Dirichlet
    // boundaries on global edges.
    if cfg.functional && cy == 0 {
        let ones = vec![1.0f64; pitch];
        a.write_f64_slice(0, &ones);
        a_new.write_f64_slice(0, &ones);
    }

    // Neighbors: (direction, neighbor rank, halo length).
    let neighbor = |dx: isize, dy: isize| -> Option<usize> {
        let nx = cx as isize + dx;
        let ny = cy as isize + dy;
        if nx < 0 || ny < 0 || nx >= px as isize || ny >= py as isize {
            None
        } else {
            Some(ny as usize * px + nx as usize)
        }
    };
    let neighbors: [(Option<usize>, usize); DIRS] = [
        (neighbor(0, -1), tw), // north
        (neighbor(0, 1), tw),  // south
        (neighbor(-1, 0), th), // west
        (neighbor(1, 0), th),  // east
    ];

    // Set up halo channels (both models use the same packed halo buffers;
    // only the transport differs). Tags encode the direction as seen by
    // the *sender* so each (src, dst, tag) triple is unique.
    let mut halos: Vec<Option<Halo>> = Vec::with_capacity(DIRS);
    let partitioned = matches!(cfg.model, JacobiModel::Partitioned(_));
    for (dir, &(nbr, len)) in neighbors.iter().enumerate() {
        let Some(nbr) = nbr else {
            halos.push(None);
            continue;
        };
        let send = gpu.alloc_global(len * 8);
        let recv = gpu.alloc_global(len * 8);
        // The opposite direction from the neighbor's perspective.
        let opposite = [1usize, 0, 3, 2][dir];
        let (sreq, rreq) = if partitioned {
            // Channel setup messages are non-blocking: any init order works.
            let sreq = psend_init(ctx, rank, nbr, 0x3A0 + dir as u64, &send, 1)?;
            let rreq = precv_init(ctx, rank, nbr, 0x3A0 + opposite as u64, &recv, 1)?;
            (Some(sreq), Some(rreq))
        } else {
            (None, None)
        };
        halos.push(Some(Halo { neighbor: nbr, send, recv, len, sreq, rreq, preq: None }));
    }

    // First-epoch preparation + device request creation for the
    // partitioned model (one-time costs; the measured loop below includes
    // per-iteration start/pbuf_prepare as in the paper's application
    // measurements).
    if partitioned {
        for h in halos.iter().flatten() {
            h.rreq.as_ref().expect("partitioned").start(ctx)?;
        }
        for h in halos.iter().flatten() {
            h.sreq.as_ref().expect("partitioned").start(ctx)?;
        }
        for h in halos.iter().flatten() {
            h.rreq.as_ref().expect("partitioned").pbuf_prepare(ctx)?;
        }
        for h in halos.iter().flatten() {
            h.sreq.as_ref().expect("partitioned").pbuf_prepare(ctx)?;
        }
        let copy = match cfg.model {
            JacobiModel::Partitioned(c) => c,
            JacobiModel::Traditional => unreachable!(),
        };
        for h in halos.iter_mut().flatten() {
            let want = PrequestConfig {
                copy,
                agg: AggLevel::Block,
                transport_partitions: 1,
                multi_block_counters: true,
            };
            let sreq = h.sreq.as_ref().expect("partitioned");
            let preq = match prequest_create(ctx, rank, sreq, want) {
                Ok(p) => p,
                Err(_) => {
                    // Kernel copy across nodes: fall back to the
                    // progression engine for this neighbor.
                    prequest_create(ctx, rank, sreq, PrequestConfig {
                        copy: CopyMechanism::ProgressionEngine,
                        ..want
                    })
                    .expect("PE prequest always available")
                }
            };
            h.preq = Some(preq);
        }
        // The first epoch stays open; iteration 0's kernel marks it ready.
    }

    rank.barrier(ctx);
    let t0 = ctx.now();

    let mut cur = a.clone();
    let mut next = a_new.clone();
    // Early-bird structure (the partitioned model's core win): the kernel
    // computes the halo edges *first*, marks them ready so the transfers
    // overlap the interior sweep, then computes the interior. The full
    // sweep's device time is split proportionally between the two phases.
    // Sweep time from the stencil's effective bandwidth (see
    // `JacobiConfig::stencil_gbps`), with the usual fixed kernel cost.
    let full_time = SimDuration::from_micros_f64(
        gpu.cost().kernel_fixed_us + (th * tw) as f64 * 48.0 / (cfg.stencil_gbps * 1e3),
    );
    let halo_points = (2 * (th + tw)).min(th * tw) as f64;
    let halo_frac = (halo_points / (th * tw) as f64).clamp(0.02, 0.5);
    let halo_time = SimDuration::from_micros_f64(full_time.as_micros_f64() * halo_frac);
    let interior_time = full_time - halo_time;
    for iter in 0..cfg.iterations {
        let functional = cfg.functional;
        let cur2 = cur.clone();
        let next2 = next.clone();
        let halos_meta: Vec<Option<(Buffer, usize, usize)>> = halos
            .iter()
            .map(|h| h.as_ref().map(|h| (h.send.clone(), h.len, 0usize)))
            .collect();
        let preqs: Vec<Option<parcomm_core::DevicePrequest>> =
            halos.iter().map(|h| h.as_ref().and_then(|h| h.preq.clone())).collect();
        let (th2, tw2, pitch2) = (th, tw, pitch);
        // The launch spec carries the geometry; device time is charged
        // explicitly by the body so the pready emissions land after the
        // halo phase, not after the whole sweep.
        let spec = KernelSpec::new("jacobi", ((th * tw) as u32).div_ceil(1024).max(1), 1024);
        let launch = stream.launch(ctx, spec, move |d| {
            if functional {
                stencil(&cur2, &next2, th2, tw2, pitch2);
                pack_halos(&next2, &halos_meta, th2, tw2, pitch2);
            }
            d.extend(halo_time);
            for preq in preqs.iter().flatten() {
                preq.pready_all(d);
            }
            d.extend(interior_time);
        });

        match cfg.model {
            JacobiModel::Traditional => {
                let _ = launch;
                stream.synchronize(ctx);
                // All four halo exchanges posted concurrently then waited
                // (isend/irecv + waitall, as in NVIDIA's reference code) —
                // directions overlap on the wire.
                ctx.advance(rank.mpi_overhead());
                let h = ctx.handle();
                let mut ops = Vec::with_capacity(8);
                for (dir, halo) in halos.iter().enumerate() {
                    let Some(halo) = halo else { continue };
                    let opposite = [1usize, 0, 3, 2][dir];
                    ops.push(rank.isend(
                        &h,
                        halo.neighbor,
                        0x500 + dir as u64,
                        &halo.send,
                        0,
                        halo.len * 8,
                    ));
                    ops.push(rank.irecv(
                        &h,
                        halo.neighbor,
                        0x500 + opposite as u64,
                        &halo.recv,
                        0,
                        halo.len * 8,
                    ));
                }
                for op in &ops {
                    ctx.wait(&op.done);
                }
            }
            JacobiModel::Partitioned(_) => {
                for h in halos.iter().flatten() {
                    h.sreq.as_ref().expect("partitioned").wait(ctx)?;
                }
                for h in halos.iter().flatten() {
                    h.rreq.as_ref().expect("partitioned").wait(ctx)?;
                }
            }
        }

        // Unpack ghost cells from the received halos. This must happen
        // BEFORE the receive side signals ready-to-receive for the next
        // epoch — exactly the buffer-reuse hazard MPIX_Pbuf_prepare exists
        // to prevent (paper §II-B2): a fast neighbor may otherwise
        // overwrite the halo we have not read yet.
        if cfg.functional {
            unpack_halos(&next, &halos, th, tw, pitch);
        }
        ctx.advance(SimDuration::from_micros_f64(0.5)); // ghost-update kernelette

        if partitioned && iter + 1 < cfg.iterations {
            for h in halos.iter().flatten() {
                h.rreq.as_ref().expect("partitioned").start(ctx)?;
            }
            for h in halos.iter().flatten() {
                h.sreq.as_ref().expect("partitioned").start(ctx)?;
            }
            for h in halos.iter().flatten() {
                h.rreq.as_ref().expect("partitioned").pbuf_prepare(ctx)?;
            }
            for h in halos.iter().flatten() {
                h.sreq.as_ref().expect("partitioned").pbuf_prepare(ctx)?;
            }
        }

        std::mem::swap(&mut cur, &mut next);
    }

    let elapsed = ctx.now().since(t0);
    let points = (th * tw) as f64 * size as f64;
    let flops = points * cfg.iterations as f64 * 5.0;
    let gflops = flops / elapsed.as_secs_f64() / 1e9;
    let checksum = if cfg.functional { interior_sum(&cur, th, tw, pitch) } else { 0.0 };
    Ok(JacobiResult { elapsed, gflops, checksum })
}

/// One 5-point Jacobi sweep: `next = 0.25·(N + S + W + E)` over the
/// interior, reading `cur`.
fn stencil(cur: &Buffer, next: &Buffer, th: usize, tw: usize, pitch: usize) {
    for i in 1..=th {
        let up = cur.read_f64_slice(((i - 1) * pitch + 1) * 8, tw);
        let mid = cur.read_f64_slice((i * pitch) * 8, tw + 2);
        let down = cur.read_f64_slice(((i + 1) * pitch + 1) * 8, tw);
        let mut out = vec![0.0f64; tw];
        for j in 0..tw {
            out[j] = 0.25 * (up[j] + down[j] + mid[j] + mid[j + 2]);
        }
        next.write_f64_slice((i * pitch + 1) * 8, &out);
    }
}

/// Pack the four interior edges of `field` into the per-direction send
/// halo buffers (north row, south row, west column, east column).
fn pack_halos(
    field: &Buffer,
    halos: &[Option<(Buffer, usize, usize)>],
    th: usize,
    tw: usize,
    pitch: usize,
) {
    if let Some((buf, len, _)) = &halos[0] {
        debug_assert_eq!(*len, tw);
        let row = field.read_f64_slice((pitch + 1) * 8, tw);
        buf.write_f64_slice(0, &row);
    }
    if let Some((buf, len, _)) = &halos[1] {
        debug_assert_eq!(*len, tw);
        let row = field.read_f64_slice((th * pitch + 1) * 8, tw);
        buf.write_f64_slice(0, &row);
    }
    if let Some((buf, len, _)) = &halos[2] {
        debug_assert_eq!(*len, th);
        let col: Vec<f64> = (1..=th).map(|i| field.read_f64((i * pitch + 1) * 8)).collect();
        buf.write_f64_slice(0, &col);
    }
    if let Some((buf, len, _)) = &halos[3] {
        debug_assert_eq!(*len, th);
        let col: Vec<f64> = (1..=th).map(|i| field.read_f64((i * pitch + tw) * 8)).collect();
        buf.write_f64_slice(0, &col);
    }
}

/// Scatter received halo buffers into the ghost ring of `field`.
fn unpack_halos(field: &Buffer, halos: &[Option<Halo>], th: usize, tw: usize, pitch: usize) {
    if let Some(h) = &halos[0] {
        let row = h.recv.read_f64_slice(0, tw);
        field.write_f64_slice(8, &row[..]); // ghost row 0, cols 1..=tw
    }
    if let Some(h) = &halos[1] {
        let row = h.recv.read_f64_slice(0, tw);
        field.write_f64_slice(((th + 1) * pitch + 1) * 8, &row[..]);
    }
    if let Some(h) = &halos[2] {
        for i in 1..=th {
            field.write_f64((i * pitch) * 8, h.recv.read_f64((i - 1) * 8));
        }
    }
    if let Some(h) = &halos[3] {
        for i in 1..=th {
            field.write_f64((i * pitch + tw + 1) * 8, h.recv.read_f64((i - 1) * 8));
        }
    }
}

fn interior_sum(field: &Buffer, th: usize, tw: usize, pitch: usize) -> f64 {
    (1..=th).map(|i| field.reduce_sum_f64((i * pitch + 1) * 8, tw)).sum()
}

/// Single-process reference: run the same global problem on one tile with
/// no communication (tests compare against this bit-for-bit).
pub fn jacobi_reference(global_h: usize, global_w: usize, iterations: usize) -> Vec<f64> {
    let pitch = global_w + 2;
    let mut cur = vec![0.0f64; (global_h + 2) * pitch];
    let mut next = cur.clone();
    for j in 0..pitch {
        cur[j] = 1.0;
        next[j] = 1.0;
    }
    for _ in 0..iterations {
        for i in 1..=global_h {
            for j in 1..=global_w {
                next[i * pitch + j] = 0.25
                    * (cur[(i - 1) * pitch + j]
                        + cur[(i + 1) * pitch + j]
                        + cur[i * pitch + j - 1]
                        + cur[i * pitch + j + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}
