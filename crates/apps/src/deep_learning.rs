//! The data-parallel deep-learning proxy kernel (paper §VI-D2).
//!
//! Each rank holds a replica of a model and trains on its own shard: a
//! CUDA binary-cross-entropy kernel computes per-element gradients, which
//! are then synchronized with an allreduce. Three communication models are
//! compared, as in Figs. 10/11:
//!
//! - `Traditional` — BCE kernel → `cudaStreamSynchronize` →
//!   `MPI_Allreduce` (the host-staged production path);
//! - `Partitioned` — persistent `MPIX_Pallreduce`; the BCE kernel calls
//!   the device `MPIX_Pready`, and the measured region includes
//!   `MPI_Start` + `MPIX_Pbuf_prepare` as the paper specifies ("as this
//!   would be present in a training loop");
//! - `Nccl` — BCE kernel → `ncclAllReduce` on the stream.

use parcomm_coll::{pallreduce_init, Pallreduce};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiError, Rank};
use parcomm_nccl::{NcclComm, NcclConfig};
use parcomm_sim::{Ctx, SimDuration};

/// Communication model for gradient synchronization.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DlModel {
    /// Kernel + sync + host-staged `MPI_Allreduce`.
    Traditional,
    /// Partitioned allreduce with device-side `MPIX_Pready`.
    Partitioned,
    /// `ncclAllReduce`.
    Nccl,
}

/// Configuration of the DL proxy.
#[derive(Clone, Debug)]
pub struct DlConfig {
    /// Gradient elements per rank (the paper scales this with the kernel
    /// grid: each CUDA thread contributes 8 bytes).
    pub elements: usize,
    /// Collective user partitions in the partitioned model.
    pub partitions: usize,
    /// Training steps to run.
    pub steps: usize,
    /// Run the BCE arithmetic (tests) or cost-only (sweeps).
    pub functional: bool,
    /// Communication model.
    pub model: DlModel,
}

/// Result of a DL run.
#[derive(Clone, Debug)]
pub struct DlResult {
    /// Virtual time for all steps.
    pub elapsed: SimDuration,
    /// Mean time per training step.
    pub per_step: SimDuration,
    /// Final loss value (functional runs; 0.0 otherwise).
    pub loss: f64,
}

/// The BCE forward+backward: predictions come from a logistic activation;
/// the gradient of the loss w.r.t. the activation input is `(p - y) / n`.
fn bce_gradient(pred: &[f64], target: &[f64], grad: &mut [f64]) -> f64 {
    let n = pred.len() as f64;
    let mut loss = 0.0;
    for ((g, p), y) in grad.iter_mut().zip(pred).zip(target) {
        let p = p.clamp(1e-7, 1.0 - 1e-7);
        loss -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
        *g = (p - y) / n;
    }
    loss / n
}

/// The BCE kernel's launch geometry for `elements` gradient entries.
fn bce_spec(elements: usize) -> KernelSpec {
    KernelSpec::new("bce", (elements as u32).div_ceil(1024).max(1), 1024)
        .with_memory_traffic(16, 8)
        .with_flops(12.0) // ln + div + sub per element
}

/// Run `cfg.steps` data-parallel training steps on this rank; all ranks
/// must participate. `nccl` must be `Some` for the NCCL model.
///
/// Fault-free runs cannot fail; with fault injection armed (see
/// `parcomm-fault`) a disrupted allreduce surfaces as a typed
/// [`MpiError`] instead of a hang.
pub fn run_dl(
    ctx: &mut Ctx,
    rank: &Rank,
    cfg: &DlConfig,
    nccl: Option<&NcclComm>,
) -> Result<DlResult, MpiError> {
    let n = cfg.elements;
    let gpu = rank.gpu();
    let stream = gpu.create_stream();
    let grad = gpu.alloc_global(n * 8);
    let pred = gpu.alloc_global(n * 8);
    let target = gpu.alloc_global(n * 8);

    if cfg.functional {
        // Deterministic per-rank shard: predictions and labels derived from
        // the element index and rank.
        let r = rank.rank() as f64;
        let preds: Vec<f64> =
            (0..n).map(|i| 0.1 + 0.8 * ((i as f64 + r) % 10.0) / 10.0).collect();
        let targets: Vec<f64> = (0..n).map(|i| ((i + rank.rank()) % 2) as f64).collect();
        pred.write_f64_slice(0, &preds);
        target.write_f64_slice(0, &targets);
    }

    let coll: Option<Pallreduce> = if cfg.model == DlModel::Partitioned {
        Some(pallreduce_init(ctx, rank, &grad, cfg.partitions, &stream, 77)?)
    } else {
        None
    };
    if cfg.model == DlModel::Nccl {
        assert!(nccl.is_some(), "NCCL model requires a communicator");
    }

    rank.barrier(ctx);
    let t0 = ctx.now();
    let mut loss = 0.0f64;

    for _step in 0..cfg.steps {
        match cfg.model {
            DlModel::Traditional => {
                let (p2, t2, g2) = (pred.clone(), target.clone(), grad.clone());
                let functional = cfg.functional;
                stream.launch(ctx, bce_spec(n), move |_d| {
                    if functional {
                        let p = p2.read_f64_slice(0, n);
                        let t = t2.read_f64_slice(0, n);
                        let mut g = vec![0.0; n];
                        bce_gradient(&p, &t, &mut g);
                        g2.write_f64_slice(0, &g);
                    }
                });
                stream.synchronize(ctx);
                rank.allreduce_hoststaged_f64(ctx, &grad, 0, n, &stream);
            }
            DlModel::Partitioned => {
                let coll = coll.as_ref().expect("initialized above");
                // The paper includes MPI_Start and MPIX_Pbuf_prepare in the
                // measured region: they recur every training step.
                coll.start(ctx)?;
                coll.pbuf_prepare(ctx)?;
                let (p2, t2, g2) = (pred.clone(), target.clone(), grad.clone());
                let functional = cfg.functional;
                let coll2 = coll.clone();
                stream.launch(ctx, bce_spec(n), move |d| {
                    if functional {
                        let p = p2.read_f64_slice(0, n);
                        let t = t2.read_f64_slice(0, n);
                        let mut g = vec![0.0; n];
                        bce_gradient(&p, &t, &mut g);
                        g2.write_f64_slice(0, &g);
                    }
                    coll2.pready_device_all(d);
                });
                coll.wait(ctx)?;
            }
            DlModel::Nccl => {
                let comm = nccl.expect("checked above");
                let (p2, t2, g2) = (pred.clone(), target.clone(), grad.clone());
                let functional = cfg.functional;
                stream.launch(ctx, bce_spec(n), move |_d| {
                    if functional {
                        let p = p2.read_f64_slice(0, n);
                        let t = t2.read_f64_slice(0, n);
                        let mut g = vec![0.0; n];
                        bce_gradient(&p, &t, &mut g);
                        g2.write_f64_slice(0, &g);
                    }
                });
                let done = comm.all_reduce_f64(ctx, rank.rank(), &grad, 0, n, &stream);
                ctx.wait(&done);
            }
        }
        if cfg.functional {
            // Loss proxy: mean absolute synchronized gradient.
            loss = grad.reduce_sum_f64(0, n).abs() / n as f64;
        }
    }

    let elapsed = ctx.now().since(t0);
    Ok(DlResult { elapsed, per_step: elapsed / cfg.steps as u64, loss })
}

/// Build the NCCL communicator for a world (ring in rank order).
pub fn nccl_for_world(world: &parcomm_mpi::MpiWorld) -> NcclComm {
    let ring = (0..world.size()).map(|r| world.gpu_of(r).location()).collect();
    NcclComm::new(world.fabric().clone(), ring, NcclConfig::default())
}

#[cfg(test)]
mod tests {
    use super::bce_gradient;

    #[test]
    fn bce_gradient_signs_and_loss() {
        let pred = [0.9, 0.1, 0.5];
        let target = [1.0, 0.0, 1.0];
        let mut grad = [0.0; 3];
        let loss = bce_gradient(&pred, &target, &mut grad);
        assert!(loss > 0.0);
        assert!(grad[0] < 0.0, "confident-correct positive: push up");
        assert!(grad[1] > 0.0, "confident-correct negative: push down");
        assert!(grad[2] < 0.0);
    }

    #[test]
    fn bce_gradient_is_clamped() {
        let pred = [0.0, 1.0];
        let target = [1.0, 0.0];
        let mut grad = [0.0; 2];
        let loss = bce_gradient(&pred, &target, &mut grad);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }
}
