//! Application tests: the distributed Jacobi solver must reproduce the
//! single-rank reference bit-for-bit in every communication model, and the
//! DL proxy must produce identical losses across models.

use std::sync::Arc;

use parcomm_sim::Mutex;

use parcomm_apps::{
    jacobi_reference, process_grid, run_dl, run_jacobi, nccl_for_world, DlConfig, DlModel,
    JacobiConfig, JacobiModel,
};
use parcomm_core::CopyMechanism;
use parcomm_mpi::MpiWorld;
use parcomm_sim::{SimConfig, Simulation};

#[test]
fn process_grids_match_paper() {
    assert_eq!(process_grid(4), (2, 2));
    assert_eq!(process_grid(8), (4, 2));
    assert_eq!(process_grid(1), (1, 1));
}

/// Run the distributed solver and return (checksum, elapsed µs) from rank 0
/// plus the global field reassembled? Checksum-of-sums suffices: the
/// reference's interior sum must equal the sum of all ranks' interior sums.
fn distributed_checksum(nodes: u16, model: JacobiModel, iterations: usize) -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    let world = MpiWorld::gh200(&sim, nodes);
    let sums = Arc::new(Mutex::new(Vec::new()));
    let s2 = sums.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = JacobiConfig { iterations, ..JacobiConfig::functional_test(model) };
        let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
        s2.lock().push(result.checksum);
    });
    sim.run().unwrap();
    let sums = sums.lock();
    sums.iter().sum()
}

fn reference_checksum(size: usize, iterations: usize) -> f64 {
    let (px, py) = process_grid(size);
    let (gh, gw) = (16 * py, 16 * px);
    let field = jacobi_reference(gh, gw, iterations);
    let pitch = gw + 2;
    (1..=gh).map(|i| field[i * pitch + 1..i * pitch + 1 + gw].iter().sum::<f64>()).sum()
}

#[test]
fn jacobi_traditional_matches_reference() {
    let dist = distributed_checksum(1, JacobiModel::Traditional, 6);
    let reference = reference_checksum(4, 6);
    assert!(
        (dist - reference).abs() < 1e-9,
        "traditional: distributed {dist} vs reference {reference}"
    );
}

#[test]
fn jacobi_partitioned_pe_matches_reference() {
    let dist = distributed_checksum(1, JacobiModel::Partitioned(CopyMechanism::ProgressionEngine), 6);
    let reference = reference_checksum(4, 6);
    assert!(
        (dist - reference).abs() < 1e-9,
        "partitioned/PE: distributed {dist} vs reference {reference}"
    );
}

#[test]
fn jacobi_partitioned_kernel_copy_matches_reference() {
    let dist = distributed_checksum(1, JacobiModel::Partitioned(CopyMechanism::KernelCopy), 6);
    let reference = reference_checksum(4, 6);
    assert!(
        (dist - reference).abs() < 1e-9,
        "partitioned/KC: distributed {dist} vs reference {reference}"
    );
}

#[test]
fn jacobi_two_nodes_matches_reference() {
    // 8 ranks (4×2 grid), kernel copy falls back to PE across nodes.
    let dist = distributed_checksum(2, JacobiModel::Partitioned(CopyMechanism::KernelCopy), 5);
    let reference = reference_checksum(8, 5);
    assert!(
        (dist - reference).abs() < 1e-9,
        "2-node: distributed {dist} vs reference {reference}"
    );
}

#[test]
fn jacobi_partitioned_beats_traditional_two_nodes() {
    // Paper Fig. 9: up to 1.30× on two nodes; shape check: partitioned
    // strictly faster at small multipliers.
    fn timed(model: JacobiModel) -> f64 {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 2);
        let out = Arc::new(Mutex::new(0.0));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = JacobiConfig {
                base_h: 64,
                base_w: 64,
                multiplier: 8,
                iterations: 20,
                functional: false,
                model,
                stencil_gbps: 300.0,
            };
            let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
            if rank.rank() == 0 {
                *o2.lock() = result.elapsed.as_micros_f64();
            }
        });
        sim.run().unwrap();
        let v = *out.lock();
        v
    }
    let trad = timed(JacobiModel::Traditional);
    let part = timed(JacobiModel::Partitioned(CopyMechanism::KernelCopy));
    assert!(
        part < trad,
        "partitioned Jacobi ({part} µs) must beat traditional ({trad} µs) on 2 nodes"
    );
}

#[test]
fn dl_losses_agree_across_models() {
    let mut losses = Vec::new();
    for model in [DlModel::Traditional, DlModel::Partitioned, DlModel::Nccl] {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 1);
        let nccl = nccl_for_world(&world);
        let out = Arc::new(Mutex::new(0.0));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = DlConfig {
                elements: 4096,
                partitions: 4,
                steps: 2,
                functional: true,
                model,
            };
            let result = run_dl(ctx, rank, &cfg, Some(&nccl)).expect("run_dl");
            if rank.rank() == 0 {
                *o2.lock() = result.loss;
            }
        });
        sim.run().unwrap();
        let v = *out.lock();
        losses.push(v);
    }
    assert!(losses[0] > 0.0);
    assert!(
        (losses[0] - losses[1]).abs() < 1e-9 && (losses[1] - losses[2]).abs() < 1e-9,
        "all three models must synchronize identical gradients: {losses:?}"
    );
}

#[test]
fn dl_model_ordering_matches_paper() {
    // Figs. 10/11: NCCL < Partitioned < Traditional (per-step time).
    fn timed(model: DlModel) -> f64 {
        let mut sim = Simulation::new(SimConfig::default());
        let world = MpiWorld::gh200(&sim, 1);
        let nccl = nccl_for_world(&world);
        let out = Arc::new(Mutex::new(0.0));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = DlConfig {
                elements: 1 << 20, // 8 MB of gradients
                partitions: 4,
                steps: 3,
                functional: false,
                model,
            };
            let result = run_dl(ctx, rank, &cfg, Some(&nccl)).expect("run_dl");
            if rank.rank() == 0 {
                *o2.lock() = result.per_step.as_micros_f64();
            }
        });
        sim.run().unwrap();
        let v = *out.lock();
        v
    }
    let trad = timed(DlModel::Traditional);
    let part = timed(DlModel::Partitioned);
    let nccl = timed(DlModel::Nccl);
    assert!(nccl < part, "NCCL ({nccl} µs) must beat partitioned ({part} µs)");
    assert!(part < trad, "partitioned ({part} µs) must beat traditional ({trad} µs)");
}
