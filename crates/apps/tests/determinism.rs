//! Per-crate determinism regression for the application kernels, via the
//! `parcomm-testkit` trace-digest and seed-sweep APIs: the Jacobi solver's
//! timing trace is a pure function of the seed, and both Jacobi and the
//! deep-learning proxy keep their numerics seed-independent.

use std::sync::Arc;

use parcomm_apps::{nccl_for_world, run_dl, run_jacobi, DlConfig, DlModel, JacobiConfig, JacobiModel};
use parcomm_core::CopyMechanism;
use parcomm_mpi::MpiWorld;
use parcomm_sim::{Mutex, Simulation};
use parcomm_testkit::{digest, sweep};

fn jacobi_digest(model: JacobiModel, seed: u64) -> u64 {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let world = MpiWorld::gh200(&sim, 1);
    let sums = Arc::new(Mutex::new(Vec::new()));
    let s2 = sums.clone();
    world.run_ranks(&mut sim, move |ctx, rank| {
        let cfg = JacobiConfig::functional_test(model);
        let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
        s2.lock().push(result.checksum);
    });
    let report = sim.run().expect("jacobi sim");
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&sums.lock());
    d.finish()
}

#[test]
fn jacobi_partitioned_digest_is_seed_deterministic() {
    sweep::assert_deterministic_and_seed_sensitive(&[101, 202, 303], |seed| {
        jacobi_digest(JacobiModel::Partitioned(CopyMechanism::KernelCopy), seed)
    });
}

#[test]
fn jacobi_models_agree_on_checksums() {
    // Metamorphic invariant: the communication model (traditional sendrecv
    // vs partitioned halo exchange) changes the timing, never the stencil
    // numerics.
    let checksums = |model: JacobiModel| {
        let mut sim = Simulation::with_seed(0x1AC0B);
        let world = MpiWorld::gh200(&sim, 1);
        let sums = Arc::new(Mutex::new(Vec::new()));
        let s2 = sums.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = JacobiConfig::functional_test(model);
            let result = run_jacobi(ctx, rank, &cfg).expect("run_jacobi");
            s2.lock().push((rank.rank(), result.checksum.to_bits()));
        });
        sim.run().expect("jacobi sim");
        // Rank completion order may vary; per-rank numerics must not.
        let mut v = sums.lock().clone();
        v.sort_unstable();
        v
    };
    sweep::assert_all_equal([
        ("traditional", checksums(JacobiModel::Traditional)),
        (
            "partitioned/kernel-copy",
            checksums(JacobiModel::Partitioned(CopyMechanism::KernelCopy)),
        ),
        (
            "partitioned/progression-engine",
            checksums(JacobiModel::Partitioned(CopyMechanism::ProgressionEngine)),
        ),
    ]);
}

#[test]
fn deep_learning_loss_is_seed_independent() {
    let losses = |seed: u64| {
        let mut sim = Simulation::with_seed(seed);
        let world = MpiWorld::gh200(&sim, 1);
        let nccl = nccl_for_world(&world);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = out.clone();
        world.run_ranks(&mut sim, move |ctx, rank| {
            let cfg = DlConfig {
                elements: 2048,
                partitions: 4,
                steps: 2,
                functional: true,
                model: DlModel::Partitioned,
            };
            let result = run_dl(ctx, rank, &cfg, Some(&nccl)).expect("run_dl");
            o2.lock().push((rank.rank(), result.loss.to_bits()));
        });
        sim.run().expect("dl sim");
        let mut v = out.lock().clone();
        v.sort_unstable();
        v
    };
    sweep::assert_all_equal([
        ("seed 9", losses(9)),
        ("seed 10", losses(10)),
        ("seed 11", losses(11)),
    ]);
}
