//! # parcomm-fault — deterministic fault injection for the parcomm stack
//!
//! Chaos engineering for a discrete-event simulator has one extra
//! obligation the real world never grants: **replayability**. Every fault a
//! [`FaultPlan`] injects is derived from the plan's own seed through
//! dedicated RNGs (or deterministic counters), never from the simulation's
//! main jitter RNG, so:
//!
//! - the same `(sim seed, FaultPlan)` pair always reproduces the identical
//!   faulted trace, byte for byte — a chaos failure is a unit test, not a
//!   flake;
//! - [`FaultPlan::none`] arms nothing: zero extra events, zero extra RNG
//!   draws, and a run digest **byte-identical** to a build without the
//!   fault machinery.
//!
//! ## Fault classes
//!
//! | Class | Injected at | Recovery |
//! |---|---|---|
//! | transient link drop / latency spike | `netsim` fabric | retransmit / absorb — latency only, never integrity |
//! | NIC outage window | `netsim` routing | re-route + re-stripe over surviving rails; UCX put retry with backoff if the whole node is dark |
//! | progression-engine stall | `mpisim` PE daemon | bounded: delayed puts, then catches up |
//! | progression-engine crash | `mpisim` PE daemon | recovery off: watchdog surfaces [`MpiError::ProgressionHalted`]; recovery on: host lease-detects the dead engine, drains its queue, and replays the epoch |
//! | delayed / lost device flag write | `gpusim` stream emission | delayed: absorbed; lost: watchdog surfaces a typed timeout |
//! | delayed / lost device shmem signal | `gpusim` stream emission (symmetric-heap channels) | delayed: absorbed; lost: epoch replay re-issues the put host-side when recovery is armed, typed timeout otherwise |
//! | symmetric-heap registration failure | `parcomm-shmem` heap | the channel demotes to the Progression Engine with a typed `ShmemError` denial |
//! | IPC revocation mid-epoch | `ucxsim` rkey | Kernel Copy falls back to the Progression Engine per `MPIX_Pready` |
//!
//! Unsurvivable classes require an armed watchdog
//! ([`FaultPlan::with_watchdog`]) to convert the would-be hang into a typed
//! [`MpiError`]; the [`chaos`] helpers arm one by default.
//!
//! ## Quickstart
//!
//! ```
//! use parcomm_fault::{chaos, FaultPlan};
//!
//! // Seeded chaos: transient drops + spikes + one NIC down-window.
//! let plan = FaultPlan::chaos(0xC4A05, 0.3).expect("rate in [0, 1]");
//! let a = chaos::run_allreduce(7, &plan, 1);
//! let b = chaos::run_allreduce(7, &plan, 1);
//! assert_eq!(a.digest, b.digest, "same (seed, plan) => same trace");
//! assert!(a.survived(), "chaos defaults are survivable");
//!
//! // The baseline is untouched: FaultPlan::none() arms nothing.
//! assert_ne!(chaos::run_allreduce(7, &FaultPlan::none(), 1).digest, a.digest);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod chaos;
pub mod coverage;
mod plan;

pub use campaign::{CampaignConfig, CellOutcome};
pub use coverage::{CoverageCampaignConfig, CoverageOutcome, CoverageReport, FaultClass, FaultLayer};
pub use parcomm_mpi::MpiError;
pub use plan::{FaultPlan, PlanError};
