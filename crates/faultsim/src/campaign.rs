//! Parallel chaos campaigns: a seeded `(fault seed × rate)` grid of
//! [`chaos::run_allreduce`] cells executed on the `parcomm-sweep` engine.
//!
//! Every cell runs the canonical two-node partitioned allreduce under
//! `FaultPlan::chaos(fault_seed, rate)` **twice** and records the replay
//! verdict, survival, and whether the numerics stayed bit-identical to the
//! fault-free baseline. Cells are independent simulations, so the grid
//! parallelizes perfectly — and because the sweep engine reassembles
//! results in cell order, a campaign's output (and its JSON-lines sink)
//! is byte-identical at any `--threads` count.

use parcomm_core::CopyMechanism;
use parcomm_obs::json::JsonValue;
use parcomm_sweep::{CellValue, JsonlSink, SweepSpec};

use crate::{chaos, FaultPlan};

/// The grid a campaign covers.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Simulation seed shared by every cell (the workload schedule).
    pub sim_seed: u64,
    /// First fault seed; the campaign covers `base_fault_seed..+seeds`.
    pub base_fault_seed: u64,
    /// Number of fault seeds.
    pub seeds: u64,
    /// Chaos rates each fault seed runs at.
    pub rates: Vec<f64>,
    /// GH200 nodes in the world.
    pub nodes: u16,
    /// Cross-node stripe counts each `(seed, rate)` point runs at — the
    /// multi-path striping axis. Stripe count 1 is the classic single-path
    /// protocol; higher counts exercise re-striping under NIC outages.
    pub stripes: Vec<usize>,
    /// Copy mechanism the world negotiates (`--mechanism pe|kc|shmem`).
    /// Under `Shmem` the intra-node engine channels ride the symmetric
    /// heap while cross-node channels demote to the Progression Engine.
    pub mechanism: CopyMechanism,
    /// Per-rank mux channel budget (`--channels`). At the default `1`
    /// every cell drives the classic single-collective allreduce; above 1
    /// the cell switches to the mux-enabled MoE workload
    /// ([`chaos::run_moe_cell`]) so the same fault grid lands on
    /// multiplexed load — {1, 64, 1024} is the canonical axis.
    pub channels: usize,
}

impl CampaignConfig {
    /// The CI campaign: eight fault seeds at a moderate and an aggressive
    /// rate on two nodes — the historical `chaos_sweep_eight_seeds`
    /// coverage. `quick` trims it to two seeds for smoke runs.
    /// `PARCOMM_CHAOS_SEED` shifts the whole seed block to explore fresh
    /// schedules without editing code.
    pub fn ci(quick: bool) -> CampaignConfig {
        let base = std::env::var("PARCOMM_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED);
        CampaignConfig {
            sim_seed: 0xFA017,
            base_fault_seed: base,
            seeds: if quick { 2 } else { 8 },
            rates: vec![0.4, 0.9],
            nodes: 2,
            stripes: vec![1, 4],
            mechanism: CopyMechanism::ProgressionEngine,
            channels: 1,
        }
    }
}

/// The recorded outcome of one campaign cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutcome {
    /// Fault seed of this cell's [`FaultPlan::chaos`].
    pub fault_seed: u64,
    /// Chaos rate of this cell's plan.
    pub rate: f64,
    /// Cross-node stripe count of this cell's world.
    pub stripes: usize,
    /// Copy mechanism this cell's world negotiated.
    pub mechanism: CopyMechanism,
    /// Per-rank mux channel budget (1 = classic allreduce workload).
    pub channels: usize,
    /// Trace digest of the faulted run.
    pub digest: u64,
    /// Virtual completion time (µs) of the faulted run.
    pub end_time_us: f64,
    /// Every rank completed without a typed error.
    pub survived: bool,
    /// The second run of the same `(seed, plan)` reproduced the digest.
    pub replayed: bool,
    /// Rank-0 numerics matched the fault-free baseline bit for bit.
    pub numeric_ok: bool,
}

impl CellOutcome {
    /// True when the cell upholds the whole fault-injection contract.
    pub fn ok(&self) -> bool {
        self.survived && self.replayed && self.numeric_ok
    }

    /// One deterministic report line (used by the `chaos_campaign` binary;
    /// diffing two reports proves two runs agreed cell for cell).
    pub fn render(&self) -> String {
        format!(
            "seed={:#x} rate={} stripes={} mech={} channels={} digest={:#018x} end_us={:.3} survived={} replayed={} numeric_ok={}",
            self.fault_seed,
            self.rate,
            self.stripes,
            self.mechanism.short_name(),
            self.channels,
            self.digest,
            self.end_time_us,
            self.survived,
            self.replayed,
            self.numeric_ok
        )
    }
}

impl CellValue for CellOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("fault_seed".to_string(), self.fault_seed.to_json()),
            ("rate".to_string(), self.rate.to_json()),
            ("stripes".to_string(), (self.stripes as u64).to_json()),
            (
                "mechanism".to_string(),
                JsonValue::String(self.mechanism.short_name().to_string()),
            ),
            ("channels".to_string(), (self.channels as u64).to_json()),
            ("digest".to_string(), self.digest.to_json()),
            ("end_time_us".to_string(), self.end_time_us.to_json()),
            ("survived".to_string(), self.survived.to_json()),
            ("replayed".to_string(), self.replayed.to_json()),
            ("numeric_ok".to_string(), self.numeric_ok.to_json()),
        ])
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        Some(CellOutcome {
            fault_seed: u64::from_json(v.get("fault_seed")?)?,
            rate: f64::from_json(v.get("rate")?)?,
            stripes: u64::from_json(v.get("stripes")?)? as usize,
            mechanism: CopyMechanism::from_short_name(v.get("mechanism")?.as_str()?)?,
            // Absent in sinks written before the channels axis existed.
            channels: match v.get("channels") {
                Some(c) => u64::from_json(c)? as usize,
                None => 1,
            },
            digest: u64::from_json(v.get("digest")?)?,
            end_time_us: f64::from_json(v.get("end_time_us")?)?,
            survived: bool::from_json(v.get("survived")?)?,
            replayed: bool::from_json(v.get("replayed")?)?,
            numeric_ok: bool::from_json(v.get("numeric_ok")?)?,
        })
    }
}

/// Build the campaign's sweep: one cell per `(fault seed, rate, stripes)`
/// point, keyed `seed=0x…,rate=…,stripes=…` in grid order. The fault-free
/// baseline runs once up front (serially, single-path) and is captured by
/// every cell for the numerics check — striped reassembly must reproduce
/// the single-path numerics bit for bit, chaos or not.
pub fn campaign_spec(cfg: &CampaignConfig) -> SweepSpec<CellOutcome> {
    let mechanism = cfg.mechanism;
    let channels = cfg.channels;
    let run = move |sim_seed: u64, plan: &FaultPlan, nodes: u16, stripes: usize| {
        if channels > 1 {
            chaos::run_moe_cell(sim_seed, plan, nodes, channels, stripes, mechanism, None)
        } else {
            chaos::run_allreduce_cell(sim_seed, plan, nodes, stripes, mechanism, None)
        }
    };
    let clean = run(cfg.sim_seed, &FaultPlan::none(), cfg.nodes, 1);
    let mut spec = SweepSpec::new();
    for fault_seed in cfg.base_fault_seed..cfg.base_fault_seed + cfg.seeds {
        for &rate in &cfg.rates {
            for &stripes in &cfg.stripes {
                let clean_numeric = clean.numeric.clone();
                let (sim_seed, nodes) = (cfg.sim_seed, cfg.nodes);
                let mech = mechanism.short_name();
                spec.cell(
                    format!(
                        "seed={fault_seed:#x},rate={rate},stripes={stripes},mech={mech},channels={channels}"
                    ),
                    move || {
                        let plan =
                            FaultPlan::chaos(fault_seed, rate).expect("grid rates are in [0, 1]");
                        let a = run(sim_seed, &plan, nodes, stripes);
                        let b = run(sim_seed, &plan, nodes, stripes);
                        CellOutcome {
                            fault_seed,
                            rate,
                            stripes,
                            mechanism,
                            channels,
                            digest: a.digest,
                            end_time_us: a.end_time_us,
                            survived: a.survived(),
                            replayed: a.digest == b.digest,
                            numeric_ok: a.numeric == clean_numeric,
                        }
                    },
                );
            }
        }
    }
    spec
}

/// Run the whole campaign on `threads` workers and return the outcomes in
/// grid order. Panics if any cell itself panicked (cells only observe, so
/// contract violations land in [`CellOutcome`] flags, not panics).
pub fn run_campaign(cfg: &CampaignConfig, threads: usize) -> Vec<CellOutcome> {
    campaign_spec(cfg).run(threads).into_values().expect("chaos campaign")
}

/// [`run_campaign`] with a resumable JSON-lines sink: cells already in
/// the sink are restored instead of re-run, fresh completions are
/// appended and flushed one line at a time.
pub fn run_campaign_with_sink(
    cfg: &CampaignConfig,
    threads: usize,
    sink: &mut JsonlSink,
) -> std::io::Result<Vec<CellOutcome>> {
    let results = campaign_spec(cfg).run_with_sink(threads, sink)?;
    Ok(results.into_values().expect("chaos campaign"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_outcome_round_trips_through_json() {
        let cell = CellOutcome {
            fault_seed: 0x5EED,
            rate: 0.4,
            stripes: 4,
            mechanism: CopyMechanism::Shmem,
            channels: 64,
            digest: 0xdead_beef_dead_beef,
            end_time_us: 1234.5,
            survived: true,
            replayed: true,
            numeric_ok: false,
        };
        assert_eq!(CellOutcome::from_json(&cell.to_json()), Some(cell.clone()));
        assert!(!cell.ok());
        let line = cell.render();
        assert!(
            line.contains("seed=0x5eed")
                && line.contains("stripes=4")
                && line.contains("mech=shmem")
                && line.contains("channels=64")
                && line.contains("numeric_ok=false"),
            "{line}"
        );
        // Sinks written before the channels axis still restore (axis = 1).
        let mut legacy = cell.to_json();
        if let JsonValue::Object(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "channels");
        }
        assert_eq!(CellOutcome::from_json(&legacy).map(|c| c.channels), Some(1));
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        // Tiny grid (one seed, one gentle rate) to keep the unit test
        // fast; the full 8-seed campaign runs in `tests/chaos.rs` and CI.
        let cfg = CampaignConfig {
            sim_seed: 0xFA017,
            base_fault_seed: 0x5EED,
            seeds: 1,
            rates: vec![0.4],
            nodes: 1,
            stripes: vec![1],
            mechanism: CopyMechanism::ProgressionEngine,
            channels: 1,
        };
        let serial = run_campaign(&cfg, 1);
        let parallel = run_campaign(&cfg, 4);
        assert_eq!(serial, parallel, "campaign output must not depend on the worker count");
        assert!(serial.iter().all(CellOutcome::ok), "{serial:?}");
    }

    #[test]
    fn campaign_cells_uphold_the_contract_over_shmem() {
        // The mechanism axis: the same tiny grid with the world negotiating
        // the symmetric heap. All four ranks are intra-node, so every engine
        // channel actually rides shmem; survival, replay, and numerics must
        // hold exactly as they do over the Progression Engine.
        let cfg = CampaignConfig {
            sim_seed: 0xFA017,
            base_fault_seed: 0x5EED,
            seeds: 1,
            rates: vec![0.4],
            nodes: 1,
            stripes: vec![1],
            mechanism: CopyMechanism::Shmem,
            channels: 1,
        };
        let outcomes = run_campaign(&cfg, 2);
        assert!(outcomes.iter().all(CellOutcome::ok), "{outcomes:?}");
        assert!(outcomes.iter().all(|o| o.mechanism == CopyMechanism::Shmem));
        // The negotiated mechanism changes the event stream: the shmem grid
        // must not alias the PE grid's digests.
        let pe = run_campaign(
            &CampaignConfig { mechanism: CopyMechanism::ProgressionEngine, ..cfg },
            2,
        );
        assert_ne!(outcomes[0].digest, pe[0].digest, "mechanism axis must move the digest");
    }

    #[test]
    fn campaign_runs_the_moe_cell_on_the_channels_axis() {
        // channels > 1 switches every cell to the mux-admitted MoE
        // workload; the contract (survive, replay, bit-identical numerics)
        // must hold under multiplexed load exactly as it does for the
        // single collective.
        let cfg = CampaignConfig {
            sim_seed: 0xFA017,
            base_fault_seed: 0x5EED,
            seeds: 1,
            rates: vec![0.4],
            nodes: 1,
            stripes: vec![1],
            mechanism: CopyMechanism::ProgressionEngine,
            channels: 64,
        };
        let moe = run_campaign(&cfg, 2);
        assert!(moe.iter().all(CellOutcome::ok), "{moe:?}");
        assert!(moe.iter().all(|o| o.channels == 64));
        let classic = run_campaign(&CampaignConfig { channels: 1, ..cfg }, 2);
        assert_ne!(moe[0].digest, classic[0].digest, "channels axis must move the workload");
    }
}
