//! Chaos-run helpers: execute a canonical workload under a [`FaultPlan`]
//! and classify the outcome.
//!
//! A [`ChaosRun`] captures the three observables the fault-injection
//! contract is stated in:
//!
//! - **digest** — the deterministic trace digest (same `(sim seed, plan)`
//!   ⇒ same digest, replayable byte for byte);
//! - **numeric** — the workload's rank-0 numeric result (survivable faults
//!   must leave it bit-identical to the fault-free run: latency, never
//!   integrity);
//! - **errors** — the typed [`MpiError`]s ranks returned (unsurvivable
//!   faults must land here instead of hanging the run).
//!
//! With [`FaultPlan::none`] the digest recipe reproduces the frozen
//! pre-fault-PR baselines exactly (see `tests/chaos.rs`).

use std::sync::Arc;

use parcomm_apps::{run_jacobi, JacobiConfig, JacobiModel};
use parcomm_coll::pallreduce_init;
use parcomm_core::CopyMechanism;
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiError, MpiWorld, Rank, WorldConfig};
use parcomm_obs::MetricsSnapshot;
use parcomm_sim::{Ctx, Mutex, Simulation};
use parcomm_testkit::digest;

use crate::FaultPlan;

/// The classified outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Deterministic digest of the run (trace + report + rank-0 numerics).
    pub digest: u64,
    /// Virtual end time of the simulation (µs) — the goodput denominator.
    pub end_time_us: f64,
    /// Rank-0's numeric observable (reduced buffer / solver checksum).
    pub numeric: Vec<f64>,
    /// Typed errors returned by ranks, in rank order.
    pub errors: Vec<(usize, MpiError)>,
    /// End-of-run metrics across every layer (PE polls, puts, retransmits,
    /// watchdog arms/fires, per-rail bytes). Instruments are pure atomics,
    /// so collecting them leaves the digest untouched.
    pub metrics: MetricsSnapshot,
}

impl ChaosRun {
    /// True if every rank completed without a typed error.
    pub fn survived(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Run an arbitrary rank program under `plan` on a `nodes`-node GH200
/// world. The body returns this rank's numeric observable (rank 0's is
/// kept) or a typed error (recorded; the run itself still completes).
pub fn run_world<F>(seed: u64, plan: &FaultPlan, nodes: u16, body: F) -> ChaosRun
where
    F: Fn(&mut Ctx, &mut Rank) -> Result<Vec<f64>, MpiError> + Send + Sync + 'static,
{
    run_world_with(seed, plan, nodes, |_| {}, body)
}

/// [`run_world`] with an extra hook mutating the [`WorldConfig`] after the
/// fault plan is applied — the entry point for world-level knobs (stripe
/// count above all) that are not part of the fault plan itself.
pub fn run_world_with<C, F>(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    configure: C,
    body: F,
) -> ChaosRun
where
    C: FnOnce(&mut WorldConfig),
    F: Fn(&mut Ctx, &mut Rank) -> Result<Vec<f64>, MpiError> + Send + Sync + 'static,
{
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let mut cfg = WorldConfig::gh200(nodes);
    plan.apply(&mut cfg);
    configure(&mut cfg);
    let world = MpiWorld::new(&sim, cfg);
    let registry = world.enable_metrics();
    let numeric = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(Mutex::new(Vec::new()));
    let (n2, e2) = (numeric.clone(), errors.clone());
    world.run_ranks(&mut sim, move |ctx, rank| match body(ctx, rank) {
        Ok(vals) => {
            if rank.rank() == 0 {
                *n2.lock() = vals;
            }
        }
        Err(e) => e2.lock().push((rank.rank(), e)),
    });
    let report = sim.run().expect("chaos sim completes (watchdogs bound every wait)");
    let mut errors = Arc::try_unwrap(errors).expect("ranks done").into_inner();
    errors.sort_by_key(|(r, _)| *r);
    let numeric = Arc::try_unwrap(numeric).expect("ranks done").into_inner();
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&numeric);
    ChaosRun {
        digest: d.finish(),
        end_time_us: report.end_time.as_micros_f64(),
        numeric,
        errors,
        metrics: registry.snapshot(),
    }
}

/// The canonical partitioned-allreduce chaos workload (4 user partitions,
/// 64 f64 per partition-chunk, device-side `MPIX_Pready`), identical to
/// the frozen-baseline recipe: with [`FaultPlan::none`] its digest is
/// byte-identical to the pre-fault-injection build.
pub fn run_allreduce(seed: u64, plan: &FaultPlan, nodes: u16) -> ChaosRun {
    run_allreduce_striped(seed, plan, nodes, 1)
}

/// [`run_allreduce`] with the recovery escalation ladder armed (or not):
/// `recover` lands in [`WorldConfig::recover`] before the world is built.
/// With `None` this is exactly [`run_allreduce`] — same config, same
/// digest; with `Some` and a fault-free plan the digest is *still*
/// identical (recovery only arms cancellable timers; see
/// `tests/recovery.rs`).
pub fn run_allreduce_recovering(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    run_world_with(seed, plan, nodes, move |cfg| cfg.recover = recover, |ctx, rank| {
        allreduce_body(ctx, rank)
    })
}

/// [`run_allreduce`] with the world's cross-node stripe count set: the
/// chaos-campaign striping axis. `stripes == 1` is exactly
/// [`run_allreduce`] — same config, same digest.
pub fn run_allreduce_striped(seed: u64, plan: &FaultPlan, nodes: u16, stripes: usize) -> ChaosRun {
    run_world_with(seed, plan, nodes, |cfg| cfg.stripes = stripes, |ctx, rank| {
        allreduce_body(ctx, rank)
    })
}

/// The canonical allreduce rank program shared by every chaos workload
/// variant (identical code path ⇒ identical digests whatever the config
/// knobs around it).
fn allreduce_body(ctx: &mut Ctx, rank: &mut Rank) -> Result<Vec<f64>, MpiError> {
    let partitions = 4usize;
    let n = partitions * rank.size() * 64;
    let buf = rank.gpu().alloc_global(n * 8);
    let vals: Vec<f64> = (0..n).map(|i| (rank.rank() * 31 + i) as f64).collect();
    buf.write_f64_slice(0, &vals);
    let stream = rank.gpu().create_stream();
    let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90)?;
    coll.start(ctx)?;
    coll.pbuf_prepare(ctx)?;
    let c2 = coll.clone();
    stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
    coll.wait(ctx)?;
    Ok(buf.read_f64_slice(0, n))
}

/// The canonical Jacobi chaos workload: the functional-test solver with
/// GPU-initiated partitioned halo exchange over the Progression Engine.
/// Digest recipe matches the frozen jacobi baselines under
/// [`FaultPlan::none`].
pub fn run_jacobi_chaos(seed: u64, plan: &FaultPlan, nodes: u16) -> ChaosRun {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let mut cfg = WorldConfig::gh200(nodes);
    plan.apply(&mut cfg);
    let world = MpiWorld::new(&sim, cfg);
    let registry = world.enable_metrics();
    let out = Arc::new(Mutex::new(0.0f64));
    let errors = Arc::new(Mutex::new(Vec::new()));
    let (o2, e2) = (out.clone(), errors.clone());
    world.run_ranks(&mut sim, move |ctx, rank| {
        let jcfg = JacobiConfig::functional_test(JacobiModel::Partitioned(
            CopyMechanism::ProgressionEngine,
        ));
        match run_jacobi(ctx, rank, &jcfg) {
            Ok(res) => {
                if rank.rank() == 0 {
                    *o2.lock() = res.checksum;
                }
            }
            Err(e) => e2.lock().push((rank.rank(), e)),
        }
    });
    let report = sim.run().expect("chaos sim completes (watchdogs bound every wait)");
    let mut errors = Arc::try_unwrap(errors).expect("ranks done").into_inner();
    errors.sort_by_key(|(r, _)| *r);
    let checksum = *out.lock();
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64(checksum);
    ChaosRun {
        digest: d.finish(),
        end_time_us: report.end_time.as_micros_f64(),
        numeric: vec![checksum],
        errors,
        metrics: registry.snapshot(),
    }
}
