//! Chaos-run helpers: execute a canonical workload under a [`FaultPlan`]
//! and classify the outcome.
//!
//! A [`ChaosRun`] captures the three observables the fault-injection
//! contract is stated in:
//!
//! - **digest** — the deterministic trace digest (same `(sim seed, plan)`
//!   ⇒ same digest, replayable byte for byte);
//! - **numeric** — the workload's rank-0 numeric result (survivable faults
//!   must leave it bit-identical to the fault-free run: latency, never
//!   integrity);
//! - **errors** — the typed [`MpiError`]s ranks returned (unsurvivable
//!   faults must land here instead of hanging the run).
//!
//! With [`FaultPlan::none`] the digest recipe reproduces the frozen
//! pre-fault-PR baselines exactly (see `tests/chaos.rs`).

use std::sync::Arc;

use parcomm_apps::{run_jacobi, run_moe, JacobiConfig, JacobiModel, MoeConfig};
use parcomm_coll::pallreduce_init;
use parcomm_core::{precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig};
use parcomm_gpu::KernelSpec;
use parcomm_mpi::{MpiError, MpiWorld, Rank, WorldConfig};
use parcomm_net::ClusterSpec;
use parcomm_obs::MetricsSnapshot;
use parcomm_sim::{Ctx, Mutex, Simulation};
use parcomm_testkit::digest;

use crate::FaultPlan;

/// The classified outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Deterministic digest of the run (trace + report + rank-0 numerics).
    pub digest: u64,
    /// Virtual end time of the simulation (µs) — the goodput denominator.
    pub end_time_us: f64,
    /// Rank-0's numeric observable (reduced buffer / solver checksum).
    pub numeric: Vec<f64>,
    /// Typed errors returned by ranks, in rank order.
    pub errors: Vec<(usize, MpiError)>,
    /// End-of-run metrics across every layer (PE polls, puts, retransmits,
    /// watchdog arms/fires, per-rail bytes). Instruments are pure atomics,
    /// so collecting them leaves the digest untouched.
    pub metrics: MetricsSnapshot,
}

impl ChaosRun {
    /// True if every rank completed without a typed error.
    pub fn survived(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Run an arbitrary rank program under `plan` on a `nodes`-node GH200
/// world. The body returns this rank's numeric observable (rank 0's is
/// kept) or a typed error (recorded; the run itself still completes).
pub fn run_world<F>(seed: u64, plan: &FaultPlan, nodes: u16, body: F) -> ChaosRun
where
    F: Fn(&mut Ctx, &mut Rank) -> Result<Vec<f64>, MpiError> + Send + Sync + 'static,
{
    run_world_with(seed, plan, nodes, |_| {}, body)
}

/// [`run_world`] with an extra hook mutating the [`WorldConfig`] after the
/// fault plan is applied — the entry point for world-level knobs (stripe
/// count above all) that are not part of the fault plan itself.
pub fn run_world_with<C, F>(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    configure: C,
    body: F,
) -> ChaosRun
where
    C: FnOnce(&mut WorldConfig),
    F: Fn(&mut Ctx, &mut Rank) -> Result<Vec<f64>, MpiError> + Send + Sync + 'static,
{
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let mut cfg = WorldConfig::gh200(nodes);
    plan.apply(&mut cfg);
    configure(&mut cfg);
    let world = MpiWorld::new(&sim, cfg);
    let registry = world.enable_metrics();
    let numeric = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(Mutex::new(Vec::new()));
    let (n2, e2) = (numeric.clone(), errors.clone());
    world.run_ranks(&mut sim, move |ctx, rank| match body(ctx, rank) {
        Ok(vals) => {
            if rank.rank() == 0 {
                *n2.lock() = vals;
            }
        }
        Err(e) => e2.lock().push((rank.rank(), e)),
    });
    let report = sim.run().expect("chaos sim completes (watchdogs bound every wait)");
    let mut errors = Arc::try_unwrap(errors).expect("ranks done").into_inner();
    errors.sort_by_key(|(r, _)| *r);
    let numeric = Arc::try_unwrap(numeric).expect("ranks done").into_inner();
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64_slice(&numeric);
    ChaosRun {
        digest: d.finish(),
        end_time_us: report.end_time.as_micros_f64(),
        numeric,
        errors,
        metrics: registry.snapshot(),
    }
}

/// The canonical partitioned-allreduce chaos workload (4 user partitions,
/// 64 f64 per partition-chunk, device-side `MPIX_Pready`), identical to
/// the frozen-baseline recipe: with [`FaultPlan::none`] its digest is
/// byte-identical to the pre-fault-injection build.
pub fn run_allreduce(seed: u64, plan: &FaultPlan, nodes: u16) -> ChaosRun {
    run_allreduce_striped(seed, plan, nodes, 1)
}

/// [`run_allreduce`] with the recovery escalation ladder armed (or not):
/// `recover` lands in [`WorldConfig::recover`] before the world is built.
/// With `None` this is exactly [`run_allreduce`] — same config, same
/// digest; with `Some` and a fault-free plan the digest is *still*
/// identical (recovery only arms cancellable timers; see
/// `tests/recovery.rs`).
pub fn run_allreduce_recovering(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    run_world_with(seed, plan, nodes, move |cfg| cfg.recover = recover, |ctx, rank| {
        allreduce_body(ctx, rank)
    })
}

/// [`run_allreduce`] with the world's cross-node stripe count set: the
/// chaos-campaign striping axis. `stripes == 1` is exactly
/// [`run_allreduce`] — same config, same digest.
pub fn run_allreduce_striped(seed: u64, plan: &FaultPlan, nodes: u16, stripes: usize) -> ChaosRun {
    run_world_with(seed, plan, nodes, |cfg| cfg.stripes = stripes, |ctx, rank| {
        allreduce_body(ctx, rank)
    })
}

/// The full-knob campaign cell: stripe count, world copy mechanism, and
/// the recovery ladder, all set before the world is built. With defaults
/// (`stripes == 1`, `CopyMechanism::ProgressionEngine`, `recover: None`)
/// this is exactly [`run_allreduce`] — same config, same digest. Under
/// `CopyMechanism::Shmem` the engine's intra-node channels negotiate the
/// symmetric heap while route-forbidden cross-node channels demote to the
/// Progression Engine, so the mechanism axis is safe at any node count.
pub fn run_allreduce_cell(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    stripes: usize,
    mechanism: CopyMechanism,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    run_world_with(
        seed,
        plan,
        nodes,
        move |cfg| {
            cfg.stripes = stripes;
            cfg.mechanism = mechanism;
            cfg.recover = recover;
        },
        allreduce_body,
    )
}

/// [`run_allreduce_cell`] over an arbitrary cluster shape — the chaos
/// campaign's topology-shape axis. With the uniform
/// `ClusterSpec::gh200(nodes)` this is exactly [`run_allreduce_cell`]:
/// same config, same digest.
pub fn run_allreduce_cell_on(
    seed: u64,
    plan: &FaultPlan,
    cluster: ClusterSpec,
    stripes: usize,
    mechanism: CopyMechanism,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    let nodes = if cluster.node_gpus.is_empty() {
        cluster.nodes
    } else {
        cluster.node_gpus.len() as u16
    };
    run_world_with(
        seed,
        plan,
        nodes,
        move |cfg| {
            cfg.cluster = cluster;
            cfg.stripes = stripes;
            cfg.mechanism = mechanism;
            cfg.recover = recover;
        },
        allreduce_body,
    )
}

/// The canonical *device-initiated* p2p chaos workload: rank 1 launches a
/// kernel whose threads mark partitions ready on a 4-partition psend to
/// rank 0, so the device emission path — flag writes under the classic
/// protocols, symmetric puts + signals under [`CopyMechanism::Shmem`] —
/// is exactly what the fault schedule meets. The collective workload
/// cannot exercise shmem-signal faults (its engine hands partitions to
/// the host in one aggregated flag write and the symmetric puts are then
/// issued host-side), so the coverage campaign routes shmem-signal
/// targets here. Rank 0 is the receiver, so the kept numeric observable
/// is the delivered payload itself.
pub fn run_device_p2p_cell(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    mechanism: CopyMechanism,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    run_world_with(
        seed,
        plan,
        nodes,
        move |cfg| {
            cfg.mechanism = mechanism;
            cfg.recover = recover;
        },
        move |ctx, rank| device_p2p_body(ctx, rank, mechanism),
    )
}

/// [`run_device_p2p_cell`] over an arbitrary cluster shape. Note that on
/// an oversubscribed shape ranks 0 and 1 co-reside on GPU 0 of node 0, so
/// the cell drives the `SameGpu` route regime — device HBM, no NVLink, no
/// NIC — which no uniform shape can reach.
pub fn run_device_p2p_cell_on(
    seed: u64,
    plan: &FaultPlan,
    cluster: ClusterSpec,
    mechanism: CopyMechanism,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    let nodes = if cluster.node_gpus.is_empty() {
        cluster.nodes
    } else {
        cluster.node_gpus.len() as u16
    };
    run_world_with(
        seed,
        plan,
        nodes,
        move |cfg| {
            cfg.cluster = cluster;
            cfg.mechanism = mechanism;
            cfg.recover = recover;
        },
        move |ctx, rank| device_p2p_body(ctx, rank, mechanism),
    )
}

/// The MoE cell configuration for a `channels`-per-rank budget on a
/// `nodes`-node world: tenants are scaled so every rank admits roughly
/// `channels` mux channels (each tenant opens 4 channels per peer —
/// dispatch/combine × send/recv), with an 8:1 hot tenant up front whenever
/// there is more than one. Tiny tokens keep the per-channel payload cheap
/// so the axis scales channel *count*, not bytes.
pub fn moe_chaos_config(nodes: u16, channels: usize, mechanism: CopyMechanism) -> MoeConfig {
    let peers = nodes as usize * 4 - 1;
    let tenants = (channels / (4 * peers)).max(1);
    let mut tenant_weights = vec![1u64; tenants];
    tenant_weights[0] = if tenants > 1 { 8 } else { 1 };
    MoeConfig {
        tenants,
        tenant_weights,
        tokens_per_rank: 8,
        hidden: 2,
        layers: 1,
        capacity_factor_pct: 200,
        mechanism,
        functional: true,
        seed: 0x0E0E,
    }
}

/// The mux-enabled MoE chaos workload: every rank admits its share of a
/// ~`channels`-channel grid through a `MuxService` (batched ticks,
/// weighted-fair admission, indexed channel table) and runs one
/// dispatch/combine layer, so fault classes meet *multiplexed* load — many
/// concurrent partitioned channels — instead of the single collective the
/// classic cells drive. Under `KernelCopy` and `Shmem` the sends are
/// device-initiated, so flag-write and shmem-signal fault schedules land
/// on real MoE emissions. The kept numeric observable is rank 0's
/// `(checksum, tokens_routed, tokens_dropped, channels)`.
pub fn run_moe_cell(
    seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    channels: usize,
    stripes: usize,
    mechanism: CopyMechanism,
    recover: Option<parcomm_mpi::RecoverConfig>,
) -> ChaosRun {
    let cfg = moe_chaos_config(nodes, channels, mechanism);
    run_world_with(
        seed,
        plan,
        nodes,
        move |w| {
            w.stripes = stripes;
            w.mechanism = mechanism;
            w.recover = recover;
        },
        move |ctx, rank| {
            let res = run_moe(ctx, rank, &cfg)?;
            Ok(vec![
                res.checksum,
                res.tokens_routed as f64,
                res.tokens_dropped as f64,
                res.channels as f64,
            ])
        },
    )
}

/// Rank program for [`run_device_p2p_cell`]: intra-node 1 -> 0, 4 user
/// partitions x 1 KiB, 2 transport partitions, progressive device pready
/// with `copy` matching the world mechanism.
fn device_p2p_body(
    ctx: &mut Ctx,
    rank: &mut Rank,
    mechanism: CopyMechanism,
) -> Result<Vec<f64>, MpiError> {
    let parts = 4usize;
    let buf = rank.gpu().alloc_global(parts * 1024);
    match rank.rank() {
        1 => {
            for u in 0..parts {
                buf.write_f64_slice(u * 1024, &[(u * 3 + 1) as f64; 128]);
            }
            let sreq = psend_init(ctx, rank, 0, 19, &buf, parts)?;
            sreq.start(ctx)?;
            sreq.pbuf_prepare(ctx)?;
            let preq = prequest_create(ctx, rank, &sreq, PrequestConfig {
                copy: mechanism,
                transport_partitions: 2,
                ..PrequestConfig::default()
            })?;
            let stream = rank.gpu().create_stream();
            stream.launch(ctx, KernelSpec::vector_add(2, 256), move |d| {
                preq.pready_all_progressive(d)
            });
            sreq.wait(ctx)?;
            Ok(Vec::new())
        }
        0 => {
            let rreq = precv_init(ctx, rank, 1, 19, &buf, parts)?;
            rreq.start(ctx)?;
            rreq.pbuf_prepare(ctx)?;
            rreq.wait(ctx)?;
            Ok((0..parts).map(|u| buf.read_f64(u * 1024)).collect())
        }
        _ => Ok(Vec::new()),
    }
}

/// The canonical allreduce rank program shared by every chaos workload
/// variant (identical code path ⇒ identical digests whatever the config
/// knobs around it).
fn allreduce_body(ctx: &mut Ctx, rank: &mut Rank) -> Result<Vec<f64>, MpiError> {
    let partitions = 4usize;
    let n = partitions * rank.size() * 64;
    let buf = rank.gpu().alloc_global(n * 8);
    let vals: Vec<f64> = (0..n).map(|i| (rank.rank() * 31 + i) as f64).collect();
    buf.write_f64_slice(0, &vals);
    let stream = rank.gpu().create_stream();
    let coll = pallreduce_init(ctx, rank, &buf, partitions, &stream, 90)?;
    coll.start(ctx)?;
    coll.pbuf_prepare(ctx)?;
    let c2 = coll.clone();
    stream.launch(ctx, KernelSpec::vector_add(4, 256), move |d| c2.pready_device_all(d));
    coll.wait(ctx)?;
    Ok(buf.read_f64_slice(0, n))
}

/// The canonical Jacobi chaos workload: the functional-test solver with
/// GPU-initiated partitioned halo exchange over the Progression Engine.
/// Digest recipe matches the frozen jacobi baselines under
/// [`FaultPlan::none`].
pub fn run_jacobi_chaos(seed: u64, plan: &FaultPlan, nodes: u16) -> ChaosRun {
    let mut sim = Simulation::with_seed(seed);
    let trace = sim.trace();
    trace.enable();
    let mut cfg = WorldConfig::gh200(nodes);
    plan.apply(&mut cfg);
    let world = MpiWorld::new(&sim, cfg);
    let registry = world.enable_metrics();
    let out = Arc::new(Mutex::new(0.0f64));
    let errors = Arc::new(Mutex::new(Vec::new()));
    let (o2, e2) = (out.clone(), errors.clone());
    world.run_ranks(&mut sim, move |ctx, rank| {
        let jcfg = JacobiConfig::functional_test(JacobiModel::Partitioned(
            CopyMechanism::ProgressionEngine,
        ));
        match run_jacobi(ctx, rank, &jcfg) {
            Ok(res) => {
                if rank.rank() == 0 {
                    *o2.lock() = res.checksum;
                }
            }
            Err(e) => e2.lock().push((rank.rank(), e)),
        }
    });
    let report = sim.run().expect("chaos sim completes (watchdogs bound every wait)");
    let mut errors = Arc::try_unwrap(errors).expect("ranks done").into_inner();
    errors.sort_by_key(|(r, _)| *r);
    let checksum = *out.lock();
    let mut d = digest::Digest::new();
    d.write_u64(digest::run_digest(&report, &trace));
    d.write_f64(checksum);
    ChaosRun {
        digest: d.finish(),
        end_time_us: report.end_time.as_micros_f64(),
        numeric: vec![checksum],
        errors,
        metrics: registry.snapshot(),
    }
}
