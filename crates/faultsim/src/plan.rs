//! The [`FaultPlan`]: one seeded, declarative description of every fault a
//! run will experience, applied onto a [`WorldConfig`] before the world is
//! built.

use parcomm_gpu::EmissionFaultConfig;
use parcomm_mpi::{PeFaultConfig, WorldConfig};
use parcomm_net::{NetFaultConfig, NicOutage};
use parcomm_sim::SimRng;

/// A deterministic fault schedule for one simulated run.
///
/// Build one with [`FaultPlan::none`] (injects nothing, perturbs nothing),
/// [`FaultPlan::chaos`] (a seeded survivable mix), or the `with_*` builders
/// for a hand-placed fault; then [`FaultPlan::apply`] it to the
/// [`WorldConfig`] before constructing the `MpiWorld`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Watchdog timeout (µs) armed on every blocking MPI wait, so
    /// unsurvivable faults surface as typed errors instead of hangs.
    pub watchdog_us: Option<f64>,
    /// Fabric faults: transient drops, latency spikes, NIC outages.
    pub net: Option<NetFaultConfig>,
    /// Per-rank progression-engine faults (stall windows, crash instants).
    pub pe: Vec<(usize, PeFaultConfig)>,
    /// Per-rank device flag-write (emission) faults.
    pub flags: Vec<(usize, EmissionFaultConfig)>,
}

impl FaultPlan {
    /// The empty plan: arms nothing. Applying it leaves the [`WorldConfig`]
    /// untouched, so the run's event stream, RNG draws, and trace digest
    /// are byte-identical to a run that never heard of fault injection.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if this plan injects nothing and arms no watchdog.
    pub fn is_none(&self) -> bool {
        self.watchdog_us.is_none()
            && self.net.is_none()
            && self.pe.is_empty()
            && self.flags.is_empty()
    }

    /// A seeded *survivable* chaos mix scaled by `rate` (clamped to
    /// `[0, 1]`): transient drops and latency spikes with probability
    /// proportional to `rate`, plus (above a threshold) one single-NIC
    /// down-window that routing re-stripes around. Injected faults degrade
    /// goodput, never integrity — survivable runs produce bit-identical
    /// numerics to the fault-free run.
    ///
    /// A generous watchdog is armed as a safety net: if a "survivable" mix
    /// ever does wedge the run, the failure is a typed [`parcomm_mpi::MpiError`],
    /// not a hung test. All parameters derive from `seed` via a dedicated
    /// RNG: the same `(seed, rate)` always builds the identical plan.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let mut rng = SimRng::seeded(seed ^ 0x00FA_017C_4A05);
        let mut net = NetFaultConfig {
            seed: rng.next_u64(),
            drop_prob: 0.4 * rate,
            retransmit_delay_us: 5.0,
            spike_prob: 0.5 * rate,
            spike_us: 10.0 + 40.0 * rng.uniform(),
            nic_outages: Vec::new(),
        };
        if rate >= 0.25 {
            // One NIC dark for a window; three sibling rails survive.
            let from_us = 50.0 + 400.0 * rng.uniform();
            net.nic_outages.push(NicOutage {
                node: 0,
                nic: (rng.uniform_range(0, 4)) as u8,
                from_us,
                until_us: from_us + 200.0 + 800.0 * rate * rng.uniform(),
            });
        }
        FaultPlan {
            seed,
            watchdog_us: Some(5_000_000.0),
            net: Some(net),
            pe: Vec::new(),
            flags: Vec::new(),
        }
    }

    /// Arm the blocking-wait watchdog at `timeout_us` virtual microseconds.
    pub fn with_watchdog(mut self, timeout_us: f64) -> Self {
        self.watchdog_us = Some(timeout_us);
        self
    }

    /// Add transient link faults: per-attempt drop probability and
    /// per-transfer latency-spike probability/magnitude.
    pub fn with_link_faults(mut self, drop_prob: f64, spike_prob: f64, spike_us: f64) -> Self {
        let net = self.net.get_or_insert_with(|| NetFaultConfig {
            seed: self.seed,
            ..NetFaultConfig::default()
        });
        net.drop_prob = drop_prob;
        net.spike_prob = spike_prob;
        net.spike_us = spike_us;
        self
    }

    /// Add a NIC down-window: `(node, nic)` is unusable for transfers
    /// starting in `[from_us, until_us)`.
    pub fn with_nic_outage(mut self, node: u16, nic: u8, from_us: f64, until_us: f64) -> Self {
        let net = self.net.get_or_insert_with(|| NetFaultConfig {
            seed: self.seed,
            ..NetFaultConfig::default()
        });
        net.nic_outages.push(NicOutage { node, nic, from_us, until_us });
        self
    }

    /// Stall `rank`'s progression engine for `stall_us` once the virtual
    /// clock reaches `at_us` (survivable: deferred puts catch up).
    pub fn with_pe_stall(mut self, rank: usize, at_us: f64, stall_us: f64) -> Self {
        let f = self.pe_entry(rank);
        f.stall_at_us = at_us;
        f.stall_us = stall_us;
        self
    }

    /// Crash `rank`'s progression engine at `at_us` (unsurvivable for PE
    /// channels: arm a watchdog to get `MpiError::ProgressionHalted`).
    pub fn with_pe_crash(mut self, rank: usize, at_us: f64) -> Self {
        let f = self.pe_entry(rank);
        f.crash_at_us = Some(at_us);
        self
    }

    /// Delay every `every`-th device flag-write emission on `rank` by
    /// `delay_us` (survivable: the progression engine sees it late).
    pub fn with_delayed_flag_writes(mut self, rank: usize, every: u64, delay_us: f64) -> Self {
        let f = self.flag_entry(rank);
        f.delay_every = every;
        f.delay_us = delay_us;
        self
    }

    /// Lose every `every`-th device flag-write emission on `rank` entirely
    /// (unsurvivable: arm a watchdog to get a typed timeout).
    pub fn with_lost_flag_writes(mut self, rank: usize, every: u64) -> Self {
        let f = self.flag_entry(rank);
        f.lose_every = every;
        self
    }

    /// Apply the plan onto a [`WorldConfig`]. [`FaultPlan::none`] leaves
    /// `cfg` bit-for-bit unchanged.
    pub fn apply(&self, cfg: &mut WorldConfig) {
        if let Some(t) = self.watchdog_us {
            cfg.wait_watchdog_us = Some(t);
        }
        if let Some(net) = &self.net {
            cfg.net_faults = Some(net.clone());
        }
        cfg.pe_faults.extend(self.pe.iter().cloned());
        cfg.gpu_flag_faults.extend(self.flags.iter().cloned());
    }

    fn pe_entry(&mut self, rank: usize) -> &mut PeFaultConfig {
        if let Some(i) = self.pe.iter().position(|(r, _)| *r == rank) {
            &mut self.pe[i].1
        } else {
            self.pe.push((rank, PeFaultConfig::default()));
            &mut self.pe.last_mut().expect("just pushed").1
        }
    }

    fn flag_entry(&mut self, rank: usize) -> &mut EmissionFaultConfig {
        if let Some(i) = self.flags.iter().position(|(r, _)| *r == rank) {
            &mut self.flags[i].1
        } else {
            self.flags.push((rank, EmissionFaultConfig::default()));
            &mut self.flags.last_mut().expect("just pushed").1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_on_apply() {
        let mut cfg = WorldConfig::gh200(2);
        FaultPlan::none().apply(&mut cfg);
        assert!(cfg.wait_watchdog_us.is_none());
        assert!(cfg.net_faults.is_none());
        assert!(cfg.pe_faults.is_empty());
        assert!(cfg.gpu_flag_faults.is_empty());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn chaos_is_seed_deterministic() {
        let a = FaultPlan::chaos(42, 0.5);
        let b = FaultPlan::chaos(42, 0.5);
        assert_eq!(a, b);
        let c = FaultPlan::chaos(43, 0.5);
        assert_ne!(a, c, "different seed => different plan");
        assert!(!a.is_none());
    }

    #[test]
    fn chaos_scales_with_rate() {
        let quiet = FaultPlan::chaos(7, 0.0);
        let loud = FaultPlan::chaos(7, 1.0);
        let (q, l) = (quiet.net.expect("net"), loud.net.expect("net"));
        assert_eq!(q.drop_prob, 0.0);
        assert!(l.drop_prob > 0.0);
        assert!(q.nic_outages.is_empty(), "low rate: no outage");
        assert_eq!(l.nic_outages.len(), 1, "high rate: one down-window");
    }

    #[test]
    fn builders_accumulate_per_rank() {
        let plan = FaultPlan::none()
            .with_pe_stall(1, 100.0, 50.0)
            .with_pe_crash(1, 400.0)
            .with_lost_flag_writes(2, 3)
            .with_delayed_flag_writes(2, 5, 30.0)
            .with_nic_outage(0, 1, 10.0, 20.0)
            .with_watchdog(1e6);
        assert_eq!(plan.pe.len(), 1, "stall and crash merge onto rank 1");
        assert_eq!(plan.pe[0].1.crash_at_us, Some(400.0));
        assert_eq!(plan.pe[0].1.stall_us, 50.0);
        assert_eq!(plan.flags.len(), 1);
        assert_eq!(plan.flags[0].1.lose_every, 3);
        assert_eq!(plan.flags[0].1.delay_every, 5);
        let mut cfg = WorldConfig::gh200(1);
        plan.apply(&mut cfg);
        assert_eq!(cfg.wait_watchdog_us, Some(1e6));
        assert_eq!(cfg.pe_faults.len(), 1);
        assert_eq!(cfg.net_faults.expect("net").nic_outages.len(), 1);
    }
}
