//! The [`FaultPlan`]: one seeded, declarative description of every fault a
//! run will experience, applied onto a [`WorldConfig`] before the world is
//! built.
//!
//! Plans round-trip through JSON (see [`FaultPlan::to_json_string`] /
//! [`FaultPlan::from_json_str`]) so a failing chaos cell can be minimized,
//! written under `results/`, and replayed bit-for-bit from the artifact.

use parcomm_gpu::EmissionFaultConfig;
use parcomm_mpi::{PeFaultConfig, WorldConfig};
use parcomm_net::{NetFaultConfig, NicOutage};
use parcomm_obs::json::{self, JsonValue};
use parcomm_sim::SimRng;

/// Typed rejection of a malformed [`FaultPlan`] before it reaches a world.
///
/// Construction-time validation keeps the chaos search space well-formed:
/// a plan that survives [`FaultPlan::validate`] can always be applied and
/// replayed; a plan that does not is a caller bug surfaced eagerly, never a
/// silently clamped or wedged run.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A probability or chaos rate outside `[0, 1]` (or NaN).
    RateOutOfRange {
        /// What was out of range (e.g. `"chaos rate"`, `"drop_prob"`).
        what: &'static str,
        /// The offending value.
        rate: f64,
    },
    /// A duration or instant that must be non-negative was negative or NaN.
    NegativeDuration {
        /// Which field was negative.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A NIC outage window with `until_us < from_us` covers nothing.
    EmptyWindow {
        /// Window start (µs).
        from_us: f64,
        /// Window end (µs), before the start.
        until_us: f64,
    },
    /// A JSON document that does not decode to a plan.
    Malformed(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::RateOutOfRange { what, rate } => {
                write!(f, "{what} {rate} outside [0, 1]")
            }
            PlanError::NegativeDuration { what, value } => {
                write!(f, "{what} must be non-negative, got {value}")
            }
            PlanError::EmptyWindow { from_us, until_us } => {
                write!(f, "outage window ends ({until_us}µs) before it starts ({from_us}µs)")
            }
            PlanError::Malformed(why) => write!(f, "malformed fault plan: {why}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A deterministic fault schedule for one simulated run.
///
/// Build one with [`FaultPlan::none`] (injects nothing, perturbs nothing),
/// [`FaultPlan::chaos`] (a seeded survivable mix), or the `with_*` builders
/// for a hand-placed fault; then [`FaultPlan::apply`] it to the
/// [`WorldConfig`] before constructing the `MpiWorld`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Watchdog timeout (µs) armed on every blocking MPI wait, so
    /// unsurvivable faults surface as typed errors instead of hangs.
    pub watchdog_us: Option<f64>,
    /// Fabric faults: transient drops, latency spikes, NIC outages.
    pub net: Option<NetFaultConfig>,
    /// Per-rank progression-engine faults (stall windows, crash instants).
    pub pe: Vec<(usize, PeFaultConfig)>,
    /// Per-rank device flag-write (emission) faults.
    pub flags: Vec<(usize, EmissionFaultConfig)>,
    /// Per-rank device shmem-signal emission faults — only bite on channels
    /// that negotiated the symmetric-heap mechanism.
    pub shmem_signals: Vec<(usize, EmissionFaultConfig)>,
    /// Ranks whose symmetric-heap registration fails at world construction;
    /// channels binding toward them demote to the Progression Engine with a
    /// typed `ShmemError::RegistrationFailed`.
    pub shmem_heap_fail: Vec<usize>,
}

impl FaultPlan {
    /// The empty plan: arms nothing. Applying it leaves the [`WorldConfig`]
    /// untouched, so the run's event stream, RNG draws, and trace digest
    /// are byte-identical to a run that never heard of fault injection.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if this plan injects nothing and arms no watchdog.
    pub fn is_none(&self) -> bool {
        self.watchdog_us.is_none()
            && self.net.is_none()
            && self.pe.is_empty()
            && self.flags.is_empty()
            && self.shmem_signals.is_empty()
            && self.shmem_heap_fail.is_empty()
    }

    /// A seeded *survivable* chaos mix scaled by `rate`: transient drops
    /// and latency spikes with probability proportional to `rate`, plus
    /// (above a threshold) one single-NIC down-window that routing
    /// re-stripes around. Injected faults degrade goodput, never integrity
    /// — survivable runs produce bit-identical numerics to the fault-free
    /// run.
    ///
    /// A `rate` outside `[0, 1]` (or NaN) is rejected with
    /// [`PlanError::RateOutOfRange`] rather than clamped, so sweep specs and
    /// JSON plans that drift out of the calibrated range fail loudly.
    ///
    /// A generous watchdog is armed as a safety net: if a "survivable" mix
    /// ever does wedge the run, the failure is a typed [`parcomm_mpi::MpiError`],
    /// not a hung test. All parameters derive from `seed` via a dedicated
    /// RNG: the same `(seed, rate)` always builds the identical plan.
    pub fn chaos(seed: u64, rate: f64) -> Result<Self, PlanError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(PlanError::RateOutOfRange { what: "chaos rate", rate });
        }
        let mut rng = SimRng::seeded(seed ^ 0x00FA_017C_4A05);
        let mut net = NetFaultConfig {
            seed: rng.next_u64(),
            drop_prob: 0.4 * rate,
            retransmit_delay_us: 5.0,
            spike_prob: 0.5 * rate,
            spike_us: 10.0 + 40.0 * rng.uniform(),
            nic_outages: Vec::new(),
        };
        if rate >= 0.25 {
            // One NIC dark for a window; three sibling rails survive.
            let from_us = 50.0 + 400.0 * rng.uniform();
            net.nic_outages.push(NicOutage {
                node: 0,
                nic: (rng.uniform_range(0, 4)) as u8,
                from_us,
                until_us: from_us + 200.0 + 800.0 * rate * rng.uniform(),
            });
        }
        Ok(FaultPlan {
            seed,
            watchdog_us: Some(5_000_000.0),
            net: Some(net),
            ..FaultPlan::default()
        })
    }

    /// Arm the blocking-wait watchdog at `timeout_us` virtual microseconds.
    pub fn with_watchdog(mut self, timeout_us: f64) -> Self {
        self.watchdog_us = Some(timeout_us);
        self
    }

    /// Add transient link faults: per-attempt drop probability and
    /// per-transfer latency-spike probability/magnitude.
    pub fn with_link_faults(mut self, drop_prob: f64, spike_prob: f64, spike_us: f64) -> Self {
        let net = self.net.get_or_insert_with(|| NetFaultConfig {
            seed: self.seed,
            ..NetFaultConfig::default()
        });
        net.drop_prob = drop_prob;
        net.spike_prob = spike_prob;
        net.spike_us = spike_us;
        self
    }

    /// Add a NIC down-window: `(node, nic)` is unusable for transfers
    /// starting in `[from_us, until_us)`. `until_us` may be
    /// `f64::INFINITY` for a permanent outage; a window that starts at a
    /// negative or NaN instant, or ends before it starts, is rejected with
    /// a typed [`PlanError`].
    pub fn with_nic_outage(
        mut self,
        node: u16,
        nic: u8,
        from_us: f64,
        until_us: f64,
    ) -> Result<Self, PlanError> {
        if from_us.is_nan() || from_us < 0.0 {
            return Err(PlanError::NegativeDuration { what: "nic outage from_us", value: from_us });
        }
        if until_us.is_nan() {
            return Err(PlanError::NegativeDuration { what: "nic outage until_us", value: until_us });
        }
        if until_us < from_us {
            return Err(PlanError::EmptyWindow { from_us, until_us });
        }
        let net = self.net.get_or_insert_with(|| NetFaultConfig {
            seed: self.seed,
            ..NetFaultConfig::default()
        });
        net.nic_outages.push(NicOutage { node, nic, from_us, until_us });
        Ok(self)
    }

    /// Stall `rank`'s progression engine for `stall_us` once the virtual
    /// clock reaches `at_us` (survivable: deferred puts catch up).
    pub fn with_pe_stall(mut self, rank: usize, at_us: f64, stall_us: f64) -> Self {
        let f = self.pe_entry(rank);
        f.stall_at_us = at_us;
        f.stall_us = stall_us;
        self
    }

    /// Crash `rank`'s progression engine at `at_us` (unsurvivable for PE
    /// channels unless recovery is armed: without it, arm a watchdog to get
    /// `MpiError::ProgressionHalted`; with `WorldConfig::recover` set, the
    /// host lease-detects the dead engine and drains its queue).
    pub fn with_pe_crash(mut self, rank: usize, at_us: f64) -> Self {
        let f = self.pe_entry(rank);
        f.crash_at_us = Some(at_us);
        self
    }

    /// Delay every `every`-th device flag-write emission on `rank` by
    /// `delay_us` (survivable: the progression engine sees it late).
    pub fn with_delayed_flag_writes(mut self, rank: usize, every: u64, delay_us: f64) -> Self {
        let f = self.flag_entry(rank);
        f.delay_every = every;
        f.delay_us = delay_us;
        self
    }

    /// Lose every `every`-th device flag-write emission on `rank` entirely
    /// (unsurvivable: arm a watchdog to get a typed timeout).
    pub fn with_lost_flag_writes(mut self, rank: usize, every: u64) -> Self {
        let f = self.flag_entry(rank);
        f.lose_every = every;
        self
    }

    /// Delay every `every`-th device shmem-signal emission on `rank` by
    /// `delay_us` (survivable: the receiver's notifier fires late). Inert
    /// unless the rank's channels negotiated the symmetric-heap mechanism.
    pub fn with_delayed_shmem_signals(mut self, rank: usize, every: u64, delay_us: f64) -> Self {
        let f = self.shmem_entry(rank);
        f.delay_every = every;
        f.delay_us = delay_us;
        self
    }

    /// Lose every `every`-th device shmem-signal emission on `rank`
    /// entirely (recoverable when the escalation ladder is armed: the put
    /// is replayed host-side on the next epoch retry; otherwise arm a
    /// watchdog to get a typed timeout).
    pub fn with_lost_shmem_signals(mut self, rank: usize, every: u64) -> Self {
        let f = self.shmem_entry(rank);
        f.lose_every = every;
        self
    }

    /// Fail `rank`'s symmetric-heap registration at world construction:
    /// every shmem negotiation touching that rank demotes to the
    /// Progression Engine with a typed denial (survivable by design).
    pub fn with_shmem_heap_failure(mut self, rank: usize) -> Self {
        if !self.shmem_heap_fail.contains(&rank) {
            self.shmem_heap_fail.push(rank);
        }
        self
    }

    /// Check every probability, duration, and window in the plan.
    ///
    /// Hand-built and JSON-decoded plans go through the same gate the
    /// builders enforce: probabilities in `[0, 1]`, durations non-negative
    /// (`f64::INFINITY` is a legal `until_us`), outage windows ordered.
    pub fn validate(&self) -> Result<(), PlanError> {
        fn prob(what: &'static str, v: f64) -> Result<(), PlanError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(PlanError::RateOutOfRange { what, rate: v })
            }
        }
        fn nonneg(what: &'static str, v: f64) -> Result<(), PlanError> {
            if v >= 0.0 {
                Ok(())
            } else {
                Err(PlanError::NegativeDuration { what, value: v })
            }
        }
        if let Some(w) = self.watchdog_us {
            nonneg("watchdog_us", w)?;
        }
        if let Some(net) = &self.net {
            prob("drop_prob", net.drop_prob)?;
            prob("spike_prob", net.spike_prob)?;
            nonneg("retransmit_delay_us", net.retransmit_delay_us)?;
            nonneg("spike_us", net.spike_us)?;
            for o in &net.nic_outages {
                nonneg("nic outage from_us", o.from_us)?;
                if o.until_us.is_nan() {
                    return Err(PlanError::NegativeDuration {
                        what: "nic outage until_us",
                        value: o.until_us,
                    });
                }
                if o.until_us < o.from_us {
                    return Err(PlanError::EmptyWindow {
                        from_us: o.from_us,
                        until_us: o.until_us,
                    });
                }
            }
        }
        for (_, f) in &self.pe {
            nonneg("pe stall_at_us", f.stall_at_us)?;
            nonneg("pe stall_us", f.stall_us)?;
            if let Some(c) = f.crash_at_us {
                nonneg("pe crash_at_us", c)?;
            }
        }
        for (_, f) in &self.flags {
            nonneg("flag delay_us", f.delay_us)?;
        }
        for (_, f) in &self.shmem_signals {
            nonneg("shmem signal delay_us", f.delay_us)?;
        }
        Ok(())
    }

    /// Apply the plan onto a [`WorldConfig`]. [`FaultPlan::none`] leaves
    /// `cfg` bit-for-bit unchanged.
    pub fn apply(&self, cfg: &mut WorldConfig) {
        if let Some(t) = self.watchdog_us {
            cfg.wait_watchdog_us = Some(t);
        }
        if let Some(net) = &self.net {
            cfg.net_faults = Some(net.clone());
        }
        cfg.pe_faults.extend(self.pe.iter().cloned());
        cfg.gpu_flag_faults.extend(self.flags.iter().cloned());
        cfg.shmem_faults.extend(self.shmem_signals.iter().cloned());
        cfg.shmem_heap_fail.extend(self.shmem_heap_fail.iter().copied());
    }

    /// Encode the plan as a [`JsonValue`] tree.
    ///
    /// `u64` fields (seeds, every-N counters) are hex strings — JSON
    /// numbers are `f64` and cannot carry a full 64-bit seed exactly —
    /// and non-finite durations encode as the string `"inf"`.
    pub fn to_json(&self) -> JsonValue {
        let mut root: Vec<(String, JsonValue)> =
            vec![("seed".into(), hex_to_json(self.seed))];
        if let Some(w) = self.watchdog_us {
            root.push(("watchdog_us".into(), dur_to_json(w)));
        }
        if let Some(net) = &self.net {
            let outages: Vec<JsonValue> = net
                .nic_outages
                .iter()
                .map(|o| {
                    JsonValue::Object(vec![
                        ("node".into(), JsonValue::Number(o.node as f64)),
                        ("nic".into(), JsonValue::Number(o.nic as f64)),
                        ("from_us".into(), dur_to_json(o.from_us)),
                        ("until_us".into(), dur_to_json(o.until_us)),
                    ])
                })
                .collect();
            root.push((
                "net".into(),
                JsonValue::Object(vec![
                    ("seed".into(), hex_to_json(net.seed)),
                    ("drop_prob".into(), JsonValue::Number(net.drop_prob)),
                    ("retransmit_delay_us".into(), JsonValue::Number(net.retransmit_delay_us)),
                    ("spike_prob".into(), JsonValue::Number(net.spike_prob)),
                    ("spike_us".into(), JsonValue::Number(net.spike_us)),
                    ("nic_outages".into(), JsonValue::Array(outages)),
                ]),
            ));
        }
        if !self.pe.is_empty() {
            let pe: Vec<JsonValue> = self
                .pe
                .iter()
                .map(|(rank, f)| {
                    let mut m = vec![
                        ("rank".into(), JsonValue::Number(*rank as f64)),
                        ("stall_at_us".into(), dur_to_json(f.stall_at_us)),
                        ("stall_us".into(), dur_to_json(f.stall_us)),
                    ];
                    if let Some(c) = f.crash_at_us {
                        m.push(("crash_at_us".into(), dur_to_json(c)));
                    }
                    JsonValue::Object(m)
                })
                .collect();
            root.push(("pe".into(), JsonValue::Array(pe)));
        }
        if !self.flags.is_empty() {
            let flags: Vec<JsonValue> = self
                .flags
                .iter()
                .map(|(rank, f)| {
                    JsonValue::Object(vec![
                        ("rank".into(), JsonValue::Number(*rank as f64)),
                        ("delay_every".into(), hex_to_json(f.delay_every)),
                        ("delay_us".into(), dur_to_json(f.delay_us)),
                        ("lose_every".into(), hex_to_json(f.lose_every)),
                    ])
                })
                .collect();
            root.push(("flags".into(), JsonValue::Array(flags)));
        }
        if !self.shmem_signals.is_empty() {
            let sig: Vec<JsonValue> = self
                .shmem_signals
                .iter()
                .map(|(rank, f)| {
                    JsonValue::Object(vec![
                        ("rank".into(), JsonValue::Number(*rank as f64)),
                        ("delay_every".into(), hex_to_json(f.delay_every)),
                        ("delay_us".into(), dur_to_json(f.delay_us)),
                        ("lose_every".into(), hex_to_json(f.lose_every)),
                    ])
                })
                .collect();
            root.push(("shmem_signals".into(), JsonValue::Array(sig)));
        }
        if !self.shmem_heap_fail.is_empty() {
            let ranks: Vec<JsonValue> = self
                .shmem_heap_fail
                .iter()
                .map(|r| JsonValue::Number(*r as f64))
                .collect();
            root.push(("shmem_heap_fail".into(), JsonValue::Array(ranks)));
        }
        JsonValue::Object(root)
    }

    /// Render the plan as a JSON string (see [`FaultPlan::to_json`]).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Decode a plan from a [`JsonValue`] tree and [`FaultPlan::validate`] it.
    pub fn from_json(v: &JsonValue) -> Result<Self, PlanError> {
        let mut plan = FaultPlan {
            seed: hex_from_json(req(v, "seed")?, "seed")?,
            ..FaultPlan::default()
        };
        if let Some(w) = v.get("watchdog_us") {
            plan.watchdog_us = Some(dur_from_json(w, "watchdog_us")?);
        }
        if let Some(net) = v.get("net") {
            let mut cfg = NetFaultConfig {
                seed: hex_from_json(req(net, "seed")?, "net.seed")?,
                drop_prob: num_from_json(req(net, "drop_prob")?, "net.drop_prob")?,
                retransmit_delay_us: num_from_json(
                    req(net, "retransmit_delay_us")?,
                    "net.retransmit_delay_us",
                )?,
                spike_prob: num_from_json(req(net, "spike_prob")?, "net.spike_prob")?,
                spike_us: num_from_json(req(net, "spike_us")?, "net.spike_us")?,
                nic_outages: Vec::new(),
            };
            let outages = req(net, "nic_outages")?
                .as_array()
                .ok_or_else(|| PlanError::Malformed("net.nic_outages is not an array".into()))?;
            for o in outages {
                cfg.nic_outages.push(NicOutage {
                    node: num_from_json(req(o, "node")?, "outage.node")? as u16,
                    nic: num_from_json(req(o, "nic")?, "outage.nic")? as u8,
                    from_us: dur_from_json(req(o, "from_us")?, "outage.from_us")?,
                    until_us: dur_from_json(req(o, "until_us")?, "outage.until_us")?,
                });
            }
            plan.net = Some(cfg);
        }
        if let Some(pe) = v.get("pe") {
            let entries = pe
                .as_array()
                .ok_or_else(|| PlanError::Malformed("pe is not an array".into()))?;
            for e in entries {
                let mut f = PeFaultConfig {
                    stall_at_us: dur_from_json(req(e, "stall_at_us")?, "pe.stall_at_us")?,
                    stall_us: dur_from_json(req(e, "stall_us")?, "pe.stall_us")?,
                    crash_at_us: None,
                };
                if let Some(c) = e.get("crash_at_us") {
                    f.crash_at_us = Some(dur_from_json(c, "pe.crash_at_us")?);
                }
                let rank = num_from_json(req(e, "rank")?, "pe.rank")? as usize;
                plan.pe.push((rank, f));
            }
        }
        if let Some(flags) = v.get("flags") {
            let entries = flags
                .as_array()
                .ok_or_else(|| PlanError::Malformed("flags is not an array".into()))?;
            for e in entries {
                let f = EmissionFaultConfig {
                    delay_every: hex_from_json(req(e, "delay_every")?, "flags.delay_every")?,
                    delay_us: dur_from_json(req(e, "delay_us")?, "flags.delay_us")?,
                    lose_every: hex_from_json(req(e, "lose_every")?, "flags.lose_every")?,
                };
                let rank = num_from_json(req(e, "rank")?, "flags.rank")? as usize;
                plan.flags.push((rank, f));
            }
        }
        if let Some(sig) = v.get("shmem_signals") {
            let entries = sig
                .as_array()
                .ok_or_else(|| PlanError::Malformed("shmem_signals is not an array".into()))?;
            for e in entries {
                let f = EmissionFaultConfig {
                    delay_every: hex_from_json(req(e, "delay_every")?, "shmem_signals.delay_every")?,
                    delay_us: dur_from_json(req(e, "delay_us")?, "shmem_signals.delay_us")?,
                    lose_every: hex_from_json(req(e, "lose_every")?, "shmem_signals.lose_every")?,
                };
                let rank = num_from_json(req(e, "rank")?, "shmem_signals.rank")? as usize;
                plan.shmem_signals.push((rank, f));
            }
        }
        if let Some(ranks) = v.get("shmem_heap_fail") {
            let entries = ranks
                .as_array()
                .ok_or_else(|| PlanError::Malformed("shmem_heap_fail is not an array".into()))?;
            for r in entries {
                plan.shmem_heap_fail
                    .push(num_from_json(r, "shmem_heap_fail rank")? as usize);
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Parse a plan from a JSON string and [`FaultPlan::validate`] it.
    pub fn from_json_str(s: &str) -> Result<Self, PlanError> {
        let v = json::parse(s)
            .map_err(|e| PlanError::Malformed(e.to_string()))?;
        FaultPlan::from_json(&v)
    }

    fn pe_entry(&mut self, rank: usize) -> &mut PeFaultConfig {
        if let Some(i) = self.pe.iter().position(|(r, _)| *r == rank) {
            &mut self.pe[i].1
        } else {
            self.pe.push((rank, PeFaultConfig::default()));
            &mut self.pe.last_mut().expect("just pushed").1
        }
    }

    fn flag_entry(&mut self, rank: usize) -> &mut EmissionFaultConfig {
        if let Some(i) = self.flags.iter().position(|(r, _)| *r == rank) {
            &mut self.flags[i].1
        } else {
            self.flags.push((rank, EmissionFaultConfig::default()));
            &mut self.flags.last_mut().expect("just pushed").1
        }
    }

    fn shmem_entry(&mut self, rank: usize) -> &mut EmissionFaultConfig {
        if let Some(i) = self.shmem_signals.iter().position(|(r, _)| *r == rank) {
            &mut self.shmem_signals[i].1
        } else {
            self.shmem_signals.push((rank, EmissionFaultConfig::default()));
            &mut self.shmem_signals.last_mut().expect("just pushed").1
        }
    }
}

fn req<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, PlanError> {
    v.get(key)
        .ok_or_else(|| PlanError::Malformed(format!("missing field `{key}`")))
}

fn hex_to_json(v: u64) -> JsonValue {
    JsonValue::String(format!("{v:x}"))
}

fn hex_from_json(v: &JsonValue, what: &str) -> Result<u64, PlanError> {
    v.as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| PlanError::Malformed(format!("{what}: expected hex string")))
}

fn num_from_json(v: &JsonValue, what: &str) -> Result<f64, PlanError> {
    v.as_f64()
        .ok_or_else(|| PlanError::Malformed(format!("{what}: expected number")))
}

fn dur_to_json(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Number(v)
    } else {
        JsonValue::String("inf".into())
    }
}

fn dur_from_json(v: &JsonValue, what: &str) -> Result<f64, PlanError> {
    if let Some(n) = v.as_f64() {
        return Ok(n);
    }
    if v.as_str() == Some("inf") {
        return Ok(f64::INFINITY);
    }
    Err(PlanError::Malformed(format!("{what}: expected number or \"inf\"")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_on_apply() {
        let mut cfg = WorldConfig::gh200(2);
        FaultPlan::none().apply(&mut cfg);
        assert!(cfg.wait_watchdog_us.is_none());
        assert!(cfg.net_faults.is_none());
        assert!(cfg.pe_faults.is_empty());
        assert!(cfg.gpu_flag_faults.is_empty());
        assert!(cfg.shmem_faults.is_empty());
        assert!(cfg.shmem_heap_fail.is_empty());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn chaos_is_seed_deterministic() {
        let a = FaultPlan::chaos(42, 0.5).expect("rate in range");
        let b = FaultPlan::chaos(42, 0.5).expect("rate in range");
        assert_eq!(a, b);
        let c = FaultPlan::chaos(43, 0.5).expect("rate in range");
        assert_ne!(a, c, "different seed => different plan");
        assert!(!a.is_none());
    }

    #[test]
    fn chaos_scales_with_rate() {
        let quiet = FaultPlan::chaos(7, 0.0).expect("rate in range");
        let loud = FaultPlan::chaos(7, 1.0).expect("rate in range");
        let (q, l) = (quiet.net.expect("net"), loud.net.expect("net"));
        assert_eq!(q.drop_prob, 0.0);
        assert!(l.drop_prob > 0.0);
        assert!(q.nic_outages.is_empty(), "low rate: no outage");
        assert_eq!(l.nic_outages.len(), 1, "high rate: one down-window");
    }

    #[test]
    fn chaos_rejects_out_of_range_rate() {
        assert!(matches!(
            FaultPlan::chaos(1, -0.1),
            Err(PlanError::RateOutOfRange { .. })
        ));
        assert!(matches!(
            FaultPlan::chaos(1, 1.5),
            Err(PlanError::RateOutOfRange { .. })
        ));
        assert!(matches!(
            FaultPlan::chaos(1, f64::NAN),
            Err(PlanError::RateOutOfRange { .. })
        ));
    }

    #[test]
    fn nic_outage_rejects_bad_windows() {
        assert!(matches!(
            FaultPlan::none().with_nic_outage(0, 0, -5.0, 10.0),
            Err(PlanError::NegativeDuration { .. })
        ));
        assert!(matches!(
            FaultPlan::none().with_nic_outage(0, 0, 10.0, 5.0),
            Err(PlanError::EmptyWindow { .. })
        ));
        assert!(matches!(
            FaultPlan::none().with_nic_outage(0, 0, 0.0, f64::NAN),
            Err(PlanError::NegativeDuration { .. })
        ));
        // A permanent outage is legal.
        let p = FaultPlan::none()
            .with_nic_outage(0, 0, 0.0, f64::INFINITY)
            .expect("infinite window is valid");
        p.validate().expect("plan validates");
    }

    #[test]
    fn validate_catches_hand_built_badness() {
        let mut plan = FaultPlan::none().with_link_faults(1.5, 0.0, 10.0);
        assert!(matches!(plan.validate(), Err(PlanError::RateOutOfRange { .. })));
        plan = FaultPlan::none().with_pe_stall(0, -1.0, 10.0);
        assert!(matches!(plan.validate(), Err(PlanError::NegativeDuration { .. })));
        plan = FaultPlan::chaos(9, 0.6).expect("rate in range");
        plan.validate().expect("chaos plans validate");
    }

    #[test]
    fn builders_accumulate_per_rank() {
        let plan = FaultPlan::none()
            .with_pe_stall(1, 100.0, 50.0)
            .with_pe_crash(1, 400.0)
            .with_lost_flag_writes(2, 3)
            .with_delayed_flag_writes(2, 5, 30.0)
            .with_nic_outage(0, 1, 10.0, 20.0)
            .expect("valid window")
            .with_watchdog(1e6);
        assert_eq!(plan.pe.len(), 1, "stall and crash merge onto rank 1");
        assert_eq!(plan.pe[0].1.crash_at_us, Some(400.0));
        assert_eq!(plan.pe[0].1.stall_us, 50.0);
        assert_eq!(plan.flags.len(), 1);
        assert_eq!(plan.flags[0].1.lose_every, 3);
        assert_eq!(plan.flags[0].1.delay_every, 5);
        let mut cfg = WorldConfig::gh200(1);
        plan.apply(&mut cfg);
        assert_eq!(cfg.wait_watchdog_us, Some(1e6));
        assert_eq!(cfg.pe_faults.len(), 1);
        assert_eq!(cfg.net_faults.expect("net").nic_outages.len(), 1);
    }

    #[test]
    fn json_round_trip_preserves_plan() {
        let plan = FaultPlan::chaos(0xDEAD_BEEF_CAFE_F00D, 0.7)
            .expect("rate in range")
            .with_pe_stall(1, 100.0, 50.0)
            .with_pe_crash(2, 400.0)
            .with_delayed_flag_writes(3, 5, 30.0)
            .with_lost_flag_writes(4, 7)
            .with_delayed_shmem_signals(5, 2, 45.0)
            .with_lost_shmem_signals(6, 9)
            .with_shmem_heap_failure(7)
            .with_nic_outage(1, 2, 25.0, f64::INFINITY)
            .expect("valid window");
        let text = plan.to_json_string();
        let back = FaultPlan::from_json_str(&text).expect("round-trip decodes");
        assert_eq!(plan, back, "JSON round-trip is lossless");
        // u64 seeds survive exactly even above 2^53.
        assert_eq!(back.seed, 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn shmem_builders_accumulate_and_apply() {
        let plan = FaultPlan::none()
            .with_delayed_shmem_signals(1, 3, 25.0)
            .with_lost_shmem_signals(1, 4)
            .with_shmem_heap_failure(2)
            .with_shmem_heap_failure(2); // idempotent
        assert_eq!(plan.shmem_signals.len(), 1, "delay and loss merge onto rank 1");
        assert_eq!(plan.shmem_signals[0].1.delay_every, 3);
        assert_eq!(plan.shmem_signals[0].1.lose_every, 4);
        assert_eq!(plan.shmem_heap_fail, vec![2]);
        assert!(!plan.is_none());
        plan.validate().expect("shmem plan validates");
        let mut cfg = WorldConfig::gh200(1);
        plan.apply(&mut cfg);
        assert_eq!(cfg.shmem_faults.len(), 1);
        assert_eq!(cfg.shmem_heap_fail, vec![2]);
        // A negative shmem delay is caught like every other duration.
        let bad = FaultPlan::none().with_delayed_shmem_signals(0, 1, -4.0);
        assert!(matches!(bad.validate(), Err(PlanError::NegativeDuration { .. })));
    }

    #[test]
    fn from_json_rejects_invalid_plans() {
        assert!(matches!(
            FaultPlan::from_json_str("{"),
            Err(PlanError::Malformed(_))
        ));
        assert!(matches!(
            FaultPlan::from_json_str("{\"watchdog_us\": 1.0}"),
            Err(PlanError::Malformed(_)),
        ));
        // Decodes structurally but fails validation: drop_prob > 1.
        let bad = "{\"seed\": \"0\", \"net\": {\"seed\": \"0\", \"drop_prob\": 2.0, \
                   \"retransmit_delay_us\": 5.0, \"spike_prob\": 0.0, \"spike_us\": 0.0, \
                   \"nic_outages\": []}}";
        assert!(matches!(
            FaultPlan::from_json_str(bad),
            Err(PlanError::RateOutOfRange { .. })
        ));
    }
}
