//! Coverage-guided chaos search: mutate [`FaultPlan`]s toward unexplored
//! fault-class × layer combinations instead of walking a fixed seed×rate
//! grid.
//!
//! The classic campaign ([`crate::campaign`]) sweeps `chaos(seed, rate)`
//! points — every cell injects the same three network classes at different
//! intensities, so its *coverage* (which fault classes, at which layers, in
//! which combinations) saturates after the first cell. This module treats
//! coverage as the search objective:
//!
//! 1. enumerate the coverage targets — every single [`FaultClass`] and
//!    every unordered pair of distinct classes;
//! 2. each round, synthesize one candidate plan per still-uncovered target
//!    (parameters drawn from a per-round seeded RNG, generation strictly
//!    serial so the campaign is worker-count invariant);
//! 3. run the batch on the `parcomm-sweep` pool, twice per cell, and check
//!    the recovery contract: recoverable classes must survive with
//!    numerics bit-identical to the fault-free baseline and replay
//!    deterministically; unrecoverable classes must fail with a typed
//!    error, never a hang;
//! 4. any contract violation is bisected with `parcomm-testkit`'s greedy
//!    shrinker to a minimal failing [`FaultPlan`], reported as JSON so the
//!    cell replays from the artifact.
//!
//! At equal cell budget the guided campaign covers strictly more distinct
//! coverage points than the grid (asserted in `tests/recovery.rs`).

use std::collections::BTreeSet;

use parcomm_core::CopyMechanism;
use parcomm_mpi::RecoverConfig;
use parcomm_net::ClusterSpec;
use parcomm_sim::SimRng;
use parcomm_sweep::SweepSpec;
use parcomm_testkit::prop::{shrink_failure, Shrink, TestResult};

use crate::{chaos, CampaignConfig, FaultPlan};

/// The injectable fault classes the search steers over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Transient per-attempt wire drop (retransmitted).
    LinkDrop,
    /// Per-transfer congestion latency spike.
    LatencySpike,
    /// One NIC dark for a window (re-stripe / retry around it).
    NicOutage,
    /// Every NIC on one node dark for a window (epoch replay territory).
    MultiNicOutage,
    /// Progression-engine stall window.
    PeStall,
    /// Progression-engine crash (lease detection + host drain).
    PeCrash,
    /// Delayed device flag-write emissions.
    FlagDelay,
    /// Lost device flag-write emissions (unrecoverable by design).
    FlagLoss,
    /// Delayed device shmem-signal emissions (symmetric-heap channels).
    ShmemSignalDelay,
    /// Lost device shmem-signal emissions (epoch replay re-issues the put
    /// host-side when the escalation ladder is armed).
    ShmemSignalLoss,
}

/// The stack layer a fault class is injected at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultLayer {
    /// `netsim` fabric / routing.
    Net,
    /// `mpisim` progression engine.
    Mpi,
    /// `gpusim` stream emission.
    Gpu,
}

/// The topology-shape axis of the coverage point space: the same fault
/// class meeting a *ragged* or *oversubscribed* world exercises rank↔GPU
/// table walks, per-node rail cycling, fold/unfold collective phases, and
/// `SameGpu` routes that no uniform world reaches. The classic uniform
/// space keeps its unprefixed point keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TopologyShape {
    /// The classic `nodes × 4 GPU × 4 NIC` GH200 testbed.
    Uniform,
    /// Per-node GPU/NIC counts vary (alternating 4/2 GPUs, 2/1 NICs),
    /// one rank per GPU.
    Ragged,
    /// The ragged shape at 2:1 ranks per GPU: co-resident ranks drive the
    /// `SameGpu` route regime and the hierarchical fold/unfold phases.
    Oversubscribed,
}

impl TopologyShape {
    /// Every shape, in canonical search order.
    pub const ALL: [TopologyShape; 3] =
        [TopologyShape::Uniform, TopologyShape::Ragged, TopologyShape::Oversubscribed];

    /// Stable short name used in coverage-point qualifiers.
    pub fn key(&self) -> &'static str {
        match self {
            TopologyShape::Uniform => "uniform",
            TopologyShape::Ragged => "ragged",
            TopologyShape::Oversubscribed => "oversub",
        }
    }

    /// The cluster spec this shape denotes on a `nodes`-node world.
    pub fn cluster(&self, nodes: u16) -> ClusterSpec {
        match self {
            TopologyShape::Uniform => ClusterSpec::gh200(nodes),
            TopologyShape::Ragged | TopologyShape::Oversubscribed => {
                let gpus: Vec<u8> =
                    (0..nodes).map(|v| if v % 2 == 0 { 4 } else { 2 }).collect();
                let nics: Vec<u8> =
                    (0..nodes).map(|v| if v % 2 == 0 { 2 } else { 1 }).collect();
                let over = if *self == TopologyShape::Oversubscribed { 2 } else { 1 };
                ClusterSpec::gh200_ragged(&gpus, &nics, over)
            }
        }
    }
}

impl FaultClass {
    /// Every class, in canonical search order.
    pub const ALL: [FaultClass; 10] = [
        FaultClass::LinkDrop,
        FaultClass::LatencySpike,
        FaultClass::NicOutage,
        FaultClass::MultiNicOutage,
        FaultClass::PeStall,
        FaultClass::PeCrash,
        FaultClass::FlagDelay,
        FaultClass::FlagLoss,
        FaultClass::ShmemSignalDelay,
        FaultClass::ShmemSignalLoss,
    ];

    /// The layer this class is injected at.
    pub fn layer(&self) -> FaultLayer {
        match self {
            FaultClass::LinkDrop
            | FaultClass::LatencySpike
            | FaultClass::NicOutage
            | FaultClass::MultiNicOutage => FaultLayer::Net,
            FaultClass::PeStall | FaultClass::PeCrash => FaultLayer::Mpi,
            FaultClass::FlagDelay
            | FaultClass::FlagLoss
            | FaultClass::ShmemSignalDelay
            | FaultClass::ShmemSignalLoss => FaultLayer::Gpu,
        }
    }

    /// True if this class only bites on channels that negotiated the
    /// symmetric-heap mechanism — and, dually, if the *flag-write* classes
    /// are the ones that need the classic device→PE notification path.
    /// The search only targets classes its copy mechanism can exercise.
    pub fn requires_mechanism(&self) -> Option<CopyMechanism> {
        match self {
            FaultClass::ShmemSignalDelay | FaultClass::ShmemSignalLoss => {
                Some(CopyMechanism::Shmem)
            }
            _ => None,
        }
    }

    /// Stable short name used in coverage-point keys and report lines.
    pub fn key(&self) -> &'static str {
        match self {
            FaultClass::LinkDrop => "link_drop",
            FaultClass::LatencySpike => "latency_spike",
            FaultClass::NicOutage => "nic_outage",
            FaultClass::MultiNicOutage => "multi_nic_outage",
            FaultClass::PeStall => "pe_stall",
            FaultClass::PeCrash => "pe_crash",
            FaultClass::FlagDelay => "flag_delay",
            FaultClass::FlagLoss => "flag_loss",
            FaultClass::ShmemSignalDelay => "shmem_delay",
            FaultClass::ShmemSignalLoss => "shmem_loss",
        }
    }

    fn layer_key(&self) -> &'static str {
        match self.layer() {
            FaultLayer::Net => "net",
            FaultLayer::Mpi => "mpi",
            FaultLayer::Gpu => "gpu",
        }
    }
}

/// Classify which fault classes a plan actually injects.
pub fn classes_of(plan: &FaultPlan) -> Vec<FaultClass> {
    let mut out = Vec::new();
    if let Some(net) = &plan.net {
        if net.drop_prob > 0.0 {
            out.push(FaultClass::LinkDrop);
        }
        if net.spike_prob > 0.0 {
            out.push(FaultClass::LatencySpike);
        }
        match net.nic_outages.len() {
            0 => {}
            1 => out.push(FaultClass::NicOutage),
            _ => out.push(FaultClass::MultiNicOutage),
        }
    }
    if plan.pe.iter().any(|(_, f)| f.stall_us > 0.0) {
        out.push(FaultClass::PeStall);
    }
    if plan.pe.iter().any(|(_, f)| f.crash_at_us.is_some()) {
        out.push(FaultClass::PeCrash);
    }
    if plan.flags.iter().any(|(_, f)| f.delay_every > 0) {
        out.push(FaultClass::FlagDelay);
    }
    if plan.flags.iter().any(|(_, f)| f.lose_every > 0) {
        out.push(FaultClass::FlagLoss);
    }
    if plan.shmem_signals.iter().any(|(_, f)| f.delay_every > 0) {
        out.push(FaultClass::ShmemSignalDelay);
    }
    if plan.shmem_signals.iter().any(|(_, f)| f.lose_every > 0) {
        out.push(FaultClass::ShmemSignalLoss);
    }
    out.sort();
    out.dedup();
    out
}

/// The coverage points a plan explores: one `class@layer` point per active
/// class plus one `a+b` point per unordered pair of distinct active
/// classes (the cross-class interaction axis the fixed grid never varies).
pub fn coverage_points(plan: &FaultPlan) -> BTreeSet<String> {
    let classes = classes_of(plan);
    let mut points = BTreeSet::new();
    for c in &classes {
        points.insert(format!("{}@{}", c.key(), c.layer_key()));
    }
    for (i, a) in classes.iter().enumerate() {
        for b in &classes[i + 1..] {
            points.insert(format!("{}+{}", a.key(), b.key()));
        }
    }
    points
}

/// Qualify a coverage point with the copy-mechanism axis: the same fault
/// class exercised under a different mechanism drives a different data
/// path, so `pe:link_drop@net` and `shmem:link_drop@net` are distinct
/// points of the search space.
pub fn mechanism_point(mechanism: CopyMechanism, point: &str) -> String {
    format!("{}:{point}", mechanism.short_name())
}

/// Qualify a coverage point with the channel-count axis: the same fault
/// class meeting *multiplexed* load (the mux-admitted MoE cell at 64 or
/// 1024 channels) exercises the admission batcher, the indexed channel
/// table, and per-tenant drain paths the single-collective cell never
/// touches, so `c64:pe:pe_stall@mpi` is a distinct point from
/// `pe:pe_stall@mpi`. The classic `channels == 1` space keeps its
/// unprefixed keys.
pub fn channel_point(channels: usize, point: &str) -> String {
    if channels > 1 {
        format!("c{channels}:{point}")
    } else {
        point.to_string()
    }
}

/// Qualify a coverage point with the topology-shape axis: `pe:link_drop@net`
/// covered on a ragged world is `ragged:pe:link_drop@net`, a distinct point
/// from the uniform run of the same class. The classic uniform space keeps
/// its unprefixed keys.
pub fn shape_point(shape: TopologyShape, point: &str) -> String {
    match shape {
        TopologyShape::Uniform => point.to_string(),
        _ => format!("{}:{point}", shape.key()),
    }
}

/// The coverage points the classic fixed grid reaches, computed honestly
/// from the grid's own plans (every `chaos(seed, rate)` cell injects the
/// same class mix, so this saturates at a handful of points — all on the
/// grid's single mechanism).
pub fn grid_coverage_points(cfg: &CampaignConfig) -> BTreeSet<String> {
    let mut points = BTreeSet::new();
    for fault_seed in cfg.base_fault_seed..cfg.base_fault_seed + cfg.seeds {
        for &rate in &cfg.rates {
            let plan = FaultPlan::chaos(fault_seed, rate).expect("grid rates are in [0, 1]");
            points.extend(
                coverage_points(&plan).iter().map(|p| mechanism_point(cfg.mechanism, p)),
            );
        }
    }
    points
}

/// What the recovery contract expects of a plan's run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Recoverable mix: the run must survive, numerics must match the
    /// fault-free baseline bit for bit, and replay must be deterministic.
    Recover,
    /// Unrecoverable mix: the run must fail with a typed error (never a
    /// hang) and still replay deterministically.
    TypedFailure,
}

/// [`expectation_at`] on the classic single-channel axis.
pub fn expectation(
    plan: &FaultPlan,
    recover_enabled: bool,
    mechanism: CopyMechanism,
) -> Expectation {
    expectation_at(plan, recover_enabled, mechanism, 1)
}

/// The contract classification for a plan: on the classic axis
/// (`channels == 1`) lost flag writes are the one class recovery cannot
/// paper over — the collective engine hands all partitions to the host in
/// one aggregated flag write, and a lost aggregate leaves nothing to
/// replay. On the multiplexed axis the MoE cell runs over plain
/// partitioned channels, where the escalation ladder *can* re-drive the
/// epoch host-side, so a lost flag write recovers whenever the ladder is
/// armed. Everything else must recover when the escalation ladder is
/// armed; with recovery disabled, a PE crash is also expected to surface
/// as a typed error. Classes the campaign's copy `mechanism` cannot
/// exercise (shmem-signal faults under the classic protocols) are inert
/// and never flip the expectation.
pub fn expectation_at(
    plan: &FaultPlan,
    recover_enabled: bool,
    mechanism: CopyMechanism,
    channels: usize,
) -> Expectation {
    let classes: Vec<FaultClass> = classes_of(plan)
        .into_iter()
        .filter(|c| c.requires_mechanism().map(|m| m == mechanism).unwrap_or(true))
        .collect();
    if classes.contains(&FaultClass::FlagLoss) && (channels == 1 || !recover_enabled) {
        return Expectation::TypedFailure;
    }
    if classes.contains(&FaultClass::PeCrash) && !recover_enabled {
        return Expectation::TypedFailure;
    }
    // A lost shmem signal leaves the data written but the completion
    // never delivered; only host-side epoch replay re-issues the put.
    if classes.contains(&FaultClass::ShmemSignalLoss) && !recover_enabled {
        return Expectation::TypedFailure;
    }
    // An all-rails outage outlives the put-retry budget and leaves no rail
    // to re-stripe onto; only epoch replay can carry it.
    if classes.contains(&FaultClass::MultiNicOutage) && !recover_enabled {
        return Expectation::TypedFailure;
    }
    Expectation::Recover
}

/// One executed search cell.
#[derive(Clone, Debug)]
pub struct CoverageOutcome {
    /// Search round the cell was generated in.
    pub round: u32,
    /// Coverage target the plan was synthesized for (a point key).
    pub target: String,
    /// The synthesized plan.
    pub plan: FaultPlan,
    /// What the contract expected.
    pub expectation: Expectation,
    /// Trace digest of the first run.
    pub digest: u64,
    /// The fault actually perturbed the trace (digest differs from the
    /// fault-free baseline) — distinguishes genuinely exercised cells
    /// from plans whose windows missed the traffic.
    pub perturbed: bool,
    /// Every rank completed without a typed error.
    pub survived: bool,
    /// The second run reproduced the digest bit for bit.
    pub replayed: bool,
    /// Rank-0 numerics matched the fault-free baseline.
    pub numeric_ok: bool,
}

impl CoverageOutcome {
    /// True when the cell upheld the contract for its expectation class.
    pub fn ok(&self) -> bool {
        match self.expectation {
            Expectation::Recover => self.survived && self.replayed && self.numeric_ok,
            Expectation::TypedFailure => !self.survived && self.replayed,
        }
    }

    /// One deterministic report line (diffable across worker counts).
    pub fn render(&self) -> String {
        let classes: Vec<&str> = classes_of(&self.plan).iter().map(|c| c.key()).collect();
        format!(
            "round={} target={} classes=[{}] expect={:?} digest={:#018x} perturbed={} survived={} replayed={} numeric_ok={} ok={}",
            self.round,
            self.target,
            classes.join("+"),
            self.expectation,
            self.digest,
            self.perturbed,
            self.survived,
            self.replayed,
            self.numeric_ok,
            self.ok()
        )
    }
}

/// A contract violation bisected to a minimal reproducer.
#[derive(Clone, Debug)]
pub struct MinimizedFailure {
    /// Coverage target of the original failing cell.
    pub target: String,
    /// Cluster shape the failing cell's world was built on, so the
    /// artifact replays on the same (possibly ragged / oversubscribed)
    /// topology — rendered into the artifact in `--topology` grammar.
    pub cluster: ClusterSpec,
    /// The minimal plan that still violates the contract.
    pub minimal_plan: FaultPlan,
    /// Why the minimal plan fails.
    pub reason: String,
    /// Accepted shrink steps from the original plan to the minimum.
    pub shrink_steps: u32,
}

impl MinimizedFailure {
    /// The reproducer as a JSON document (plan + context), ready to write
    /// under `results/` and replay with `--fault-plan` on the carried
    /// `--topology` shape.
    pub fn to_json_string(&self) -> String {
        use parcomm_obs::json::JsonValue;
        JsonValue::Object(vec![
            ("target".to_string(), JsonValue::String(self.target.clone())),
            ("topology".to_string(), JsonValue::String(self.cluster.render())),
            ("reason".to_string(), JsonValue::String(self.reason.clone())),
            ("shrink_steps".to_string(), JsonValue::Number(self.shrink_steps as f64)),
            ("plan".to_string(), self.minimal_plan.to_json()),
        ])
        .render()
    }
}

/// Configuration for one coverage-guided campaign.
#[derive(Clone, Debug)]
pub struct CoverageCampaignConfig {
    /// Simulation seed shared by every cell.
    pub sim_seed: u64,
    /// Search seed: parameterizes every synthesized plan.
    pub search_seed: u64,
    /// Total cell budget (each cell = two runs of the workload).
    pub budget: u32,
    /// GH200 nodes in the world.
    pub nodes: u16,
    /// Arm the recovery escalation ladder (`WorldConfig::recover`).
    pub recover: bool,
    /// Copy mechanism the campaign's worlds negotiate — the mechanism axis
    /// of the point space. Under `Shmem` the search additionally targets
    /// the shmem-signal fault classes; under the classic protocols those
    /// classes are inert and never scheduled.
    pub mechanism: CopyMechanism,
    /// Per-rank mux channel budget — the multiplexed-load axis
    /// (`--channels`, canonical values {1, 64, 1024}). At the default `1`
    /// cells observe the classic workloads; above 1 every cell observes
    /// the mux-admitted MoE dispatch/combine instead, and covered points
    /// gain a `c<channels>:` qualifier.
    pub channels: usize,
    /// Topology-shape axis: the cluster shape every cell's world is built
    /// on. Non-uniform shapes qualify covered points with `ragged:` /
    /// `oversub:` and the bisected failure artifacts carry the spec. The
    /// shape axis is defined on the classic cells — the multiplexed MoE
    /// cell (`channels > 1`) always runs the uniform testbed.
    pub shape: TopologyShape,
    /// Cap on shrink steps when bisecting a contract violation.
    pub max_shrink_steps: u32,
}

impl Default for CoverageCampaignConfig {
    fn default() -> Self {
        CoverageCampaignConfig {
            sim_seed: 0xFA017,
            search_seed: 0xC0FE_A6ED,
            budget: 36,
            nodes: 2,
            recover: true,
            mechanism: CopyMechanism::ProgressionEngine,
            channels: 1,
            shape: TopologyShape::Uniform,
            max_shrink_steps: 24,
        }
    }
}

/// The campaign's result: every cell outcome, the covered point set, and
/// any bisected contract violations.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// Executed cells in deterministic (round, target) order.
    pub outcomes: Vec<CoverageOutcome>,
    /// Distinct coverage points explored.
    pub covered: BTreeSet<String>,
    /// Contract violations, bisected to minimal plans.
    pub failures: Vec<MinimizedFailure>,
}

impl CoverageReport {
    /// One deterministic multi-line report: cell lines then a summary.
    /// Byte-identical at any worker count (asserted in CI by diffing the
    /// serial and 4-worker renders).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "cells={} covered_points={} failures={}\n",
            self.outcomes.len(),
            self.covered.len(),
            self.failures.len()
        ));
        // The fully-qualified point set (shape/channel/mechanism prefixes
        // included), one sorted line — what the CI shape-axis grep reads.
        let covered: Vec<&str> = self.covered.iter().map(|s| s.as_str()).collect();
        out.push_str(&format!("covered=[{}]\n", covered.join(" ")));
        for f in &self.failures {
            out.push_str(&format!(
                "FAIL target={} topology={} steps={} reason={} plan={}\n",
                f.target,
                f.cluster.render(),
                f.shrink_steps,
                f.reason,
                f.minimal_plan.to_json_string()
            ));
        }
        out
    }
}

/// True when the plan injects device shmem-signal faults. Such cells
/// observe the device-initiated p2p workload instead of the collective:
/// the collective engine hands partitions to the host in one aggregated
/// flag write and the symmetric puts are then issued host-side, so its
/// trace never meets the shmem-signal schedule.
fn wants_device_p2p(plan: &FaultPlan) -> bool {
    classes_of(plan).iter().any(|c| c.requires_mechanism() == Some(CopyMechanism::Shmem))
}

/// Run the workload one cell observes. At `channels == 1` that is the
/// canonical two-node partitioned allreduce over `mechanism`, or the
/// device-initiated p2p epoch for plans carrying shmem-signal faults; at
/// `channels > 1` every plan observes the mux-admitted MoE
/// dispatch/combine cell instead (device-driven under `KernelCopy` and
/// `Shmem`, so flag-write and shmem-signal schedules land on multiplexed
/// emissions directly). The recovery ladder is armed iff `recover`.
fn run_cell(
    sim_seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    recover: bool,
    mechanism: CopyMechanism,
    channels: usize,
    shape: TopologyShape,
) -> chaos::ChaosRun {
    let recover_cfg = if recover { Some(RecoverConfig::default()) } else { None };
    if channels > 1 {
        chaos::run_moe_cell(sim_seed, plan, nodes, channels, 1, mechanism, recover_cfg)
    } else if wants_device_p2p(plan) {
        chaos::run_device_p2p_cell_on(
            sim_seed,
            plan,
            shape.cluster(nodes),
            mechanism,
            recover_cfg,
        )
    } else {
        chaos::run_allreduce_cell_on(
            sim_seed,
            plan,
            shape.cluster(nodes),
            1,
            mechanism,
            recover_cfg,
        )
    }
}

/// Evaluate the contract for `plan`; `Pass` when upheld. Two clean
/// baselines because the cell workload is plan-dependent (shrinking can
/// move a plan across the workload boundary mid-bisection).
#[allow(clippy::too_many_arguments)]
fn contract(
    sim_seed: u64,
    plan: &FaultPlan,
    nodes: u16,
    recover: bool,
    mechanism: CopyMechanism,
    channels: usize,
    shape: TopologyShape,
    clean_primary: &[f64],
    clean_p2p: &[f64],
) -> TestResult {
    let a = run_cell(sim_seed, plan, nodes, recover, mechanism, channels, shape);
    let b = run_cell(sim_seed, plan, nodes, recover, mechanism, channels, shape);
    let expect = expectation_at(plan, recover, mechanism, channels);
    if a.digest != b.digest {
        return TestResult::Fail(format!(
            "replay diverged: {:#x} vs {:#x}",
            a.digest, b.digest
        ));
    }
    let clean_numeric = if channels == 1 && wants_device_p2p(plan) {
        clean_p2p
    } else {
        clean_primary
    };
    match expect {
        Expectation::Recover => {
            if !a.survived() {
                return TestResult::Fail(format!("unrecovered: {:?}", a.errors));
            }
            if a.numeric != clean_numeric {
                return TestResult::Fail("numerics diverged from fault-free baseline".into());
            }
            TestResult::Pass
        }
        Expectation::TypedFailure => {
            if a.survived() {
                return TestResult::Fail(
                    "expected a typed failure but the run survived".into(),
                );
            }
            TestResult::Pass
        }
    }
}

/// Synthesize a plan that injects exactly `classes`, with parameters drawn
/// from `rng`. All windows are finite and placed so recoverable classes
/// stay inside the escalation ladder's reach.
///
/// Timed windows are placed against the cell workload's virtual-time
/// horizon. The classic cells (`channels == 1`) finish in about a
/// millisecond, so their windows keep the hand-tuned literals below. The
/// multiplexed MoE cell spends its first milliseconds admitting channels
/// and only drains its epochs near the end — roughly 75 µs of virtual
/// time per admitted channel (~4.8 ms at 64 channels, measured) — so at
/// `channels > 1` the stall/crash/outage windows stretch across that
/// horizon instead of expiring before the multiplexed traffic exists.
///
/// Rank and NIC draws are bounded by the campaign's *shaped* topology —
/// on a ragged world a synthesized NIC outage must name a NIC the chosen
/// node actually has, and rank-targeted faults draw over the real
/// (possibly oversubscribed) rank count. On the uniform shape every bound
/// equals the historical literal, so the draw sequence — and with it the
/// whole campaign — is unchanged.
fn synthesize(
    classes: &[FaultClass],
    rng: &mut SimRng,
    nodes: u16,
    channels: usize,
    shape: TopologyShape,
) -> FaultPlan {
    let topo = shape.cluster(nodes).topology().expect("campaign shapes validate");
    let ranks = topo.num_ranks();
    let horizon = 75.0 * channels as f64;
    // 200 ms: past the full replay budget (4 × 20 ms detection windows)
    // but cheap for wedged unrecoverable cells. Multiplexed cells scale it
    // with the horizon so a long stall still drains before the watchdog.
    let watchdog = if channels > 1 { 200_000.0_f64.max(8.0 * horizon) } else { 200_000.0 };
    let mut plan = FaultPlan::none().with_watchdog(watchdog);
    let drop = if classes.contains(&FaultClass::LinkDrop) {
        0.05 + 0.30 * rng.uniform()
    } else {
        0.0
    };
    let (spike_p, spike_us) = if classes.contains(&FaultClass::LatencySpike) {
        (0.10 + 0.40 * rng.uniform(), 10.0 + 40.0 * rng.uniform())
    } else {
        (0.0, 10.0)
    };
    if drop > 0.0 || spike_p > 0.0 {
        plan = plan.with_link_faults(drop, spike_p, spike_us);
    }
    if classes.contains(&FaultClass::NicOutage) {
        // Cross-node data puts fly between ~400 and ~800 µs fault-free;
        // open the window inside that band so the outage meets traffic.
        // Multiplexed cells put their cross-node puts near the end of the
        // horizon, so the window opens later and spans most of the run.
        let node = (rng.uniform_range(0, nodes as u64)) as u16;
        let nic = rng.uniform_range(0, topo.nics_on(node) as u64) as u8;
        let (from, until) = if channels > 1 {
            let from = (0.05 + 0.35 * rng.uniform()) * horizon;
            (from, from + (0.4 + 0.6 * rng.uniform()) * horizon)
        } else {
            let from = 300.0 + 300.0 * rng.uniform();
            (from, from + 1_000.0 + 1_000.0 * rng.uniform())
        };
        plan = plan.with_nic_outage(node, nic, from, until).expect("finite ordered window");
    }
    if classes.contains(&FaultClass::MultiNicOutage) {
        // Every rail on one node dark across the data-put window. The
        // window opens after the channel handshake settles (~400 µs on
        // two nodes) — an outage overlapping the handshake is a
        // documented survivability limit, not a recovery target — and
        // ends inside the stall-detection horizon so epoch replay lands.
        // All rails dark must still *classify* as a multi-NIC outage, so
        // the draw is over nodes with at least two rails (on the uniform
        // shape that is every node, keeping the historical draw sequence).
        let multi: Vec<u16> = (0..nodes).filter(|&v| topo.nics_on(v) >= 2).collect();
        let node = multi[rng.uniform_range(0, multi.len() as u64) as usize];
        let from = 600.0 + 200.0 * rng.uniform();
        let until = 8_000.0 + 4_000.0 * rng.uniform();
        for nic in 0..topo.nics_on(node) {
            plan = plan.with_nic_outage(node, nic, from, until).expect("finite ordered window");
        }
    }
    if classes.contains(&FaultClass::PeStall) {
        // While the engine is actively draining preadys: the first
        // ~200 µs on the classic cells. The MoE cell's preadys all land
        // near the end of the horizon, so the stall opens early but lasts
        // long enough to still be in force when the drain happens.
        let rank = rng.uniform_range(0, ranks as u64) as usize;
        let (at, stall) = if channels > 1 {
            (
                (0.05 + 0.25 * rng.uniform()) * horizon,
                (0.9 + 0.4 * rng.uniform()) * horizon,
            )
        } else {
            (20.0 + 130.0 * rng.uniform(), 200.0 + 1_800.0 * rng.uniform())
        };
        plan = plan.with_pe_stall(rank, at, stall);
    }
    if classes.contains(&FaultClass::PeCrash) {
        // Mid-epoch: after channel setup begins, before the engine has
        // drained the device preadys (the epoch completes in ~500–800 µs
        // fault-free, so a crash past ~200 µs can land after the PE's
        // work is already done and exercise nothing). A crash is
        // permanent, so on multiplexed cells any point in the first half
        // of the horizon lands before the late pready drain.
        let rank = rng.uniform_range(0, ranks as u64) as usize;
        let at = if channels > 1 {
            (0.02 + 0.4 * rng.uniform()) * horizon
        } else {
            20.0 + 140.0 * rng.uniform()
        };
        plan = plan.with_pe_crash(rank, at);
    }
    if classes.contains(&FaultClass::FlagDelay) {
        // The collective batches all partitions of a `pready_device_all`
        // into one aggregated flag-write emission, so only stride 1 is
        // guaranteed to hit it.
        let rank = rng.uniform_range(0, ranks as u64) as usize;
        let delay = 20.0 + 60.0 * rng.uniform();
        plan = plan.with_delayed_flag_writes(rank, 1, delay);
    }
    if classes.contains(&FaultClass::FlagLoss) {
        // Stride 1 for the same aggregated-emission reason as FlagDelay.
        let rank = rng.uniform_range(0, ranks as u64) as usize;
        plan = plan.with_lost_flag_writes(rank, 1);
    }
    if classes.contains(&FaultClass::ShmemSignalDelay) {
        // Stride 1 on rank 1: shmem-signal cells observe the device p2p
        // workload, where rank 1 is the sender and only the sender's
        // stream emits signals — a fault elsewhere would be inert.
        let delay = 20.0 + 60.0 * rng.uniform();
        plan = plan.with_delayed_shmem_signals(1, 1, delay);
    }
    if classes.contains(&FaultClass::ShmemSignalLoss) {
        plan = plan.with_lost_shmem_signals(1, 1);
    }
    plan
}

/// The classes `(mechanism, channels)` can actually exercise: shmem-signal
/// faults need symmetric-heap channels; the flag-write classes need the
/// classic device→PE notification path that shmem channels bypass (on a
/// mixed multi-node shmem world whether a flag fault bites depends on
/// which rank it lands on, so the search skips them rather than schedule
/// cells whose contract is rank-placement roulette — the MoE cell is
/// GPU-initiated under every mechanism, so the same two rules carry over
/// unchanged to the multiplexed axis). One rule is multiplexed-axis only:
/// the all-rails outage is skipped at `channels > 1` because its
/// synthesized window cannot avoid the much longer multi-channel
/// admission handshake, which is the documented survivability limit
/// rather than a recovery target (the `channels == 1` axis covers the
/// class).
fn mechanism_classes(mechanism: CopyMechanism, channels: usize) -> Vec<FaultClass> {
    FaultClass::ALL
        .into_iter()
        .filter(|c| match c.requires_mechanism() {
            Some(m) => m == mechanism,
            None => match c {
                FaultClass::FlagDelay | FaultClass::FlagLoss => {
                    mechanism != CopyMechanism::Shmem
                }
                FaultClass::MultiNicOutage => channels == 1,
                _ => true,
            },
        })
        .collect()
}

/// Canonical target list: every single class, then every unordered pair,
/// keyed by the coverage point the target is meant to reach — restricted
/// to the classes the campaign's copy mechanism and channel budget can
/// exercise.
fn targets(mechanism: CopyMechanism, channels: usize) -> Vec<(String, Vec<FaultClass>)> {
    let classes = mechanism_classes(mechanism, channels);
    let mut out = Vec::new();
    for &c in &classes {
        out.push((format!("{}@{}", c.key(), c.layer_key()), vec![c]));
    }
    for (i, a) in classes.iter().enumerate() {
        for b in &classes[i + 1..] {
            // One NIC down and a whole node dark are mutually exclusive
            // classifications of the same outage list — the pair is
            // unreachable by construction.
            if (*a, *b) == (FaultClass::NicOutage, FaultClass::MultiNicOutage) {
                continue;
            }
            out.push((format!("{}+{}", a.key(), b.key()), vec![*a, *b]));
        }
    }
    out
}

/// Run the coverage-guided campaign on `threads` workers.
///
/// Candidate plans are generated serially round by round (each round takes
/// the first still-uncovered targets, up to eight per round) and only the
/// cell *execution* fans out, so the report renders byte-identically at
/// any worker count.
pub fn run_coverage_campaign(cfg: &CoverageCampaignConfig, threads: usize) -> CoverageReport {
    let clean = run_cell(
        cfg.sim_seed,
        &FaultPlan::none(),
        cfg.nodes,
        cfg.recover,
        cfg.mechanism,
        cfg.channels,
        cfg.shape,
    );
    let clean_numeric = clean.numeric.clone();
    // Fault-free baseline of the *other* cell workload (plans carrying
    // shmem-signal faults observe the device p2p epoch, see `run_cell`).
    let clean_p2p = chaos::run_device_p2p_cell_on(
        cfg.sim_seed,
        &FaultPlan::none(),
        cfg.shape.cluster(cfg.nodes),
        cfg.mechanism,
        if cfg.recover { Some(RecoverConfig::default()) } else { None },
    );
    let clean_p2p_numeric = clean_p2p.numeric.clone();
    let all_targets = targets(cfg.mechanism, cfg.channels);
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut outcomes: Vec<CoverageOutcome> = Vec::new();
    let mut failures: Vec<MinimizedFailure> = Vec::new();
    let mut cells = 0u32;
    let mut round = 0u32;
    while cells < cfg.budget {
        // Serial candidate generation: first uncovered targets this round;
        // once everything is covered, keep probing covered pairs with
        // fresh parameters until the budget runs out.
        let pending: Vec<&(String, Vec<FaultClass>)> = {
            let fresh: Vec<_> =
                all_targets.iter().filter(|(key, _)| !covered.contains(key)).collect();
            if fresh.is_empty() {
                all_targets.iter().skip((round as usize * 7) % all_targets.len()).collect()
            } else {
                fresh
            }
        };
        let batch: Vec<(String, FaultPlan)> = pending
            .iter()
            .take(8.min((cfg.budget - cells) as usize))
            .map(|(key, classes)| {
                let mut rng = SimRng::seeded(
                    cfg.search_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ fnv(key.as_bytes()),
                );
                (key.clone(), synthesize(classes, &mut rng, cfg.nodes, cfg.channels, cfg.shape))
            })
            .collect();
        if batch.is_empty() {
            break;
        }
        let mut spec: SweepSpec<(u64, bool, bool, bool, bool)> = SweepSpec::new();
        for (key, plan) in &batch {
            let plan = plan.clone();
            let (sim_seed, nodes, recover, mechanism, channels, shape) =
                (cfg.sim_seed, cfg.nodes, cfg.recover, cfg.mechanism, cfg.channels, cfg.shape);
            let (clean_digest, clean_numeric) = if channels == 1 && wants_device_p2p(&plan) {
                (clean_p2p.digest, clean_p2p_numeric.clone())
            } else {
                (clean.digest, clean_numeric.clone())
            };
            spec.cell(format!("r{round}:{key}"), move || {
                let a = run_cell(sim_seed, &plan, nodes, recover, mechanism, channels, shape);
                let b = run_cell(sim_seed, &plan, nodes, recover, mechanism, channels, shape);
                (
                    a.digest,
                    a.digest != clean_digest,
                    a.survived(),
                    a.digest == b.digest,
                    a.numeric == clean_numeric,
                )
            });
        }
        let results = spec.run(threads).into_values().expect("coverage cells observe, never panic");
        for ((key, plan), (digest, perturbed, survived, replayed, numeric_ok)) in
            batch.into_iter().zip(results)
        {
            cells += 1;
            let outcome = CoverageOutcome {
                round,
                target: key.clone(),
                expectation: expectation_at(&plan, cfg.recover, cfg.mechanism, cfg.channels),
                plan: plan.clone(),
                digest,
                perturbed,
                survived,
                replayed,
                numeric_ok,
            };
            covered.extend(coverage_points(&plan).iter().map(|p| {
                shape_point(
                    cfg.shape,
                    &channel_point(cfg.channels, &mechanism_point(cfg.mechanism, p)),
                )
            }));
            if !outcome.ok() {
                let reason = format!(
                    "target {key}: survived={survived} replayed={replayed} numeric_ok={numeric_ok} \
                     (expected {:?})",
                    outcome.expectation
                );
                let (sim_seed, nodes, recover, mechanism, channels, shape) =
                    (cfg.sim_seed, cfg.nodes, cfg.recover, cfg.mechanism, cfg.channels, cfg.shape);
                let clean_numeric = clean_numeric.clone();
                let clean_p2p_numeric = clean_p2p_numeric.clone();
                let eval = move |p: &FaultPlan| -> TestResult {
                    contract(
                        sim_seed,
                        p,
                        nodes,
                        recover,
                        mechanism,
                        channels,
                        shape,
                        &clean_numeric,
                        &clean_p2p_numeric,
                    )
                };
                let (minimal_plan, reason, shrink_steps) =
                    shrink_failure(plan, reason, cfg.max_shrink_steps, &eval);
                failures.push(MinimizedFailure {
                    target: key,
                    cluster: cfg.shape.cluster(cfg.nodes),
                    minimal_plan,
                    reason,
                    shrink_steps,
                });
            }
            outcomes.push(outcome);
        }
        round += 1;
    }
    CoverageReport { outcomes, covered, failures }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Shrinking a [`FaultPlan`] removes or weakens one fault at a time (the
/// watchdog is kept so shrunk candidates stay bounded): drop the whole net
/// config, zero one probability, drop outages or per-rank entries. Every
/// candidate has strictly fewer active fault knobs, so the greedy descent
/// terminates.
impl Shrink for FaultPlan {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if let Some(net) = &self.net {
            let mut p = self.clone();
            p.net = None;
            out.push(p);
            if net.drop_prob > 0.0 {
                let mut p = self.clone();
                p.net.as_mut().expect("checked").drop_prob = 0.0;
                out.push(p);
            }
            if net.spike_prob > 0.0 {
                let mut p = self.clone();
                p.net.as_mut().expect("checked").spike_prob = 0.0;
                out.push(p);
            }
            if !net.nic_outages.is_empty() {
                let mut p = self.clone();
                p.net.as_mut().expect("checked").nic_outages.clear();
                out.push(p);
                if net.nic_outages.len() > 1 {
                    for i in 0..net.nic_outages.len() {
                        let mut p = self.clone();
                        p.net.as_mut().expect("checked").nic_outages.remove(i);
                        out.push(p);
                    }
                }
            }
        }
        if !self.pe.is_empty() {
            let mut p = self.clone();
            p.pe.clear();
            out.push(p);
            for i in 0..self.pe.len() {
                if self.pe[i].1.stall_us > 0.0 {
                    let mut p = self.clone();
                    p.pe[i].1.stall_us = 0.0;
                    out.push(p);
                }
                if self.pe[i].1.crash_at_us.is_some() {
                    let mut p = self.clone();
                    p.pe[i].1.crash_at_us = None;
                    out.push(p);
                }
            }
        }
        if !self.flags.is_empty() {
            let mut p = self.clone();
            p.flags.clear();
            out.push(p);
            for i in 0..self.flags.len() {
                if self.flags[i].1.delay_every > 0 {
                    let mut p = self.clone();
                    p.flags[i].1.delay_every = 0;
                    out.push(p);
                }
                if self.flags[i].1.lose_every > 0 {
                    let mut p = self.clone();
                    p.flags[i].1.lose_every = 0;
                    out.push(p);
                }
            }
        }
        if !self.shmem_signals.is_empty() {
            let mut p = self.clone();
            p.shmem_signals.clear();
            out.push(p);
            for i in 0..self.shmem_signals.len() {
                if self.shmem_signals[i].1.delay_every > 0 {
                    let mut p = self.clone();
                    p.shmem_signals[i].1.delay_every = 0;
                    out.push(p);
                }
                if self.shmem_signals[i].1.lose_every > 0 {
                    let mut p = self.clone();
                    p.shmem_signals[i].1.lose_every = 0;
                    out.push(p);
                }
            }
        }
        if !self.shmem_heap_fail.is_empty() {
            let mut p = self.clone();
            p.shmem_heap_fail.clear();
            out.push(p);
        }
        // Prune structurally-empty fault configs left by the zeroing steps.
        out.retain(|p| p != self);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_points_classify_plans() {
        let plan = FaultPlan::chaos(0x5EED, 0.4).expect("rate in range");
        let classes = classes_of(&plan);
        assert!(classes.contains(&FaultClass::LinkDrop));
        assert!(classes.contains(&FaultClass::LatencySpike));
        assert!(classes.contains(&FaultClass::NicOutage));
        let points = coverage_points(&plan);
        assert!(points.contains("link_drop@net"));
        assert!(points.contains("link_drop+latency_spike"));
        // 3 singles + 3 pairs.
        assert_eq!(points.len(), 6);
    }

    #[test]
    fn grid_coverage_saturates_low() {
        // Every grid cell injects the same class mix: whole-grid coverage
        // is the same handful of points regardless of seeds × rates.
        let grid = grid_coverage_points(&CampaignConfig::ci(false));
        assert!(grid.len() <= 6, "grid covers {} points: {grid:?}", grid.len());
    }

    #[test]
    fn synthesis_hits_requested_classes() {
        let mut rng = SimRng::seeded(7);
        for c in FaultClass::ALL {
            let plan = synthesize(&[c], &mut rng, 2, 1, TopologyShape::Uniform);
            assert_eq!(classes_of(&plan), vec![c], "single-class synthesis for {c:?}");
            plan.validate().expect("synthesized plans validate");
        }
        let plan = synthesize(
            &[FaultClass::PeCrash, FaultClass::FlagDelay],
            &mut rng,
            2,
            1,
            TopologyShape::Uniform,
        );
        assert_eq!(classes_of(&plan), vec![FaultClass::PeCrash, FaultClass::FlagDelay]);
    }

    #[test]
    fn shaped_synthesis_respects_ragged_bounds() {
        // On the ragged/oversubscribed shapes every synthesized fault must
        // name a rank and NIC the shaped world actually has, and the
        // all-rails class must keep classifying as MultiNicOutage even
        // though odd nodes carry a single rail.
        for shape in [TopologyShape::Ragged, TopologyShape::Oversubscribed] {
            let topo = shape.cluster(2).topology().expect("shape validates");
            for seed in 0..32u64 {
                let mut rng = SimRng::seeded(seed);
                let plan = synthesize(&[FaultClass::NicOutage], &mut rng, 2, 1, shape);
                let outage = &plan.net.as_ref().expect("net faults").nic_outages[0];
                assert!(outage.nic < topo.nics_on(outage.node), "NIC exists on shaped node");
                let mut rng = SimRng::seeded(seed);
                let plan = synthesize(&[FaultClass::MultiNicOutage], &mut rng, 2, 1, shape);
                assert_eq!(classes_of(&plan), vec![FaultClass::MultiNicOutage]);
                let mut rng = SimRng::seeded(seed);
                let plan = synthesize(&[FaultClass::PeCrash], &mut rng, 2, 1, shape);
                let (rank, _) = plan.pe.first().expect("crash entry");
                assert!(*rank < topo.num_ranks(), "rank exists on shaped world");
            }
        }
    }

    #[test]
    fn shape_axis_qualifies_points_and_specs() {
        assert_eq!(shape_point(TopologyShape::Uniform, "pe:link_drop@net"), "pe:link_drop@net");
        assert_eq!(
            shape_point(TopologyShape::Ragged, "pe:link_drop@net"),
            "ragged:pe:link_drop@net"
        );
        assert_eq!(
            shape_point(TopologyShape::Oversubscribed, "pe:flag_loss@gpu"),
            "oversub:pe:flag_loss@gpu"
        );
        // The shaped specs validate and genuinely differ from uniform:
        // ragged alternates 4/2 GPUs with 2/1 NICs, oversubscribed doubles
        // the rank count on the same shape.
        let ragged = TopologyShape::Ragged.cluster(4);
        assert_eq!(ragged.node_gpus, vec![4, 2, 4, 2]);
        assert_eq!(ragged.node_nics, vec![2, 1, 2, 1]);
        let rt = ragged.topology().expect("ragged validates");
        let ot = TopologyShape::Oversubscribed.cluster(4).topology().expect("oversub validates");
        assert_eq!(ot.num_ranks(), 2 * rt.num_ranks());
        assert_eq!(TopologyShape::Uniform.cluster(2).render(), "2x4x4");
        assert_eq!(TopologyShape::Oversubscribed.cluster(2).render(), "4,2:2,1@2");
    }

    #[test]
    fn multiplexed_synthesis_scales_windows_to_the_moe_horizon() {
        // The 64-channel MoE cell runs ~4.8 ms of virtual time with the
        // pready drain at the end; a classic 20–150 µs stall window would
        // expire before the multiplexed traffic exists.
        let horizon = 75.0 * 64.0;
        for seed in 0..16u64 {
            let mut rng = SimRng::seeded(seed);
            let plan = synthesize(&[FaultClass::PeStall], &mut rng, 2, 64, TopologyShape::Uniform);
            let (_, f) = plan.pe.first().expect("stall entry");
            assert!(f.stall_at_us + f.stall_us >= 0.9 * horizon, "stall must reach the drain");
            let mut rng = SimRng::seeded(seed);
            let plan = synthesize(&[FaultClass::NicOutage], &mut rng, 2, 64, TopologyShape::Uniform);
            let outage = &plan.net.as_ref().expect("net faults").nic_outages[0];
            assert!(outage.until_us - outage.from_us >= 0.4 * horizon, "outage spans the run");
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_and_valid() {
        let plan = synthesize(
            &[FaultClass::LinkDrop, FaultClass::PeCrash, FaultClass::FlagLoss],
            &mut SimRng::seeded(3),
            2,
            1,
            TopologyShape::Uniform,
        );
        let candidates = plan.shrink();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert_ne!(c, &plan, "candidates must differ from the input");
            assert!(
                coverage_points(c).len() < coverage_points(&plan).len()
                    || classes_of(c).len() < classes_of(&plan).len()
                    || c.net.is_none() && plan.net.is_some(),
                "candidate did not remove anything: {c:?}"
            );
            c.validate().expect("shrunk plans stay valid");
        }
        // A fully-shrunk plan bottoms out at watchdog-only.
        let empty = FaultPlan::none().with_watchdog(1e6);
        assert!(empty.shrink().is_empty(), "nothing left to shrink");
    }

    #[test]
    fn expectation_classifies_recoverability() {
        const PE: CopyMechanism = CopyMechanism::ProgressionEngine;
        let loss = FaultPlan::none().with_lost_flag_writes(1, 3).with_watchdog(1e6);
        assert_eq!(expectation(&loss, true, PE), Expectation::TypedFailure);
        // On the multiplexed axis the MoE cell's plain partitioned
        // channels replay host-side, so an armed ladder recovers a lost
        // flag write; without the ladder it is still a typed failure.
        assert_eq!(expectation_at(&loss, true, PE, 64), Expectation::Recover);
        assert_eq!(expectation_at(&loss, false, PE, 64), Expectation::TypedFailure);
        let crash = FaultPlan::none().with_pe_crash(1, 300.0).with_watchdog(1e6);
        assert_eq!(expectation(&crash, true, PE), Expectation::Recover);
        assert_eq!(expectation(&crash, false, PE), Expectation::TypedFailure);
        let drops = FaultPlan::none().with_link_faults(0.2, 0.0, 10.0).with_watchdog(1e6);
        assert_eq!(expectation(&drops, true, PE), Expectation::Recover);
        let mut rails = FaultPlan::none().with_watchdog(1e6);
        for nic in 0..4u8 {
            rails = rails.with_nic_outage(0, nic, 600.0, 9_000.0).expect("window");
        }
        assert_eq!(expectation(&rails, true, PE), Expectation::Recover);
        assert_eq!(expectation(&rails, false, PE), Expectation::TypedFailure);
    }

    #[test]
    fn mechanism_axis_shapes_targets_and_expectations() {
        // Shmem-signal faults need symmetric-heap channels: under the
        // classic protocols the classes are inert, so a loss plan is
        // expected to (trivially) recover; under Shmem a loss without the
        // escalation ladder is a typed failure.
        let loss = FaultPlan::none().with_lost_shmem_signals(0, 1).with_watchdog(1e6);
        assert_eq!(classes_of(&loss), vec![FaultClass::ShmemSignalLoss]);
        assert_eq!(
            expectation(&loss, false, CopyMechanism::ProgressionEngine),
            Expectation::Recover,
            "inert under the classic protocol"
        );
        assert_eq!(
            expectation(&loss, false, CopyMechanism::Shmem),
            Expectation::TypedFailure
        );
        assert_eq!(expectation(&loss, true, CopyMechanism::Shmem), Expectation::Recover);

        // The PE target list carries the flag-write classes and no shmem
        // classes; the shmem list swaps them.
        let pe_targets = targets(CopyMechanism::ProgressionEngine, 1);
        assert!(pe_targets.iter().any(|(k, _)| k == "flag_loss@gpu"));
        assert!(!pe_targets.iter().any(|(k, _)| k.contains("shmem")));
        let shmem_targets = targets(CopyMechanism::Shmem, 1);
        assert!(shmem_targets.iter().any(|(k, _)| k == "shmem_loss@gpu"));
        assert!(shmem_targets.iter().any(|(k, _)| k == "shmem_delay+shmem_loss"));
        assert!(!shmem_targets.iter().any(|(k, _)| k.contains("flag_")));

        // Point keys are mechanism-qualified, so the axis genuinely grows
        // the point space instead of folding onto the classic points.
        assert_eq!(mechanism_point(CopyMechanism::Shmem, "link_drop@net"), "shmem:link_drop@net");
        let mut grid = CampaignConfig::ci(true);
        grid.mechanism = CopyMechanism::Shmem;
        assert!(grid_coverage_points(&grid).iter().all(|p| p.starts_with("shmem:")));
    }

    #[test]
    fn channel_axis_shapes_targets_and_points() {
        // Multiplexed load is a distinct point space; the classic space
        // keeps its unprefixed keys.
        assert_eq!(channel_point(64, "pe:pe_stall@mpi"), "c64:pe:pe_stall@mpi");
        assert_eq!(channel_point(1, "pe:pe_stall@mpi"), "pe:pe_stall@mpi");

        // The MoE cell is GPU-initiated under every mechanism, so the
        // flag classes survive onto the multiplexed axis (except under
        // shmem — same roulette rule as the classic axis). The all-rails
        // outage is classic-axis-only (admission-handshake overlap).
        let pe = targets(CopyMechanism::ProgressionEngine, 64);
        assert!(pe.iter().any(|(k, _)| k == "flag_loss@gpu"));
        assert!(!pe.iter().any(|(k, _)| k.contains("multi_nic_outage")));
        assert!(pe.iter().any(|(k, _)| k == "pe_stall@mpi"));
        assert!(pe.iter().any(|(k, _)| k == "nic_outage@net"));
        let shmem = targets(CopyMechanism::Shmem, 64);
        assert!(shmem.iter().any(|(k, _)| k == "shmem_loss@gpu"));
        assert!(!shmem.iter().any(|(k, _)| k.contains("flag_")));
    }
}
