//! The fault-injection contract, one fault class at a time:
//!
//! 1. **Replayability** — the same `(sim seed, FaultPlan)` produces the
//!    identical trace digest, every time.
//! 2. **Survivable faults degrade latency, never integrity** — transient
//!    drops, spikes, re-striped NIC outages, PE stalls, and delayed flag
//!    writes leave numerics bit-identical to the fault-free run (while the
//!    digest proves the faults really happened).
//! 3. **Unsurvivable faults are typed errors, not hangs** — a crashed
//!    progression engine or a lost flag write surfaces a diagnosable
//!    [`MpiError`] through the armed watchdog, and the simulation still
//!    terminates.
//! 4. **Zero-cost when disabled** — `FaultPlan::none()` reproduces the
//!    frozen digests captured before the fault machinery existed.

use parcomm_fault::{campaign, chaos, FaultPlan, MpiError};
use parcomm_testkit::sweep;

// Digests of the canonical workloads captured on the build *before* the
// fault-injection subsystem was merged. `FaultPlan::none()` must reproduce
// them bit for bit: arming nothing costs nothing.
const FROZEN_ALLREDUCE: &[(u64, u64)] = &[
    (0xA11CE, 0x1398043747556f40),
    (0xB0B, 0x65b7d5c9b7bbbcb8),
    (0xC0C0A, 0xc1a31d5d266c8b20),
    (0xFA017, 0x3e5fdd5171c85ddd),
];
const FROZEN_JACOBI: &[(u64, u64)] = &[(0xA11CE, 0x175f6c88c6d7b78d), (0xFA017, 0xc1d5b040c16acd0d)];

#[test]
fn fault_plan_none_reproduces_frozen_baselines() {
    for &(seed, want) in FROZEN_ALLREDUCE {
        let run = chaos::run_allreduce(seed, &FaultPlan::none(), 1);
        assert!(run.survived());
        assert_eq!(
            run.digest, want,
            "allreduce seed {seed:#x}: FaultPlan::none() perturbed the baseline digest"
        );
    }
    for &(seed, want) in FROZEN_JACOBI {
        let run = chaos::run_jacobi_chaos(seed, &FaultPlan::none(), 1);
        assert!(run.survived());
        assert_eq!(
            run.digest, want,
            "jacobi seed {seed:#x}: FaultPlan::none() perturbed the baseline digest"
        );
    }
}

#[test]
fn link_faults_are_deterministic_and_survivable() {
    let clean = chaos::run_allreduce(0xA11CE, &FaultPlan::none(), 1);
    let plan = FaultPlan::none()
        .with_link_faults(0.3, 0.3, 25.0)
        .with_watchdog(5e6);
    let a = chaos::run_allreduce(0xA11CE, &plan, 1);
    let b = chaos::run_allreduce(0xA11CE, &plan, 1);
    assert_eq!(a.digest, b.digest, "same (seed, plan) must replay identically");
    assert!(a.survived(), "drops/spikes are retransmitted: {:?}", a.errors);
    assert_eq!(a.numeric, clean.numeric, "latency faults must not corrupt the reduction");
    assert_ne!(a.digest, clean.digest, "the faults must actually have fired");
    assert!(
        a.end_time_us > clean.end_time_us,
        "retransmits and spikes cost virtual time ({} vs {})",
        a.end_time_us,
        clean.end_time_us
    );
}

/// Cross-node bulk psend: rank 4 (node 1) streams two ≥1 MiB partitions to
/// rank 0 (node 0), big enough to engage UCX-style multi-rail striping.
/// Rank 0 returns the received buffer's per-partition checksums.
fn striped_round(seed: u64, plan: &FaultPlan) -> chaos::ChaosRun {
    use parcomm_core::{precv_init, psend_init};
    const PARTS: usize = 2;
    const PART_F64: usize = 1 << 17; // 1 MiB per partition
    chaos::run_world(seed, plan, 2, |ctx, rank| {
        let buf = rank.gpu().alloc_global(PARTS * PART_F64 * 8);
        match rank.rank() {
            4 => {
                for u in 0..PARTS {
                    buf.write_f64_slice(u * PART_F64 * 8, &vec![(u + 1) as f64; PART_F64]);
                }
                let sreq = psend_init(ctx, rank, 0, 0x57, &buf, PARTS)?;
                sreq.start(ctx)?;
                sreq.pbuf_prepare(ctx)?;
                sreq.pready_range(ctx, 0..PARTS)?;
                sreq.wait(ctx)?;
                Ok(Vec::new())
            }
            0 => {
                let rreq = precv_init(ctx, rank, 4, 0x57, &buf, PARTS)?;
                rreq.start(ctx)?;
                rreq.pbuf_prepare(ctx)?;
                rreq.wait(ctx)?;
                Ok((0..PARTS)
                    .map(|u| buf.read_f64_slice(u * PART_F64 * 8, PART_F64).iter().sum())
                    .collect())
            }
            _ => Ok(Vec::new()),
        }
    })
}

#[test]
fn nic_outage_restripes_and_survives() {
    // Striped (≥1 MiB) cross-node traffic: one NIC per node goes dark for
    // the whole run, so the message re-stripes over the three surviving
    // rails — degraded bandwidth (visible in the trace and the end time),
    // same bytes delivered.
    let clean = striped_round(0xB0B, &FaultPlan::none());
    let plan = FaultPlan::none()
        .with_nic_outage(0, 0, 0.0, 1e6)
        .expect("valid window")
        .with_nic_outage(1, 2, 0.0, 1e6)
        .expect("valid window")
        .with_watchdog(5e6);
    let a = striped_round(0xB0B, &plan);
    let b = striped_round(0xB0B, &plan);
    assert_eq!(a.digest, b.digest);
    assert!(a.survived(), "single-NIC outages re-stripe: {:?}", a.errors);
    assert_eq!(a.numeric, clean.numeric);
    assert_ne!(a.digest, clean.digest, "degraded striping must change the trace");
    assert!(
        a.end_time_us > clean.end_time_us,
        "three rails move 2 MiB slower than four ({} vs {})",
        a.end_time_us,
        clean.end_time_us
    );
}

#[test]
fn pe_stall_is_absorbed() {
    // Window chosen to overlap rank 1's actual PE activity (the solver's
    // halo exchanges start after ~450 µs of setup/handshake traffic).
    let clean = chaos::run_jacobi_chaos(0xA11CE, &FaultPlan::none(), 1);
    let plan = FaultPlan::none().with_pe_stall(1, 500.0, 400.0).with_watchdog(5e6);
    let a = chaos::run_jacobi_chaos(0xA11CE, &plan, 1);
    let b = chaos::run_jacobi_chaos(0xA11CE, &plan, 1);
    assert_eq!(a.digest, b.digest);
    assert!(a.survived(), "a bounded PE stall only defers puts: {:?}", a.errors);
    assert_eq!(a.numeric, clean.numeric, "stall must not corrupt the solve");
    assert_ne!(a.digest, clean.digest, "the stall must be visible in the trace");
}

#[test]
fn pe_crash_surfaces_progression_halted() {
    let plan = FaultPlan::none().with_pe_crash(1, 40.0).with_watchdog(30_000.0);
    let a = chaos::run_jacobi_chaos(0xA11CE, &plan, 1);
    let b = chaos::run_jacobi_chaos(0xA11CE, &plan, 1);
    assert_eq!(a.digest, b.digest, "even failing runs replay identically");
    assert!(!a.survived(), "a crashed engine cannot complete PE channels");
    assert!(
        a.errors
            .iter()
            .any(|(r, e)| *r == 1 && matches!(e, MpiError::ProgressionHalted { rank: 1 })),
        "the crashed rank must diagnose its own dead engine, got {:?}",
        a.errors
    );
    // Neighbors starve on arrivals and watchdog out with context instead
    // of deadlocking the simulation.
    assert!(
        a.errors
            .iter()
            .any(|(r, e)| *r != 1 && matches!(e, MpiError::WaitTimeout { .. })),
        "peers of the crashed rank must time out typed, got {:?}",
        a.errors
    );
}

#[test]
fn delayed_flag_writes_are_absorbed() {
    // `every = 1`: the collective engine batches all partitions of a
    // `pready_device_all` into a single aggregated flag-write emission, so
    // only a stride of one is guaranteed to hit it.
    let clean = chaos::run_allreduce(0xC0C0A, &FaultPlan::none(), 1);
    let plan = FaultPlan::none().with_delayed_flag_writes(0, 1, 40.0).with_watchdog(5e6);
    let a = chaos::run_allreduce(0xC0C0A, &plan, 1);
    let b = chaos::run_allreduce(0xC0C0A, &plan, 1);
    assert_eq!(a.digest, b.digest);
    assert!(a.survived(), "late flags are just late: {:?}", a.errors);
    assert_eq!(a.numeric, clean.numeric);
    assert_ne!(a.digest, clean.digest);
}

#[test]
fn lost_flag_writes_surface_typed_timeout() {
    // Every device flag write on rank 0 vanishes: its partitions never
    // become ready, so Algorithm 2 stalls everywhere. The watchdog must
    // convert that into CollectiveTimeout (with the stuck partition/step)
    // on every rank — not a hang, not a panic.
    let plan = FaultPlan::none().with_lost_flag_writes(0, 1).with_watchdog(20_000.0);
    let a = chaos::run_allreduce(0xFA017, &plan, 1);
    let b = chaos::run_allreduce(0xFA017, &plan, 1);
    assert_eq!(a.digest, b.digest);
    assert!(!a.survived());
    assert!(
        a.errors
            .iter()
            .all(|(_, e)| matches!(e, MpiError::CollectiveTimeout { .. })),
        "every rank should report the stalled collective, got {:?}",
        a.errors
    );
    assert!(
        a.errors.iter().any(|(r, _)| *r == 0),
        "the faulty rank itself stalls too: {:?}",
        a.errors
    );
}

#[test]
fn chaos_mix_is_deterministic_and_seed_sensitive() {
    // The one-knob chaos entry point: across seeds, every (seed, rate)
    // replays bit-identically, different seeds diverge, and the survivable
    // mix keeps numerics intact.
    let clean = chaos::run_allreduce(7, &FaultPlan::none(), 1);
    let clean_numeric = clean.numeric.clone();
    let digests = sweep::assert_deterministic_and_seed_sensitive(&[1, 2, 3, 4], move |seed| {
        let run = chaos::run_allreduce(7, &FaultPlan::chaos(seed, 0.5).expect("rate in range"), 1);
        assert!(run.survived(), "chaos(rate=0.5) is survivable: {:?}", run.errors);
        assert_eq!(run.numeric, clean_numeric, "chaos must not corrupt numerics");
        run.digest
    });
    assert!(digests.iter().all(|d| *d != clean.digest));
}

/// The CI chaos sweep, now cheap enough to run by default: the eight-seed
/// × two-rate campaign grid (each cell replayed twice) fans out over the
/// `parcomm-sweep` work-stealing pool. `PARCOMM_CHAOS_SEED` shifts the
/// whole seed block to explore fresh schedules without editing the test;
/// `--threads N` / `PARCOMM_THREADS` bounds the workers.
#[test]
fn chaos_sweep_eight_seeds() {
    let cfg = campaign::CampaignConfig::ci(false);
    let outcomes = campaign::run_campaign(&cfg, parcomm_sweep::threads());
    assert_eq!(outcomes.len(), 32, "8 seeds x 2 rates x 2 stripe counts");
    for o in &outcomes {
        assert!(o.replayed, "seed {:#x} rate {}: replay diverged", o.fault_seed, o.rate);
        assert!(o.survived, "seed {:#x} rate {}: rank errors", o.fault_seed, o.rate);
        assert!(
            o.numeric_ok,
            "seed {:#x} rate {}: chaos corrupted the reduction",
            o.fault_seed, o.rate
        );
    }
}

/// The mechanism axis end to end, on both cell workloads the coverage
/// campaign schedules. Signal faults observe the device-initiated p2p
/// epoch — the collective issues its symmetric puts host-side, so its
/// trace never meets the shmem-signal schedule: a delayed signal is
/// absorbed, a lost one recovers through epoch replay when the
/// escalation ladder is armed. A heap registration failure demotes the
/// collective's channels to the Progression Engine — all without
/// touching the numerics, all replayable.
#[test]
fn shmem_fault_classes_uphold_the_chaos_contract() {
    use parcomm_core::CopyMechanism;
    use parcomm_mpi::RecoverConfig;

    let p2p = |plan: &FaultPlan, recover: Option<RecoverConfig>| {
        chaos::run_device_p2p_cell(0xFA017, plan, 1, CopyMechanism::Shmem, recover)
    };
    let clean = p2p(&FaultPlan::none(), None);
    assert!(clean.survived());
    assert_eq!(clean.numeric, vec![1.0, 4.0, 7.0, 10.0], "rank 0 keeps the received payload");
    assert_ne!(
        clean.digest,
        chaos::run_device_p2p_cell(
            0xFA017,
            &FaultPlan::none(),
            1,
            CopyMechanism::ProgressionEngine,
            None,
        )
        .digest,
        "the shmem cell must actually negotiate a different mechanism"
    );

    // Delayed signals on the sender: survivable without recovery.
    let delayed = FaultPlan::none().with_delayed_shmem_signals(1, 1, 60.0).with_watchdog(5e6);
    let a = p2p(&delayed, None);
    let b = p2p(&delayed, None);
    assert_eq!(a.digest, b.digest, "same (seed, plan) must replay identically");
    assert!(a.survived(), "delayed shmem signals are absorbed: {:?}", a.errors);
    assert_eq!(a.numeric, clean.numeric);
    assert_ne!(a.digest, clean.digest, "the delay must actually perturb the trace");

    // Lost signals: the escalation ladder replays the epoch host-side.
    let lost = FaultPlan::none().with_lost_shmem_signals(1, 1).with_watchdog(5e6);
    let recovered = p2p(&lost, Some(RecoverConfig::default()));
    assert!(
        recovered.survived(),
        "epoch replay must carry a lost shmem signal: {:?}",
        recovered.errors
    );
    assert_eq!(recovered.numeric, clean.numeric, "replayed puts must not corrupt the payload");

    // Heap registration failure on the collective workload: typed
    // demotion to the PE, never an error.
    let coll = |plan: &FaultPlan| {
        chaos::run_allreduce_cell(0xFA017, plan, 1, 1, CopyMechanism::Shmem, None)
    };
    let coll_clean = coll(&FaultPlan::none());
    assert!(coll_clean.survived());
    assert_ne!(
        coll_clean.digest,
        chaos::run_allreduce(0xFA017, &FaultPlan::none(), 1).digest,
        "the shmem allreduce cell must actually negotiate a different mechanism"
    );
    let demoted = coll(&FaultPlan::none().with_shmem_heap_failure(0).with_watchdog(5e6));
    assert!(demoted.survived(), "heap failure demotes, never breaks: {:?}", demoted.errors);
    assert_eq!(demoted.numeric, coll_clean.numeric);
    assert_ne!(demoted.digest, coll_clean.digest, "the PE fallback changes the event stream");
}

/// The campaign's aggregated report is byte-identical at any worker count
/// (trimmed quick grid; the full grid's invariance is exercised by the CI
/// `sweep` job diffing `chaos_campaign --threads 4` against serial).
#[test]
fn chaos_campaign_report_is_thread_count_invariant() {
    let cfg = campaign::CampaignConfig::ci(true);
    let render = |threads| {
        campaign::run_campaign(&cfg, threads)
            .iter()
            .map(|o| format!("{}\n", o.render()))
            .collect::<String>()
    };
    let serial = render(1);
    assert_eq!(render(2), serial);
    assert_eq!(render(8), serial);
}
