//! Fault class: the Kernel Copy IPC mapping is revoked mid-epoch (the
//! peer unmaps its `ucp_rkey_ptr` region). Device `MPIX_Pready` must
//! detect the dead mapping and fall back to the Progression Engine for
//! the data movement — same numerics, different (PE-shaped) trace.

use parcomm_core::{
    precv_init, prequest_create, psend_init, CopyMechanism, PrequestConfig,
};
use parcomm_fault::{chaos, FaultPlan};
use parcomm_gpu::KernelSpec;

const TAG: u64 = 0x19C;
const PARTS: usize = 4;

/// Rank 1 sends `PARTS` partitions (partition `u` filled with `u²`) to
/// rank 0 with the Kernel Copy mechanism; `revoke` kills the IPC mapping
/// after `prequest_create` but before the kernel fires.
fn kernel_copy_round(seed: u64, revoke: bool) -> chaos::ChaosRun {
    chaos::run_world(seed, &FaultPlan::none(), 1, move |ctx, rank| {
        let buf = rank.gpu().alloc_global(PARTS * 64 * 8);
        match rank.rank() {
            1 => {
                for u in 0..PARTS {
                    let vals = vec![(u * u) as f64; 64];
                    buf.write_f64_slice(u * 64 * 8, &vals);
                }
                let sreq = psend_init(ctx, rank, 0, TAG, &buf, PARTS)?;
                sreq.start(ctx)?;
                sreq.pbuf_prepare(ctx)?;
                let preq = prequest_create(
                    ctx,
                    rank,
                    &sreq,
                    PrequestConfig { copy: CopyMechanism::KernelCopy, ..PrequestConfig::default() },
                )?;
                if revoke {
                    // The receiver unmaps its buffer mid-epoch: every
                    // in-kernel store batch from here on must detect the
                    // invalid mapping and reroute through the PE.
                    sreq.data_rkey().expect("prepared").revoke_ipc();
                }
                let stream = rank.gpu().create_stream();
                let p2 = preq.clone();
                stream.launch(ctx, KernelSpec::vector_add(1, 64), move |d| p2.pready_all(d));
                sreq.wait(ctx)?;
                Ok(Vec::new())
            }
            0 => {
                let rreq = precv_init(ctx, rank, 1, TAG, &buf, PARTS)?;
                rreq.start(ctx)?;
                rreq.pbuf_prepare(ctx)?;
                rreq.wait(ctx)?;
                Ok(buf.read_f64_slice(0, PARTS * 64))
            }
            _ => Ok(Vec::new()),
        }
    })
}

#[test]
fn ipc_revocation_falls_back_to_progression_engine() {
    let mapped = kernel_copy_round(0xA11CE, false);
    let revoked = kernel_copy_round(0xA11CE, true);
    let revoked2 = kernel_copy_round(0xA11CE, true);

    assert!(mapped.survived() && revoked.survived(), "fallback is transparent");
    let want: Vec<f64> = (0..PARTS).flat_map(|u| vec![(u * u) as f64; 64]).collect();
    assert_eq!(mapped.numeric, want, "kernel-copy path delivers");
    assert_eq!(revoked.numeric, want, "PE fallback delivers the same bytes");

    assert_eq!(revoked.digest, revoked2.digest, "the fallback replays deterministically");
    assert_ne!(
        mapped.digest, revoked.digest,
        "the fallback must actually change the transport (PE data puts, not in-kernel stores)"
    );
}
