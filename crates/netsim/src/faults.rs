//! Fabric-level fault model: transient transfer drops, latency spikes, and
//! NIC outages.
//!
//! The fabric is fault-free by default; [`crate::Fabric::arm_faults`] arms a
//! [`NetFaultConfig`]. Every fault decision is drawn from a dedicated
//! [`SimRng`] seeded by the config — never from the simulation's main RNG —
//! so arming faults perturbs neither the fault-free event stream nor the
//! jitter sequence of unrelated components, and the same (sim seed, fault
//! config) pair always reproduces the identical faulted trace.
//!
//! Semantics:
//!
//! - **Transient drops** (`drop_prob`): the transfer's first wire attempt is
//!   lost and retransmitted after `retransmit_delay_us`; drops can repeat
//!   (geometric, capped at [`MAX_RETRANSMITS`]). Data still arrives — the
//!   fault degrades latency, never integrity, matching a reliable transport
//!   (IB RC / UCX) over a lossy wire.
//! - **Latency spikes** (`spike_prob`/`spike_us`): congestion-style tail
//!   latency added to the arrival time.
//! - **NIC outages** ([`NicOutage`]): a (node, nic) pair is down during a
//!   virtual-time window. Routing steers single-rail messages to a surviving
//!   NIC and multi-rail striping re-stripes over the surviving rails
//!   (degraded bandwidth, not failure). Only when *every* NIC on a required
//!   node is down does [`crate::Fabric::try_transfer_at`] return
//!   [`NetError::NoNicAvailable`] — the typed surface the UCX retry layer
//!   recovers from.

use parcomm_sim::{SimRng, SimTime};

/// Cap on consecutive retransmits of one transfer; beyond this the drop
/// sequence ends (the geometric tail is negligible and an unbounded loop
/// would let `drop_prob = 1.0` hang the draw).
pub const MAX_RETRANSMITS: u32 = 8;

/// A NIC down-window: `(node, nic)` is unusable for transfers starting in
/// `[from_us, until_us)` (virtual microseconds). Use `f64::INFINITY` for a
/// permanent outage.
#[derive(Debug, Clone, PartialEq)]
pub struct NicOutage {
    /// Node whose NIC fails.
    pub node: u16,
    /// NIC index on that node.
    pub nic: u8,
    /// Start of the outage window (virtual µs).
    pub from_us: f64,
    /// End of the outage window (virtual µs), exclusive.
    pub until_us: f64,
}

impl NicOutage {
    /// True if the outage covers virtual instant `at`.
    pub fn covers(&self, at: SimTime) -> bool {
        let t = at.as_micros_f64();
        t >= self.from_us && t < self.until_us
    }
}

/// Deterministic fabric fault schedule. All-zero probabilities and no
/// outages (the [`Default`]) injects nothing even when armed.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultConfig {
    /// Seed for the dedicated fault RNG.
    pub seed: u64,
    /// Per-attempt probability that a transfer's wire attempt is dropped.
    pub drop_prob: f64,
    /// Latency penalty per retransmitted attempt (µs).
    pub retransmit_delay_us: f64,
    /// Per-transfer probability of a congestion latency spike.
    pub spike_prob: f64,
    /// Spike magnitude (µs).
    pub spike_us: f64,
    /// NIC down-windows.
    pub nic_outages: Vec<NicOutage>,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        NetFaultConfig {
            seed: 0,
            drop_prob: 0.0,
            retransmit_delay_us: 5.0,
            spike_prob: 0.0,
            spike_us: 0.0,
            nic_outages: Vec::new(),
        }
    }
}

/// Typed fabric failure: no recovery possible at the fabric layer.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Every NIC on `node` is inside an outage window at `at_us`; a
    /// cross-node transfer cannot be routed.
    NoNicAvailable {
        /// The node with no usable NIC.
        node: u16,
        /// Virtual time (µs) the transfer tried to start.
        at_us: f64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoNicAvailable { node, at_us } => {
                write!(f, "no NIC available on node {node} at t={at_us:.1}us (all rails down)")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Armed fault state: config plus the dedicated deterministic RNG.
pub(crate) struct NetFaults {
    pub(crate) cfg: NetFaultConfig,
    pub(crate) rng: SimRng,
}

impl NetFaults {
    pub(crate) fn new(cfg: NetFaultConfig) -> Self {
        let rng = SimRng::seeded(cfg.seed);
        NetFaults { cfg, rng }
    }

    /// True if `(node, nic)` is usable for a transfer starting at `at`.
    pub(crate) fn nic_up(&self, node: u16, nic: u8, at: SimTime) -> bool {
        !self
            .cfg
            .nic_outages
            .iter()
            .any(|o| o.node == node && o.nic == nic && o.covers(at))
    }

    /// Extra latency (µs) injected into one transfer: retransmits + spike.
    pub(crate) fn draw_penalty_us(&mut self) -> f64 {
        let mut us = 0.0;
        if self.cfg.drop_prob > 0.0 {
            let mut attempts = 0;
            while attempts < MAX_RETRANSMITS && self.rng.uniform() < self.cfg.drop_prob {
                us += self.cfg.retransmit_delay_us;
                attempts += 1;
            }
        }
        if self.cfg.spike_prob > 0.0 && self.rng.uniform() < self.cfg.spike_prob {
            us += self.cfg.spike_us;
        }
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm_sim::SimDuration;

    #[test]
    fn outage_window_is_half_open() {
        let o = NicOutage { node: 1, nic: 0, from_us: 10.0, until_us: 20.0 };
        let t = |us: f64| SimTime::ZERO + SimDuration::from_micros_f64(us);
        assert!(!o.covers(t(9.9)));
        assert!(o.covers(t(10.0)));
        assert!(o.covers(t(19.9)));
        assert!(!o.covers(t(20.0)));
    }

    #[test]
    fn penalty_draws_are_seed_deterministic() {
        let cfg = NetFaultConfig {
            seed: 42,
            drop_prob: 0.3,
            retransmit_delay_us: 5.0,
            spike_prob: 0.2,
            spike_us: 50.0,
            ..NetFaultConfig::default()
        };
        let draws = |cfg: &NetFaultConfig| {
            let mut f = NetFaults::new(cfg.clone());
            (0..64).map(|_| f.draw_penalty_us()).collect::<Vec<_>>()
        };
        assert_eq!(draws(&cfg), draws(&cfg));
        let other = NetFaultConfig { seed: 43, ..cfg.clone() };
        assert_ne!(draws(&cfg), draws(&other));
    }

    #[test]
    fn certain_drop_is_bounded_by_retransmit_cap() {
        let cfg = NetFaultConfig {
            seed: 7,
            drop_prob: 1.0,
            retransmit_delay_us: 5.0,
            ..NetFaultConfig::default()
        };
        let mut f = NetFaults::new(cfg);
        assert_eq!(f.draw_penalty_us(), MAX_RETRANSMITS as f64 * 5.0);
    }
}
